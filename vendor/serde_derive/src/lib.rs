//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored `serde`
//! crate's `Content` tree. The input item is parsed directly from the
//! `proc_macro::TokenStream` (no `syn`/`quote`): attributes and visibility
//! are skipped, then the struct/enum shape is extracted.
//!
//! Supported shapes — everything this workspace derives:
//! - structs with named fields
//! - tuple structs (newtype structs serialize transparently, like serde)
//! - unit structs
//! - enums with unit / newtype / tuple / struct variants
//! - generic type parameters without bounds or defaults (e.g. `Foo<T>`)
//!
//! `#[serde(...)]` attributes are not supported and the workspace does not
//! use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Item {
    is_enum: bool,
    name: String,
    generics: Vec<String>,
    fields: Fields,                  // structs
    variants: Vec<(String, Fields)>, // enums
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = if item.is_enum {
        serialize_enum(&item)
    } else {
        serialize_fields("self", &item.fields, true)
    };
    let (gen_decl, gen_use) = generics_for(&item, "::serde::Serialize");
    format!(
        "impl{gen_decl} ::serde::Serialize for {name}{gen_use} {{\n\
             fn serialize_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}\n",
        name = item.name,
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = if item.is_enum {
        deserialize_enum(&item)
    } else {
        deserialize_fields("Self", &item.fields, "__content", true)
    };
    let (gen_decl, gen_use) = generics_for(&item, "::serde::Deserialize");
    format!(
        "impl{gen_decl} ::serde::Deserialize for {name}{gen_use} {{\n\
             fn deserialize_content(__content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n",
        name = item.name,
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn generics_for(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let decl: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", decl.join(", ")),
            format!("<{}>", item.generics.join(", ")),
        )
    }
}

// --- Codegen: Serialize -----------------------------------------------------

/// Body serializing `recv` (e.g. `self`) according to `fields`.
fn serialize_fields(recv: &str, fields: &Fields, is_struct: bool) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Null".to_string(),
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("(\"{f}\", ::serde::Serialize::serialize_content(&{recv}.{f}))"))
                .collect();
            format!(
                "::serde::Content::Struct(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Fields::Tuple(1) if is_struct => {
            // Newtype structs serialize transparently, matching serde.
            format!("::serde::Serialize::serialize_content(&{recv}.0)")
        }
        Fields::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_content(&{recv}.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", entries.join(", "))
        }
    }
}

fn serialize_enum(item: &Item) -> String {
    let mut arms = Vec::new();
    for (variant, fields) in &item.variants {
        let name = &item.name;
        match fields {
            Fields::Unit => arms.push(format!(
                "{name}::{variant} => ::serde::Content::UnitVariant(\"{variant}\"),"
            )),
            Fields::Tuple(1) => arms.push(format!(
                "{name}::{variant}(__a0) => ::serde::Content::Variant(\
                     \"{variant}\", \
                     ::std::boxed::Box::new(::serde::Serialize::serialize_content(__a0))),"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                let entries: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::serialize_content({b})"))
                    .collect();
                arms.push(format!(
                    "{name}::{variant}({}) => ::serde::Content::Variant(\
                         \"{variant}\", \
                         ::std::boxed::Box::new(::serde::Content::Seq(::std::vec![{}]))),",
                    binds.join(", "),
                    entries.join(", ")
                ));
            }
            Fields::Named(field_names) => {
                let binds = field_names.join(", ");
                let entries: Vec<String> = field_names
                    .iter()
                    .map(|f| format!("(\"{f}\", ::serde::Serialize::serialize_content({f}))"))
                    .collect();
                arms.push(format!(
                    "{name}::{variant} {{ {binds} }} => ::serde::Content::Variant(\
                         \"{variant}\", \
                         ::std::boxed::Box::new(::serde::Content::Struct(::std::vec![{}]))),",
                    entries.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

// --- Codegen: Deserialize ---------------------------------------------------

/// Expression constructing `ctor` from content expression `src`.
fn deserialize_fields(ctor: &str, fields: &Fields, src: &str, is_struct: bool) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({ctor})"),
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize_content({src}.get_field(\"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({ctor} {{ {} }})",
                inits.join(", ")
            )
        }
        Fields::Tuple(1) if is_struct => format!(
            "::std::result::Result::Ok({ctor}(::serde::Deserialize::deserialize_content({src})?))"
        ),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!("::serde::Deserialize::deserialize_content({src}.seq_elem({i})?)?")
                })
                .collect();
            format!("::std::result::Result::Ok({ctor}({}))", inits.join(", "))
        }
    }
}

fn deserialize_enum(item: &Item) -> String {
    let name = &item.name;
    let mut arms = Vec::new();
    for (variant, fields) in &item.variants {
        let arm = match fields {
            Fields::Unit => {
                format!("\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),")
            }
            Fields::Tuple(1) => format!(
                "\"{variant}\" => {{\n\
                     let __p = ::serde::Content::require_payload(__payload, \"{variant}\")?;\n\
                     ::std::result::Result::Ok({name}::{variant}(\
                         ::serde::Deserialize::deserialize_content(__p)?))\n\
                 }}"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| {
                        format!("::serde::Deserialize::deserialize_content(__p.seq_elem({i})?)?")
                    })
                    .collect();
                format!(
                    "\"{variant}\" => {{\n\
                         let __p = ::serde::Content::require_payload(__payload, \"{variant}\")?;\n\
                         ::std::result::Result::Ok({name}::{variant}({}))\n\
                     }}",
                    inits.join(", ")
                )
            }
            Fields::Named(field_names) => {
                let inits: Vec<String> = field_names
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize_content(__p.get_field(\"{f}\"))?"
                        )
                    })
                    .collect();
                format!(
                    "\"{variant}\" => {{\n\
                         let __p = ::serde::Content::require_payload(__payload, \"{variant}\")?;\n\
                         ::std::result::Result::Ok({name}::{variant} {{ {} }})\n\
                     }}",
                    inits.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!(
        "let (__name, __payload) = __content.variant()?;\n\
         match __name {{\n{}\n\
             __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\
                 __other, \"{name}\")),\n\
         }}",
        arms.join("\n")
    )
}

// --- Token-level item parser ------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => panic!("derive expects a struct or enum, found `{other}`"),
    };
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);

    if let Some(TokenTree::Ident(w)) = tokens.get(pos) {
        if w.to_string() == "where" {
            panic!("derived type `{name}` has a where-clause, which this derive does not support");
        }
    }

    if is_enum {
        let group = expect_group(&tokens, &mut pos, Delimiter::Brace, &name);
        let variants = parse_variants(group);
        Item {
            is_enum,
            name,
            generics,
            fields: Fields::Unit,
            variants,
        }
    } else {
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        };
        Item {
            is_enum,
            name,
            generics,
            fields,
            variants: Vec::new(),
        }
    }
}

fn skip_attributes_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 2; // `#` and the `[...]` group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    pos: &mut usize,
    delim: Delimiter,
    context: &str,
) -> TokenStream {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *pos += 1;
            g.stream()
        }
        other => panic!("expected {delim:?} group for `{context}`, found {other:?}"),
    }
}

/// Parse `<T, U>`-style generics; only bare type parameters are supported.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *pos += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let tok = tokens
            .get(*pos)
            .unwrap_or_else(|| panic!("unterminated generics"))
            .clone();
        *pos += 1;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tok);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    if !current.is_empty() {
                        params.push(std::mem::take(&mut current));
                    }
                } else {
                    current.push(tok);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                if !current.is_empty() {
                    params.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(tok),
        }
    }
    params
        .into_iter()
        .map(|param| match param.first() {
            Some(TokenTree::Ident(i)) => {
                let head = i.to_string();
                if head == "const" {
                    panic!("const generics are not supported by this derive");
                }
                if param
                    .iter()
                    .any(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == '='))
                {
                    panic!("generic parameter defaults are not supported by this derive");
                }
                head
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                panic!("lifetime parameters are not supported by this derive")
            }
            other => panic!("unsupported generic parameter: {other:?}"),
        })
        .collect()
}

/// Names of named fields inside a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut names = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        names.push(name);
        skip_type_until_comma(&tokens, &mut pos);
    }
    names
}

/// Advance past a type, stopping after the next top-level `,` (or at end).
fn skip_type_until_comma(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *pos += 1;
                return;
            }
            _ => {}
        }
        *pos += 1;
    }
}

/// Count top-level comma-separated fields of a tuple struct/variant.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (i, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if i + 1 == tokens.len() {
                    saw_trailing_comma = true;
                } else {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// Parse enum variants from a brace group.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Fields::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    pos += 1;
                    break;
                }
                _ => pos += 1,
            }
        }
        variants.push((name, fields));
    }
    variants
}
