//! Minimal offline stand-in for the `rand` crate.
//!
//! This workspace builds without network access, so the external `rand`
//! dependency is replaced by this small, self-contained implementation of
//! the API surface the simulator actually uses: `RngCore`, `SeedableRng`
//! (with the SplitMix64 `seed_from_u64` expansion), the `Rng` extension
//! trait (`gen_range`, `gen_bool`, `fill`), and `seq::SliceRandom`.
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream. No attempt is made to be bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: everything derives from `next_u32`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Range types that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let pick = u128::from(rng.next_u64()) % span;
                (self.start as i128 + pick as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let pick = u128::from(rng.next_u64()) % span;
                (lo as i128 + pick as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random sampling over slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod rngs {
    /// Tiny xorshift-based utility rng for internal use.
    #[derive(Debug, Clone)]
    pub struct SmallRng(u64);

    impl super::SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let v = u64::from_le_bytes(seed);
            SmallRng(if v == 0 { 0x9e37_79b9 } else { v })
        }
    }

    impl super::RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9e37_79b9);
            (self.0 >> 8) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..200 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Counter(1);
        let items = [1, 2, 3, 4, 5];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert!(seen.len() > 1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
