//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/`proptest!` surface this workspace uses with a
//! deterministic ChaCha20-backed generator and **no shrinking**: failing
//! cases report the case number and the per-test seed instead of a
//! minimized input. Each test function derives its seed from its own name,
//! so runs are reproducible without any environment setup.

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Outcome of a single generated test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// Assertion failure; aborts the whole test.
        Fail(String),
        /// `prop_assume!` rejection; the case is re-generated.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand_chacha::ChaCha20Rng);

    impl TestRng {
        pub fn from_seed_u64(seed: u64) -> Self {
            use rand::SeedableRng;
            TestRng(rand_chacha::ChaCha20Rng::seed_from_u64(seed))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
    }

    /// FNV-1a over the test name: per-test seeds without global state.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }

    /// Drive one property test: generate inputs from `strategy` and feed
    /// them to `case` until `config.cases` cases are accepted. Taking the
    /// case body as `impl FnMut` here (rather than expanding the loop in
    /// the macro) gives the closure's tuple pattern a concrete expected
    /// type, so `proptest!` bodies never need type annotations.
    pub fn run<S, F>(name: &str, config: &ProptestConfig, strategy: S, mut case: F)
    where
        S: crate::strategy::Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let seed = seed_from_name(name);
        let mut rng = TestRng::from_seed_u64(seed);
        let mut accepted: u32 = 0;
        let mut attempts: u32 = 0;
        let max_attempts = config.cases.saturating_mul(16).max(64);
        while accepted < config.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest `{name}`: too many prop_assume! rejections \
                 ({attempts} attempts for {accepted} accepted cases)"
            );
            let input = strategy.generate(&mut rng);
            match case(input) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(message)) => panic!(
                    "proptest `{name}` failed at case {accepted} (seed {seed:#x}):\n{message}"
                ),
            }
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<W, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> W,
        {
            Map { source: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe adapter so heterogeneous strategies can share a box.
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed strategy, as produced by [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, W> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> W,
    {
        type Value = W;

        fn generate(&self, rng: &mut TestRng) -> W {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            use rand::Rng;
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

// Numeric ranges are strategies.
impl<T> Strategy for Range<T>
where
    T: Copy,
    Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_from(self.clone(), rng)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: Copy,
    RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rand::SampleRange::sample_from(self.clone(), rng)
    }
}

// Bare string literals are regex strategies, as in upstream proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pattern = string::compile(self)
            .unwrap_or_else(|err| panic!("invalid regex strategy `{self}`: {err:?}"));
        string::generate(&pattern, rng)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range uniform generator for a primitive.
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u32() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;

        fn arbitrary() -> Self::Strategy {
            FullRange(std::marker::PhantomData)
        }
    }

    /// Arrays generate element-wise.
    pub struct ArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        type Strategy = ArrayStrategy<T::Strategy, N>;

        fn arbitrary() -> Self::Strategy {
            ArrayStrategy(T::arbitrary())
        }
    }
}

pub use arbitrary::any;

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Vec of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod char {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice in an inclusive character range.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "char::range start must not exceed end");
        CharRange { lo, hi }
    }

    pub struct CharRange {
        lo: char,
        hi: char,
    }

    impl Strategy for CharRange {
        type Value = char;

        fn generate(&self, rng: &mut TestRng) -> char {
            use rand::Rng;
            // Rejection-sample over the scalar range to skip surrogates.
            loop {
                let code = rng.gen_range(self.lo as u32..=self.hi as u32);
                if let Some(c) = char::from_u32(code) {
                    return c;
                }
            }
        }
    }
}

pub mod string {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Error from parsing an unsupported or malformed pattern.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    /// A strategy producing strings matching a simple regex.
    ///
    /// Supported syntax: literals, `\x` escapes, `[a-z0-9-]` classes,
    /// `(...)` groups, and the `{m}`, `{m,n}`, `?`, `*`, `+` quantifiers.
    /// Alternation and anchors are not supported (and not used here).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        compile(pattern).map(|nodes| RegexGeneratorStrategy { nodes })
    }

    pub struct RegexGeneratorStrategy {
        nodes: Vec<Quantified>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate(&self.nodes, rng)
        }
    }

    #[derive(Debug, Clone)]
    pub(crate) enum Node {
        Literal(char),
        /// Inclusive ranges; single chars are `(c, c)`.
        Class(Vec<(char, char)>),
        Group(Vec<Quantified>),
    }

    #[derive(Debug, Clone)]
    pub(crate) struct Quantified {
        node: Node,
        min: u32,
        max: u32,
    }

    /// Unbounded quantifiers (`*`, `+`) cap their repetition here.
    const UNBOUNDED_CAP: u32 = 8;

    pub(crate) fn compile(pattern: &str) -> Result<Vec<Quantified>, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let nodes = parse_sequence(&chars, &mut pos, false)?;
        if pos != chars.len() {
            return Err(Error(format!("unexpected `)` at position {pos}")));
        }
        Ok(nodes)
    }

    fn parse_sequence(
        chars: &[char],
        pos: &mut usize,
        in_group: bool,
    ) -> Result<Vec<Quantified>, Error> {
        let mut nodes = Vec::new();
        while *pos < chars.len() {
            let node = match chars[*pos] {
                ')' if in_group => break,
                ')' => return Err(Error("unmatched `)`".into())),
                '(' => {
                    *pos += 1;
                    let inner = parse_sequence(chars, pos, true)?;
                    if chars.get(*pos) != Some(&')') {
                        return Err(Error("unterminated group".into()));
                    }
                    *pos += 1;
                    Node::Group(inner)
                }
                '[' => {
                    *pos += 1;
                    parse_class(chars, pos)?
                }
                '\\' => {
                    *pos += 1;
                    let c = chars
                        .get(*pos)
                        .copied()
                        .ok_or_else(|| Error("dangling escape".into()))?;
                    *pos += 1;
                    Node::Literal(unescape(c))
                }
                '|' => return Err(Error("alternation is not supported".into())),
                '^' | '$' => return Err(Error("anchors are not supported".into())),
                c => {
                    *pos += 1;
                    Node::Literal(c)
                }
            };
            let (min, max) = parse_quantifier(chars, pos)?;
            nodes.push(Quantified { node, min, max });
        }
        Ok(nodes)
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            other => other,
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Result<Node, Error> {
        let mut ranges = Vec::new();
        if chars.get(*pos) == Some(&'^') {
            return Err(Error("negated classes are not supported".into()));
        }
        while let Some(&c) = chars.get(*pos) {
            match c {
                ']' => {
                    *pos += 1;
                    if ranges.is_empty() {
                        return Err(Error("empty character class".into()));
                    }
                    return Ok(Node::Class(ranges));
                }
                '\\' => {
                    *pos += 1;
                    let esc = chars
                        .get(*pos)
                        .copied()
                        .ok_or_else(|| Error("dangling escape in class".into()))?;
                    *pos += 1;
                    ranges.push((unescape(esc), unescape(esc)));
                }
                lo => {
                    *pos += 1;
                    // `a-z` range, unless `-` is the last char before `]`.
                    if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                        *pos += 1;
                        let hi = chars
                            .get(*pos)
                            .copied()
                            .ok_or_else(|| Error("unterminated class range".into()))?;
                        *pos += 1;
                        if hi < lo {
                            return Err(Error(format!("invalid range {lo}-{hi}")));
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
        }
        Err(Error("unterminated character class".into()))
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize) -> Result<(u32, u32), Error> {
        match chars.get(*pos) {
            Some('?') => {
                *pos += 1;
                Ok((0, 1))
            }
            Some('*') => {
                *pos += 1;
                Ok((0, UNBOUNDED_CAP))
            }
            Some('+') => {
                *pos += 1;
                Ok((1, UNBOUNDED_CAP))
            }
            Some('{') => {
                *pos += 1;
                let mut min_text = String::new();
                while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                    min_text.push(chars[*pos]);
                    *pos += 1;
                }
                let min: u32 = min_text
                    .parse()
                    .map_err(|_| Error("bad quantifier minimum".into()))?;
                let max = match chars.get(*pos) {
                    Some('}') => min,
                    Some(',') => {
                        *pos += 1;
                        let mut max_text = String::new();
                        while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                            max_text.push(chars[*pos]);
                            *pos += 1;
                        }
                        max_text
                            .parse()
                            .map_err(|_| Error("bad quantifier maximum".into()))?
                    }
                    _ => return Err(Error("unterminated quantifier".into())),
                };
                if chars.get(*pos) != Some(&'}') {
                    return Err(Error("unterminated quantifier".into()));
                }
                *pos += 1;
                if max < min {
                    return Err(Error("quantifier maximum below minimum".into()));
                }
                Ok((min, max))
            }
            _ => Ok((1, 1)),
        }
    }

    pub(crate) fn generate(nodes: &[Quantified], rng: &mut TestRng) -> String {
        let mut out = String::new();
        generate_into(nodes, rng, &mut out);
        out
    }

    fn generate_into(nodes: &[Quantified], rng: &mut TestRng, out: &mut String) {
        use rand::Rng;
        for quantified in nodes {
            let reps = rng.gen_range(quantified.min..=quantified.max);
            for _ in 0..reps {
                match &quantified.node {
                    Node::Literal(c) => out.push(*c),
                    Node::Class(ranges) => {
                        let total: u32 = ranges
                            .iter()
                            .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                            .sum();
                        let mut pick = rng.gen_range(0..total);
                        for (lo, hi) in ranges {
                            let span = *hi as u32 - *lo as u32 + 1;
                            if pick < span {
                                out.push(char::from_u32(*lo as u32 + pick).unwrap());
                                break;
                            }
                            pick -= span;
                        }
                    }
                    Node::Group(inner) => generate_into(inner, rng, out),
                }
            }
        }
    }
}

// --- Macros -----------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)) => {};
    (@with_config ($config:expr)
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::test_runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                ($($strategy,)+),
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_generation_matches_pattern() {
        let strat = crate::string::string_regex("[a-z0-9][a-z0-9-]{0,20}").unwrap();
        let mut rng = crate::test_runner::TestRng::from_seed_u64(1);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "{s}");
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_lowercase() || first.is_ascii_digit(), "{s}");
            assert!(
                chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{s}"
            );
        }
    }

    #[test]
    fn grouped_regex_generates_dotted_names() {
        let strat = crate::string::string_regex("[a-z0-9]{1,20}(\\.[a-z0-9]{1,15}){0,4}").unwrap();
        let mut rng = crate::test_runner::TestRng::from_seed_u64(2);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            for label in s.split('.') {
                assert!(
                    !label.is_empty()
                        && label
                            .chars()
                            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                    "{s}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, label in "[a-z]{1,8}") {
            prop_assert!(x < 100);
            prop_assert!(!label.is_empty() && label.len() <= 8);
            prop_assert_eq!(x, x);
            prop_assert_ne!(label.len(), 0usize);
        }

        #[test]
        fn assume_rejects_and_regenerates(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn config_form_parses(v in proptest::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn oneof_and_map_compose(
            choice in prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)],
        ) {
            prop_assert!(choice == 1 || choice == 2 || (5..7).contains(&choice));
        }
    }

    use crate as proptest;
}
