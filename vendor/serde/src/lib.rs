//! Offline stand-in for `serde`.
//!
//! The real serde's visitor machinery is replaced by a small self-describing
//! `Content` tree: `Serialize` renders a value into `Content`, `Deserialize`
//! reads one back out. The vendored `serde_json` then formats `Content` with
//! upstream-compatible JSON conventions (externally tagged enums, transparent
//! newtype structs, `null` for `Option::None` and unit).
//!
//! Determinism matters more than fidelity here: `HashMap`/`HashSet` serialize
//! sorted by key so repeated runs produce byte-identical output.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form of any value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Map with arbitrary (content) keys, already in serialization order.
    Map(Vec<(Content, Content)>),
    /// Named-field struct.
    Struct(Vec<(&'static str, Content)>),
    /// Enum unit variant, rendered as the bare variant name.
    UnitVariant(&'static str),
    /// Enum variant with a payload (newtype ⇒ the value, tuple ⇒ `Seq`,
    /// struct ⇒ `Struct`), rendered externally tagged: `{"Name": payload}`.
    Variant(&'static str, Box<Content>),
}

static NULL: Content = Content::Null;

impl Content {
    /// Field accessor used by derived `Deserialize` impls. Missing fields
    /// read as `Null`, which lets `Option` fields default to `None` and
    /// everything else produce a type error downstream. Accepts both the
    /// derive-produced `Struct` shape and the JSON-parsed `Map` shape, so
    /// derived structs round-trip through JSON text.
    pub fn get_field(&self, name: &str) -> &Content {
        match self {
            Content::Struct(fields) => fields
                .iter()
                .find(|(f, _)| *f == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Sequence accessor used by derived `Deserialize` impls.
    pub fn seq_elem(&self, index: usize) -> Result<&Content, DeError> {
        match self {
            Content::Seq(items) => items
                .get(index)
                .ok_or_else(|| DeError::new(format!("sequence too short: no element {index}"))),
            other => Err(DeError::mismatch("sequence", other)),
        }
    }

    /// Split an enum content into `(variant_name, payload)`.
    pub fn variant(&self) -> Result<(&str, Option<&Content>), DeError> {
        match self {
            Content::UnitVariant(name) => Ok((name, None)),
            Content::Variant(name, payload) => Ok((name, Some(payload))),
            // JSON round-trips render unit variants as plain strings and
            // payload variants as single-entry maps; accept both.
            Content::Str(name) => Ok((name, None)),
            Content::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Content::Str(name), payload) => Ok((name, Some(payload))),
                _ => Err(DeError::mismatch("externally tagged enum", self)),
            },
            other => Err(DeError::mismatch("enum", other)),
        }
    }

    /// Unwrap the payload of a non-unit variant.
    pub fn require_payload<'a>(
        payload: Option<&'a Content>,
        variant: &str,
    ) -> Result<&'a Content, DeError> {
        payload.ok_or_else(|| DeError::new(format!("variant `{variant}` is missing its payload")))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) => "unsigned integer",
            Content::I64(_) => "signed integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
            Content::Struct(_) => "struct",
            Content::UnitVariant(_) | Content::Variant(..) => "enum",
        }
    }

    /// Canonical string form used to sort `HashMap`/`HashSet` entries and to
    /// render non-string JSON map keys. Compact, deterministic, and
    /// order-isomorphic with the natural ordering for homogeneous keys that
    /// actually occur as map keys in this workspace (strings and integers
    /// sort via a numeric prefix; everything else falls back to the rendered
    /// form, which is stable even if not "natural").
    pub fn canonical_key(&self) -> String {
        match self {
            Content::Str(s) => s.clone(),
            Content::U64(v) => format!("{v:020}"),
            Content::I64(v) => format!("{:021}", *v as i128 + i64::MAX as i128 + 1),
            other => other.render_compact(),
        }
    }

    /// Compact JSON-ish rendering (no spaces); used for map keys only.
    pub fn render_compact(&self) -> String {
        match self {
            Content::Null => "null".to_string(),
            Content::Bool(b) => b.to_string(),
            Content::U64(v) => v.to_string(),
            Content::I64(v) => v.to_string(),
            Content::F64(v) => v.to_string(),
            Content::Str(s) => s.clone(),
            Content::Seq(items) => {
                let parts: Vec<String> = items.iter().map(|c| c.render_compact()).collect();
                format!("[{}]", parts.join(","))
            }
            Content::Map(entries) => {
                let parts: Vec<String> = entries
                    .iter()
                    .map(|(k, v)| format!("{}:{}", k.render_compact(), v.render_compact()))
                    .collect();
                format!("{{{}}}", parts.join(","))
            }
            Content::Struct(fields) => {
                let parts: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", k, v.render_compact()))
                    .collect();
                format!("{{{}}}", parts.join(","))
            }
            Content::UnitVariant(name) => (*name).to_string(),
            Content::Variant(name, payload) => {
                format!("{{{}:{}}}", name, payload.render_compact())
            }
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    pub fn mismatch(expected: &str, found: &Content) -> Self {
        DeError::new(format!("expected {expected}, found {}", found.type_name()))
    }

    pub fn unknown_variant(found: &str, enum_name: &str) -> Self {
        DeError::new(format!("unknown variant `{found}` for enum `{enum_name}`"))
    }

    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Render a value into the `Content` data model.
pub trait Serialize {
    fn serialize_content(&self) -> Content;
}

/// Reconstruct a value from the `Content` data model.
pub trait Deserialize: Sized {
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

// --- Primitive impls --------------------------------------------------------

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range"))),
                    Content::I64(v) if *v >= 0 => <$t>::try_from(*v as u64)
                        .map_err(|_| DeError::new(format!("{v} out of range"))),
                    // JSON object keys always re-enter as strings; integer
                    // map keys must parse back through here.
                    Content::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| DeError::new(format!("{s:?} is not an unsigned integer"))),
                    other => Err(DeError::mismatch("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range"))),
                    Content::U64(v) => {
                        let signed = i64::try_from(*v)
                            .map_err(|_| DeError::new(format!("{v} out of range")))?;
                        <$t>::try_from(signed)
                            .map_err(|_| DeError::new(format!("{v} out of range")))
                    }
                    // Same as the unsigned case: integer keys of a JSON map
                    // come back as strings.
                    Content::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| DeError::new(format!("{s:?} is not a signed integer"))),
                    other => Err(DeError::mismatch("signed integer", other)),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::mismatch("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(content).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("single-character string", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

/// `&'static str` fields occur in catalog structs; deserializing one leaks
/// the string, which is acceptable for the test-only round-trips that use it.
impl Deserialize for &'static str {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for Ipv4Addr {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => s
                .parse()
                .map_err(|_| DeError::new(format!("invalid IPv4 address `{s}`"))),
            other => Err(DeError::mismatch("IPv4 address string", other)),
        }
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize_content(_content: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

// --- Containers -------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(value) => value.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(DeError::mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::deserialize_content(item)?;
                }
                Ok(out)
            }
            Content::Seq(items) => Err(DeError::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            ))),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                Ok(($($name::deserialize_content(content.seq_elem($idx)?)?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.serialize_content(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize_content(k)?, V::deserialize_content(v)?)))
                .collect(),
            other => Err(DeError::mismatch("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.serialize_content(), v.serialize_content()))
            .collect();
        entries.sort_by_key(|(k, _)| k.canonical_key());
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize_content(k)?, V::deserialize_content(v)?)))
                .collect(),
            other => Err(DeError::mismatch("map", other)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(DeError::mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::serialize_content).collect();
        items.sort_by_key(Content::canonical_key);
        Content::Seq(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + std::hash::Hash + Eq,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(DeError::mismatch("sequence", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.serialize_content(), Content::Null);
        assert_eq!(Option::<u32>::deserialize_content(&Content::Null), Ok(None));
        assert_eq!(
            Option::<u32>::deserialize_content(&Content::U64(9)),
            Ok(Some(9))
        );
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut map = HashMap::new();
        map.insert(30u32, "c");
        map.insert(1u32, "a");
        map.insert(200u32, "z");
        let content = map.serialize_content();
        match content {
            Content::Map(entries) => {
                let keys: Vec<_> = entries.iter().map(|(k, _)| k.clone()).collect();
                assert_eq!(
                    keys,
                    vec![Content::U64(1), Content::U64(30), Content::U64(200)]
                );
            }
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn tuples_round_trip() {
        let value = ("hi".to_string(), 4u8, -3i32);
        let content = value.serialize_content();
        let back: (String, u8, i32) = Deserialize::deserialize_content(&content).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn arrays_round_trip() {
        let value: [u8; 4] = [9, 8, 7, 6];
        let back: [u8; 4] = Deserialize::deserialize_content(&value.serialize_content()).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn ipv4_round_trips() {
        let addr = Ipv4Addr::new(10, 2, 3, 4);
        let back = Ipv4Addr::deserialize_content(&addr.serialize_content()).unwrap();
        assert_eq!(back, addr);
    }

    #[test]
    fn integer_keys_parse_back_from_json_strings() {
        // A JSON parser renders every object key as a string; integer-keyed
        // maps must survive the round trip.
        let content = Content::Map(vec![
            (Content::Str("4".into()), Content::U64(40)),
            (Content::Str("11".into()), Content::U64(110)),
        ]);
        let map: BTreeMap<u32, u64> = Deserialize::deserialize_content(&content).unwrap();
        assert_eq!(map, BTreeMap::from([(4, 40), (11, 110)]));
        let signed: i16 = Deserialize::deserialize_content(&Content::Str("-7".into())).unwrap();
        assert_eq!(signed, -7);
        assert!(u8::deserialize_content(&Content::Str("beef".into())).is_err());
    }

    #[test]
    fn variant_accessors_accept_json_shapes() {
        // As produced by a derive.
        let unit = Content::UnitVariant("Dns");
        assert_eq!(unit.variant().unwrap(), ("Dns", None));
        // As produced by the JSON parser.
        let tagged = Content::Map(vec![(Content::Str("Other".into()), Content::U64(7))]);
        let (name, payload) = tagged.variant().unwrap();
        assert_eq!(name, "Other");
        assert_eq!(payload, Some(&Content::U64(7)));
    }
}
