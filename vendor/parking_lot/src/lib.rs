//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! exposing the poison-free `lock()`/`read()`/`write()` API. A poisoned
//! std lock (panicking thread while held) just yields the inner guard, which
//! matches parking_lot's "no poisoning" contract closely enough for this
//! workspace's cache mutexes.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_without_result() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
