//! Offline stand-in for `criterion`.
//!
//! Benchmarks compile and run with the same source as upstream criterion but
//! use a simple adaptive wall-clock loop: each `bench_function` warms up
//! once, picks an iteration count targeting ~50 ms of total work (bounded by
//! `sample_size` semantics for heavy benches), then reports one line:
//!
//! ```text
//! BENCH {"name":"group/bench","iters":N,"mean_ns":X,"throughput_bytes":B}
//! ```
//!
//! Passing `--test` (`cargo bench -- --test`) mirrors upstream's smoke
//! mode: each routine runs exactly once with no timing loop. Harnesses
//! that persist their numbers can drain them via [`take_reports`].

use std::cell::RefCell;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the binary was invoked with `--test` (`cargo bench -- --test`,
/// upstream criterion's smoke mode): every benchmark routine runs exactly
/// once to prove it still works, and no timing loop is entered. CI uses
/// this so benches can't rot without a nightly timing budget.
pub fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// One completed measurement, as echoed on the `BENCH` line.
#[derive(Debug, Clone)]
pub struct BenchReport {
    pub name: String,
    pub iters: u64,
    pub mean_ns: u64,
}

thread_local! {
    static REPORTS: RefCell<Vec<BenchReport>> = const { RefCell::new(Vec::new()) };
}

/// Drain the measurements recorded so far on this thread. Bench binaries
/// drive all groups from `main`, so a final group function can collect
/// everything and persist it to a trajectory file. Empty in `--test` mode.
pub fn take_reports() -> Vec<BenchReport> {
    REPORTS.with(|r| std::mem::take(&mut *r.borrow_mut()))
}

/// How `iter_batched` amortizes setup; only the semantics this workspace
/// uses are distinguished (setup always runs once per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
}

/// Measured throughput annotation, echoed into the BENCH line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Target amount of wall-clock per benchmark's measurement loop.
const TARGET_TOTAL: Duration = Duration::from_millis(50);
const MAX_ITERS: u64 = 1_000_000;

/// Per-invocation measurement state handed to the closure.
pub struct Bencher<'a> {
    iters_hint: u64,
    smoke: bool,
    result: &'a mut Option<Measurement>,
}

struct Measurement {
    iters: u64,
    total: Duration,
}

impl Bencher<'_> {
    /// Time `routine` in an adaptive loop.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warmup_start = Instant::now();
        black_box(routine());
        let once = warmup_start.elapsed();
        if self.smoke {
            *self.result = Some(Measurement {
                iters: 1,
                total: once,
            });
            return;
        }
        let iters = pick_iters(once, self.iters_hint);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.result = Some(Measurement {
            iters,
            total: start.elapsed(),
        });
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let input = setup();
        let warmup_start = Instant::now();
        black_box(routine(input));
        let once = warmup_start.elapsed();
        if self.smoke {
            *self.result = Some(Measurement {
                iters: 1,
                total: once,
            });
            return;
        }
        let iters = pick_iters(once, self.iters_hint);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        *self.result = Some(Measurement { iters, total });
    }
}

fn pick_iters(once: Duration, hint: u64) -> u64 {
    if once.is_zero() {
        return MAX_ITERS.min(hint.max(1) * 10_000);
    }
    let fit = (TARGET_TOTAL.as_nanos() / once.as_nanos().max(1)) as u64;
    fit.clamp(1, MAX_ITERS).min(hint.max(1) * 1_000).max(1)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, 100, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 100,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples as u64;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F>(name: &str, sample_size: u64, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let smoke = test_mode();
    let mut result = None;
    let mut bencher = Bencher {
        iters_hint: sample_size,
        smoke,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some(_) if smoke => println!("Testing {name} ... ok"),
        Some(m) => {
            let mean_ns = m.total.as_nanos() / u128::from(m.iters.max(1));
            let throughput_field = match throughput {
                Some(Throughput::Bytes(b)) => format!(",\"throughput_bytes\":{b}"),
                Some(Throughput::Elements(n)) => format!(",\"throughput_elements\":{n}"),
                None => String::new(),
            };
            println!(
                "BENCH {{\"name\":\"{name}\",\"iters\":{},\"mean_ns\":{mean_ns}{throughput_field}}}",
                m.iters
            );
            REPORTS.with(|r| {
                r.borrow_mut().push(BenchReport {
                    name: name.to_string(),
                    iters: m.iters,
                    mean_ns: mean_ns as u64,
                })
            });
        }
        None => println!("BENCH {{\"name\":\"{name}\",\"error\":\"no measurement\"}}"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut criterion = Criterion::default();
        criterion.bench_function("unit/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn reports_are_collected_and_drained() {
        let _ = take_reports();
        let mut criterion = Criterion::default();
        criterion.bench_function("unit/collected", |b| b.iter(|| black_box(2u32)));
        let reports = take_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].name, "unit/collected");
        assert!(reports[0].iters >= 1);
        assert!(take_reports().is_empty(), "drained on take");
    }

    #[test]
    fn groups_apply_throughput_and_sample_size() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("unit_group");
        group.throughput(Throughput::Bytes(64));
        group.sample_size(10);
        group.bench_function("nop", |b| b.iter(|| black_box(1u32)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }
}
