//! Offline stand-in for `serde_json`, over the vendored `serde` Content tree.
//!
//! Output conventions match upstream where this workspace can observe them:
//! 2-space pretty indentation with `": "` separators, externally tagged
//! enums, `null` for `None`, floats always printed with a decimal point
//! (`100.0`, not `100`), and non-string map keys rendered as strings.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Error for JSON serialization/deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Error::new(err.message().to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// --- Serialization ----------------------------------------------------------

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), None, 0);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize_content(), Some(2), 0);
    Ok(out)
}

fn write_content(out: &mut String, content: &Content, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            write_seq(out, items, indent, depth);
        }
        Content::Map(entries) => {
            let fields: Vec<(String, &Content)> =
                entries.iter().map(|(k, v)| (key_string(k), v)).collect();
            write_object(out, &fields, indent, depth);
        }
        Content::Struct(fields) => {
            let fields: Vec<(String, &Content)> =
                fields.iter().map(|(k, v)| ((*k).to_string(), v)).collect();
            write_object(out, &fields, indent, depth);
        }
        Content::UnitVariant(name) => write_json_string(out, name),
        Content::Variant(name, payload) => {
            let fields = vec![((*name).to_string(), payload.as_ref())];
            write_object(out, &fields, indent, depth);
        }
    }
}

fn write_seq(out: &mut String, items: &[Content], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_content(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_object(
    out: &mut String,
    fields: &[(String, &Content)],
    indent: Option<usize>,
    depth: usize,
) {
    if fields.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_json_string(out, key);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_content(out, value, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// Map keys must be strings in JSON; integers render as their decimal form,
/// anything else falls back to the content's compact rendering.
fn key_string(key: &Content) -> String {
    match key {
        Content::Str(s) => s.clone(),
        Content::U64(v) => v.to_string(),
        Content::I64(v) => v.to_string(),
        Content::Bool(b) => b.to_string(),
        other => other.render_compact(),
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        out.push_str(&format!("{v:.1}"));
    } else if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // serde_json rejects non-finite floats; render null like Value does.
        out.push_str("null");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- Deserialization --------------------------------------------------------

/// Parse JSON text and deserialize into `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let content = parse(input)?;
    Ok(T::deserialize_content(&content)?)
}

fn parse(input: &str) -> Result<Content> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Content> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Content::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Content::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Content::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Content::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(Error::new(format!(
            "unexpected character `{}` at byte {}",
            *c as char, *pos
        ))),
        None => Err(Error::new("unexpected end of input")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str, value: Content) -> Result<Content> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Content> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Content::Map(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b':') => *pos += 1,
            _ => return Err(Error::new(format!("expected `:` at byte {}", *pos))),
        }
        let value = parse_value(bytes, pos)?;
        entries.push((Content::Str(key), value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Content::Map(entries));
            }
            _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Content> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Content::Seq(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Content::Seq(items));
            }
            _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {}", *pos)));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            _ => {
                // Copy the maximal run of unescaped bytes in one step and
                // UTF-8-validate just that slice. (Validating from `pos` to
                // the end of the document per character made large-document
                // parsing quadratic.)
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
        }
    }
    Err(Error::new("unterminated string"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Content> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if !text.contains(['.', 'e', 'E']) {
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(v) = stripped.parse::<u64>() {
                if let Ok(signed) = i64::try_from(v) {
                    return Ok(Content::I64(-signed));
                }
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Content::U64(v));
        }
    }
    text.parse::<f64>()
        .map(Content::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

// --- Value ------------------------------------------------------------------

/// Loosely typed JSON value, indexable like `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
#[repr(transparent)]
pub struct Value(Content);

static VALUE_NULL: Value = Value(Content::Null);

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self.0, Content::Null)
    }

    pub fn is_array(&self) -> bool {
        matches!(self.0, Content::Seq(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self.0, Content::Map(_) | Content::Struct(_))
    }

    pub fn as_str(&self) -> Option<&str> {
        match &self.0 {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self.0 {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<Vec<Value>> {
        match &self.0 {
            Content::Seq(items) => Some(items.iter().cloned().map(Value).collect()),
            _ => None,
        }
    }

    fn get_key(&self, key: &str) -> &Value {
        let content = match &self.0 {
            Content::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Content::Str(s) if s == key))
                .map(|(_, v)| v),
            Content::Struct(fields) => fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v),
            _ => None,
        };
        match content {
            Some(inner) => Value::wrap_ref(inner),
            None => &VALUE_NULL,
        }
    }

    fn get_index(&self, index: usize) -> &Value {
        match &self.0 {
            Content::Seq(items) => items.get(index).map(Value::wrap_ref).unwrap_or(&VALUE_NULL),
            _ => &VALUE_NULL,
        }
    }

    fn wrap_ref(content: &Content) -> &Value {
        // Sound because `Value` is `#[repr(transparent)]` over `Content`.
        unsafe { &*(content as *const Content as *const Value) }
    }
}

impl Deserialize for Value {
    fn deserialize_content(content: &Content) -> std::result::Result<Self, DeError> {
        Ok(Value(content.clone()))
    }
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        self.0.clone()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&mut out, &self.0, None, 0);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get_key(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.get_index(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_matches_serde_json_conventions() {
        #[derive(Serialize)]
        struct Row {
            hop: u8,
            share: f64,
        }
        let json = to_string_pretty(&Row {
            hop: 10,
            share: 100.0,
        })
        .unwrap();
        assert!(json.contains("\"hop\": 10"), "{json}");
        assert!(json.contains("\"share\": 100.0"), "{json}");
        assert!(json.starts_with("{\n  "));
    }

    #[test]
    fn parse_and_index_round_trip() {
        let json = r#"{"rows": [{"hop": 3}, {"hop": 4}], "name": "x"}"#;
        let value: Value = from_str(json).unwrap();
        assert!(value["rows"].is_array());
        assert_eq!(value["rows"][1]["hop"].as_u64(), Some(4));
        assert_eq!(value["name"].as_str(), Some("x"));
        assert!(value["missing"].is_null());
    }

    #[test]
    fn escapes_round_trip() {
        let original = "line\n\"quoted\"\\tab\there".to_string();
        let json = to_string(&original).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn numbers_parse_to_natural_types() {
        assert_eq!(parse("42").unwrap(), Content::U64(42));
        assert_eq!(parse("-3").unwrap(), Content::I64(-3));
        assert_eq!(parse("2.5").unwrap(), Content::F64(2.5));
    }

    #[test]
    fn compact_vs_pretty_agree_on_structure() {
        let json = r#"{"a":[1,2],"b":null}"#;
        let value: Value = from_str(json).unwrap();
        let compact = to_string(&value).unwrap();
        let reparsed: Value = from_str(&compact).unwrap();
        assert_eq!(reparsed, value);
    }
}
