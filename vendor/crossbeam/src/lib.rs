//! Offline stand-in for `crossbeam`, covering the one feature this
//! workspace uses: scoped worker threads. `std::thread::scope` (stable
//! since 1.63) provides the same structured-concurrency guarantee —
//! spawned threads are joined before `scope` returns, so borrows of stack
//! data are sound — with a slightly different signature (no `Result`
//! wrapper, spawn closures take no scope argument).

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return_values() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }
}
