//! Offline stand-in for `crossbeam`, covering the two features this
//! workspace uses: scoped worker threads and work-stealing deques.
//!
//! `std::thread::scope` (stable since 1.63) provides the same
//! structured-concurrency guarantee as `crossbeam::thread::scope` —
//! spawned threads are joined before `scope` returns, so borrows of stack
//! data are sound — with a slightly different signature (no `Result`
//! wrapper, spawn closures take no scope argument).
//!
//! The `deque` module mirrors `crossbeam-deque`'s `Injector` / `Worker` /
//! `Stealer` API over a locked ring instead of the lock-free Chase-Lev
//! original. The campaign scheduler steals *path chunks* (each worth a
//! whole sub-campaign of simulated traffic), so queue operations are
//! millions of simulated events apart and contention on the lock is
//! unmeasurable; what matters is the API contract: LIFO/FIFO worker pops,
//! FIFO steals from the cold end, and `Steal::Retry` on contention.

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, TryLockError};

    /// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race; try again.
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A shared FIFO injector queue all workers push into and steal from.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Self {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue
                .lock()
                .expect("injector poisoned")
                .push_back(task);
        }

        /// Steal one task from the front (FIFO: oldest injected first).
        pub fn steal(&self) -> Steal<T> {
            match self.queue.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                Err(TryLockError::WouldBlock) => Steal::Retry,
                Err(TryLockError::Poisoned(_)) => panic!("injector poisoned"),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// Which end [`Worker::pop`] takes from (steals always take the
    /// opposite, coldest end).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// A worker-owned deque; `pop` is for the owner, [`Stealer`] clones
    /// hand the cold end to other workers.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Self {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        pub fn new_lifo() -> Self {
            Self {
                inner: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        pub fn push(&self, task: T) {
            self.inner.lock().expect("deque poisoned").push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            let mut q = self.inner.lock().expect("deque poisoned");
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().expect("deque poisoned").len()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// A handle that steals from the front (cold end) of a [`Worker`].
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self.inner.try_lock() {
                Ok(mut q) => match q.pop_front() {
                    Some(t) => Steal::Success(t),
                    None => Steal::Empty,
                },
                Err(TryLockError::WouldBlock) => Steal::Retry,
                Err(TryLockError::Poisoned(_)) => panic!("deque poisoned"),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("deque poisoned").is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn injector_is_fifo_and_reports_empty() {
        let inj: Injector<u32> = Injector::new();
        assert!(matches!(inj.steal(), Steal::Empty));
        inj.push(1);
        inj.push(2);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some(1));
        assert_eq!(inj.steal().success(), Some(2));
        assert!(inj.is_empty());
    }

    #[test]
    fn worker_flavors_and_stealer_take_opposite_ends() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        // Owner pops hottest (3); stealer takes coldest (1).
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal().success(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());

        let f = Worker::new_fifo();
        f.push(1);
        f.push(2);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
    }

    #[test]
    fn stealing_across_threads_consumes_each_task_once() {
        let inj: Injector<u64> = Injector::new();
        for i in 0..1_000u64 {
            inj.push(i);
        }
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut sum = 0u64;
                        loop {
                            match inj.steal() {
                                Steal::Success(v) => sum += v,
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 999 * 1_000 / 2);
    }

    #[test]
    fn scoped_threads_join_and_return_values() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }
}
