//! Minimal offline stand-in for the `rand_chacha` crate.
//!
//! Implements the genuine ChaCha20 block function (djb variant: 64-bit
//! block counter + 64-bit nonce, 20 rounds) behind the vendored
//! `rand::RngCore`/`SeedableRng` traits. Streams are deterministic in the
//! 256-bit seed; no bit-compatibility with upstream `rand_chacha` is
//! claimed or needed.

pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20-based deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha20Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl SeedableRng for ChaCha20Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha20Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = state[i].wrapping_add(input[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = ChaCha20Rng::seed_from_u64(7);
        let mut b = ChaCha20Rng::seed_from_u64(7);
        let mut c = ChaCha20Rng::seed_from_u64(8);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rfc_7539_block_function_core() {
        // RFC 7539 §2.3.2 test vector, adapted to our (counter, nonce=0)
        // layout: verify the keystream changes with the counter and the
        // first block differs from the raw state (i.e. rounds ran).
        let mut rng = ChaCha20Rng::from_seed([0x42; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second, "blocks must differ as the counter advances");
        assert!(first.iter().any(|&w| w != 0x4242_4242));
    }

    #[test]
    fn fill_bytes_matches_word_stream() {
        let mut a = ChaCha20Rng::seed_from_u64(99);
        let mut b = ChaCha20Rng::seed_from_u64(99);
        let mut buf = [0u8; 8];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..], &w1);
    }
}
