//! Chaos-sweep glue: extract fault targets from a world spec, fold a
//! study outcome into [`CellMetrics`], and drive a [`ScenarioMatrix`]
//! through full sharded campaigns.
//!
//! The layering intent: `shadow-chaos` owns fault *semantics* without
//! knowing what a world is, `shadow-analysis` owns the robustness
//! *comparison* without knowing how a campaign runs. This module — the
//! only place that sees both a [`WorldSpec`] and a [`FaultProfile`] —
//! bridges them.

use crate::study::{Study, StudyConfig, StudyOutcome};
use shadow_chaos::{FaultTargets, ScenarioMatrix};
use shadow_core::decoy::DecoyProtocol;
use shadow_core::world::{generate_spec, HostSpec, WorldSpec};

// The comparison types live in `shadow-analysis`; this facade re-exports
// them so sweep drivers import everything robustness-related from one
// place.
pub use shadow_analysis::robustness::{CellMetrics, CellReport, RobustnessReport};

/// Pull the node populations a fault profile's scheduled outages act on
/// out of a world spec. Pure spec data, so every shard — and the
/// sequential run — extracts the identical target set.
pub fn fault_targets(spec: &WorldSpec) -> FaultTargets {
    let mut targets = FaultTargets {
        routers: spec
            .topology
            .nodes()
            .filter(|n| n.is_router())
            .map(|n| n.id)
            .collect(),
        ..FaultTargets::default()
    };
    for (node, host) in &spec.hosts {
        match host {
            HostSpec::Resolver { .. } => targets.resolvers.push(*node),
            HostSpec::Vp { .. } => targets.vps.push(*node),
            _ => {}
        }
    }
    targets.honeypots.push(spec.auth_node);
    targets
        .honeypots
        .extend(spec.honey_web.iter().map(|&(node, _, _)| node));
    targets
}

/// Flatten a study outcome into the comparison metrics.
pub fn cell_metrics(name: &str, outcome: &StudyOutcome) -> CellMetrics {
    let landscape = outcome.landscape();
    let observer_addrs: std::collections::BTreeSet<String> = outcome
        .traceroutes
        .iter()
        .filter_map(|r| r.observer_addr)
        .map(|a| a.to_string())
        .collect();
    CellMetrics {
        name: name.to_string(),
        dns_ratio: landscape.protocol_ratio(DecoyProtocol::Dns),
        http_ratio: landscape.protocol_ratio(DecoyProtocol::Http),
        tls_ratio: landscape.protocol_ratio(DecoyProtocol::Tls),
        localized_paths: outcome
            .traceroutes
            .iter()
            .filter(|r| r.normalized_hop.is_some())
            .count(),
        traced_paths: outcome.traced_paths.len(),
        observer_ips: outcome.observer_ips().total_ips,
        observer_addrs: observer_addrs.into_iter().collect(),
        unsolicited: outcome.phase1.aggregates.unsolicited_total() as usize,
        decoys_sent: outcome.phase1.registry.len(),
    }
}

/// Run the matrix: one fault-free baseline campaign, then every cell as a
/// full sharded campaign under its profile, compared into a
/// [`RobustnessReport`]. `parallelism` bounds concurrent *cells*; each
/// cell additionally fans out over `shards` worker threads.
pub fn run_matrix(
    base: &StudyConfig,
    matrix: &ScenarioMatrix,
    shards: usize,
    parallelism: usize,
) -> RobustnessReport {
    let baseline_outcome = Study::run_sharded(
        StudyConfig {
            faults: None,
            ..base.clone()
        },
        shards,
    );
    let baseline = cell_metrics("baseline", &baseline_outcome);

    let cells = matrix
        .run_with(parallelism, |cell| {
            let config = base.clone().with_faults(cell.profile.clone());
            let outcome = Study::run_sharded(config, shards);
            cell_metrics(&cell.name, &outcome)
        })
        .into_iter()
        .map(|(_, metrics)| metrics)
        .collect();

    RobustnessReport::compare(baseline, cells)
}

/// [`fault_targets`] for a configuration (regenerates the spec — handy
/// when only a [`crate::study::StudyConfig`] is in hand).
pub fn fault_targets_for(config: &StudyConfig) -> FaultTargets {
    fault_targets(&generate_spec(config.world.clone()))
}
