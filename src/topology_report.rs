//! Topology cross-validation glue: extract the true router topology from
//! a study's world, score the Phase II reconstruction against it, and
//! sweep the comparison over the chaos ICMP rate-limiting axis.
//!
//! Layering mirrors [`crate::robustness`]: `shadow-topo` owns the graph
//! structures, `shadow-analysis` owns the scoring, `shadow-chaos` owns the
//! impairment semantics — this module is the only place that sees a
//! [`StudyOutcome`]'s world *and* a [`FaultProfile`], so the ground-truth
//! extraction and the sweep driver both live here.

use crate::study::{Study, StudyConfig, StudyOutcome};
use shadow_analysis::crossval::{CrossValCell, CrossValReport, TopoGroundTruth};
use shadow_chaos::{FaultProfile, ScenarioMatrix};
use shadow_netsim::NodeId;
use std::net::Ipv4Addr;

/// The default ICMP Time-Exceeded suppression sweep: from full coverage to
/// near-total rate limiting. Four levels — enough to see the recall curve
/// bend without quadrupling campaign time.
pub const DEFAULT_ICMP_LEVELS: [f64; 4] = [0.0, 0.5, 0.9, 0.99];

/// Extract what the simulator knows to be true for the outcome's traced
/// path set: walk the routing-table route of every traced (VP, dst) pair
/// and collect the on-path routers and their consecutive links, plus the
/// addresses of the ground-truth DPI tap nodes.
pub fn ground_truth(outcome: &StudyOutcome) -> TopoGroundTruth {
    let topology = outcome.world.engine.topology();
    let vp_node = |vp| {
        outcome
            .world
            .platform
            .vps
            .iter()
            .find(|v| v.id == vp)
            .map(|v| v.node)
    };

    let mut truth = TopoGroundTruth::default();
    for key in &outcome.traced_paths {
        let Some(src) = vp_node(key.vp) else { continue };
        let Some(route) = topology.route_to_addr(src, key.dst) else {
            continue;
        };
        let routers: Vec<Ipv4Addr> = route
            .iter()
            .map(|&id| topology.node(id))
            .filter(|n| n.is_router())
            .map(|n| n.addr)
            .collect();
        truth.routers.extend(routers.iter().copied());
        for pair in routers.windows(2) {
            if pair[0] != pair[1] {
                truth.links.insert((pair[0], pair[1]));
            }
        }
    }
    for &(node, _) in &outcome.world.ground_truth.dpi_taps {
        truth.observers.insert(observer_addr(outcome, node));
    }
    truth
}

fn observer_addr(outcome: &StudyOutcome, node: NodeId) -> Ipv4Addr {
    outcome.world.engine.topology().node(node).addr
}

/// Score one finished study against its own ground truth.
pub fn score_outcome(name: &str, icmp_rate_limit: f64, outcome: &StudyOutcome) -> CrossValCell {
    let truth = ground_truth(outcome);
    CrossValCell::score(
        name,
        icmp_rate_limit,
        &outcome.router_graph,
        &outcome.traceroutes,
        &truth,
    )
}

/// Run the ICMP-coverage sweep: one full sharded campaign per suppression
/// level (cells differ *only* in `icmp_rate_limit`; all share
/// `fault_seed`), each scored against its own world's ground truth.
/// `parallelism` bounds concurrent cells; each cell fans out over
/// `shards` worker threads.
pub fn run_icmp_sweep(
    base: &StudyConfig,
    levels: &[f64],
    fault_seed: u64,
    shards: usize,
    parallelism: usize,
) -> CrossValReport {
    let template = FaultProfile::baseline("icmp");
    let matrix = ScenarioMatrix::icmp_grid(levels, fault_seed, &template);
    let cells = matrix
        .run_with(parallelism, |cell| {
            let config = base.clone().with_faults(cell.profile.clone());
            let outcome = Study::run_sharded(config, shards);
            score_outcome(&cell.name, cell.profile.icmp_rate_limit, &outcome)
        })
        .into_iter()
        .map(|(_, scored)| scored)
        .collect();
    CrossValReport::new(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_covers_traced_paths() {
        let outcome = Study::run(StudyConfig::tiny(7));
        assert!(!outcome.traced_paths.is_empty());
        let truth = ground_truth(&outcome);
        assert!(!truth.routers.is_empty());
        assert!(!truth.links.is_empty());
        assert!(!truth.observers.is_empty());
        // Every revealed router must be a true on-path router: the
        // simulator has no aliasing, so precision is exact.
        for addr in outcome.router_graph.router_addrs() {
            assert!(truth.routers.contains(&addr), "phantom router {addr}");
        }
    }

    #[test]
    fn baseline_cell_scores_high_recall() {
        let outcome = Study::run(StudyConfig::tiny(7));
        let cell = score_outcome("icmp0%", 0.0, &outcome);
        assert_eq!(cell.router_precision(), 1.0);
        assert!(cell.router_recall() > 0.0);
        assert!(cell.icmp_observations > 0);
    }

    #[test]
    fn sweep_degrades_with_suppression() {
        let report = run_icmp_sweep(&StudyConfig::tiny(7), &[0.0, 0.99], 11, 2, 2);
        assert_eq!(report.cells.len(), 2);
        let base = &report.cells[0];
        let starved = &report.cells[1];
        assert_eq!(base.name, "icmp0%");
        assert!(
            starved.icmp_observations < base.icmp_observations,
            "suppression must shrink ICMP coverage ({} vs {})",
            starved.icmp_observations,
            base.icmp_observations
        );
        assert!(starved.router_recall() <= base.router_recall());
    }
}
