//! # traffic-shadowing
//!
//! A full reproduction of *“Yesterday Once More: Global Measurement of
//! Internet Traffic Shadowing Behaviors”* (IMC 2024) over a deterministic
//! packet-level Internet simulator.
//!
//! The workspace layers (see `DESIGN.md`):
//!
//! * [`shadow_packet`] — wire formats (IPv4/UDP/TCP/ICMP/DNS/HTTP/TLS);
//! * [`shadow_netsim`] — the discrete-event network simulator;
//! * [`shadow_geo`] — AS registry, prefix allocation, geolocation;
//! * [`shadow_dns`] — resolver behaviour models + the Table-4 catalog;
//! * [`shadow_observer`] — exhibitor models (DPI taps, probe origins…);
//! * [`shadow_vantage`] — the VPN measurement platform;
//! * [`shadow_honeypot`] — capture endpoints;
//! * [`shadow_core`] — the paper's methodology (decoys, phases, noise
//!   mitigation) and the world builder;
//! * [`shadow_intel`] — blocklist / exploit-db / port-scan substrates;
//! * [`shadow_telemetry`] — run-wide metrics + the structured event journal;
//! * [`shadow_analysis`] — the tables and figures.
//!
//! The [`study`] module wires them into one call:
//!
//! ```no_run
//! use traffic_shadowing::study::{Study, StudyConfig};
//!
//! let outcome = Study::run(StudyConfig::tiny(42));
//! println!("{}", outcome.summary());
//! ```

pub use shadow_analysis;
pub use shadow_chaos;
pub use shadow_core;
pub use shadow_dns;
pub use shadow_geo;
pub use shadow_honeypot;
pub use shadow_intel;
pub use shadow_netsim;
pub use shadow_observer;
pub use shadow_packet;
pub use shadow_telemetry;
pub use shadow_topo;
pub use shadow_vantage;

pub mod robustness;
pub mod study;
pub mod topology_report;

pub use study::{Study, StudyConfig, StudyOutcome};
