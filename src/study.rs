//! One-call orchestration of the full study: world construction, Appendix-E
//! pre-flight, Phase I, correlation, Phase II, and the analysis inputs —
//! everything the examples and benches build on.

use crate::robustness::fault_targets;
use shadow_analysis::breakdown::{self, DestinationBreakdown};
use shadow_analysis::cases::{AnycastCase, CnObserverCase, ResolverCase};
use shadow_analysis::landscape::LandscapeReport;
use shadow_analysis::location::{ObserverHopTable, ObserverIpSummary};
use shadow_analysis::origins::OriginAsReport;
use shadow_analysis::probing::ProbingReport;
use shadow_analysis::reuse::ReuseReport;
use shadow_analysis::temporal::{interval_cdf, Cdf};
use shadow_chaos::FaultProfile;
use shadow_core::campaign::{CampaignData, CampaignRunner, Phase1Config};
use shadow_core::correlate::{CorrelatedRequest, Correlator, PathKey};
use shadow_core::decoy::DecoyProtocol;
use shadow_core::executor::{run_phase1_sharded_conditioned, run_phase2_sharded, TelemetryOptions};
use shadow_core::noise::{NoiseFilter, PreflightOutcome};
use shadow_core::phase2::{paths_to_trace, Phase2Config, Phase2Runner, TracerouteResult};
use shadow_core::world::{generate_spec, World, WorldConfig, WorldSpec};
use shadow_dns::catalog::resolver_h;
use shadow_geo::country::cc;
use shadow_intel::{Blocklist, PortScanner};
use shadow_netsim::fault::LinkConditioner;
use shadow_vantage::vp::DnsRetry;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Study-wide configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub world: WorldConfig,
    pub phase1: Phase1Config,
    pub phase2: Phase2Config,
    /// Cap on traced paths per decoy protocol (Phase II cost control).
    pub trace_cap_per_protocol: usize,
    /// Skip Phase II entirely (landscape-only runs).
    pub run_phase2: bool,
    /// Run-wide observability (metrics and/or event journal). Disabled by
    /// default — and zero-cost when disabled.
    pub telemetry: TelemetryOptions,
    /// Fault injection: impair the network under a declarative profile
    /// (see `shadow_chaos`). `None` (the default) leaves the engine's
    /// conditioner slot empty — byte-identical to pre-chaos builds.
    pub faults: Option<FaultProfile>,
}

impl StudyConfig {
    /// A laptop-milliseconds configuration for tests and the quickstart.
    pub fn tiny(seed: u64) -> Self {
        Self {
            world: WorldConfig::tiny(seed),
            phase1: Phase1Config::default(),
            phase2: Phase2Config {
                max_ttl: 24,
                ..Phase2Config::default()
            },
            trace_cap_per_protocol: 12,
            run_phase2: true,
            telemetry: TelemetryOptions::disabled(),
            faults: None,
        }
    }

    /// The default full-scale (simulated) campaign.
    pub fn standard(seed: u64) -> Self {
        Self {
            world: WorldConfig::standard(seed),
            phase1: Phase1Config::default(),
            phase2: Phase2Config::default(),
            trace_cap_per_protocol: 60,
            run_phase2: true,
            telemetry: TelemetryOptions::disabled(),
            faults: None,
        }
    }

    /// Install a fault profile (builder style, for sweeps).
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// The Phase I configuration with the fault profile's DNS retry
    /// policy folded in (an explicit `phase1.dns_retry` wins).
    fn phase1_effective(&self) -> Phase1Config {
        let mut phase1 = self.phase1.clone();
        if phase1.dns_retry.is_none() {
            if let Some(profile) = &self.faults {
                phase1.dns_retry = profile.dns_retry.map(|r| DnsRetry {
                    attempts: r.attempts,
                    timeout_ms: r.timeout_ms,
                });
            }
        }
        phase1
    }

    /// Compile the fault profile against `spec`'s node populations.
    /// `None` when no profile is installed — the engine keeps its
    /// zero-cost empty conditioner slot.
    fn conditioner(&self, spec: &WorldSpec) -> Option<Arc<LinkConditioner>> {
        self.faults
            .as_ref()
            .map(|profile| Arc::new(profile.compile(&fault_targets(spec))))
    }
}

/// Everything the study produced.
pub struct StudyOutcome {
    pub world: World,
    pub preflight: PreflightOutcome,
    /// Phase I data (the landscape inputs — one decoy per path/protocol).
    pub phase1: CampaignData,
    /// Phase II data (the TTL sweeps), if Phase II ran.
    pub phase2: Option<CampaignData>,
    /// Correlation of Phase I arrivals.
    pub correlated: Vec<CorrelatedRequest>,
    pub traced_paths: Vec<PathKey>,
    pub traceroutes: Vec<TracerouteResult>,
    /// Destination address → display name.
    pub dest_names: BTreeMap<Ipv4Addr, String>,
    /// The Spamhaus stand-in, populated from world ground truth
    /// (DESIGN.md documents the substitution).
    pub blocklist: Blocklist,
    /// The port-scan substrate for §5.2's observer fingerprinting.
    pub port_scanner: PortScanner,
    /// Merged run metrics (Phase I + Phase II + post-correlation
    /// classification); `None` when telemetry was disabled.
    pub metrics: Option<shadow_telemetry::MetricsSnapshot>,
    /// The merged, canonically sorted event journal; `None` unless the
    /// journal was enabled.
    pub journal: Option<Vec<shadow_telemetry::JournalRecord>>,
}

/// The runner.
pub struct Study;

impl Study {
    pub fn run(config: StudyConfig) -> StudyOutcome {
        // `World::build` is `generate_spec(..).instantiate()`; going
        // through the spec here keeps one copy around for compiling the
        // fault profile against the world's node populations.
        let spec = generate_spec(config.world.clone());
        let conditioner = config.conditioner(&spec);
        let mut world = spec.instantiate();
        let preflight = NoiseFilter::run_and_apply(&mut world);
        // Telemetry and faults start *after* the pre-flight, mirroring the
        // sharded path (where the pre-flight replays in every shard and
        // must not be counted K times, and vets the platform on a healthy
        // network so the global plan survives impairment).
        world.engine.set_telemetry(config.telemetry.handle(0));
        world.engine.set_conditioner(conditioner);

        let phase1_config = config.phase1_effective();
        let mut phase1 = CampaignRunner::run_phase1(&mut world, &phase1_config);
        let correlator = Correlator::new(&phase1.registry);
        let correlated = correlator.correlate(&phase1.arrivals);

        let (traced_paths, traceroutes, mut phase2_data) = if config.run_phase2 {
            let traced =
                paths_to_trace(&correlated, &phase1.registry, config.trace_cap_per_protocol);
            let (results, data) = Phase2Runner::run(&mut world, &traced, &config.phase2);
            (traced, results, Some(data))
        } else {
            (Vec::new(), Vec::new(), None)
        };
        let (metrics, journal) =
            finalize_telemetry(&config, &mut phase1, phase2_data.as_mut(), &correlated);

        let mut dest_names: BTreeMap<Ipv4Addr, String> = BTreeMap::new();
        for dest in &world.dns_destinations {
            dest_names.insert(dest.addr, dest.dest.name.to_string());
        }
        for site in &world.tranco {
            dest_names.insert(site.addr, format!("site:{}", site.country));
        }

        let blocklist = Blocklist::from_addrs(world.ground_truth.blocklisted_addrs.iter().copied());
        let mut port_scanner = PortScanner::new();
        for addr in &world.ground_truth.bgp_speaking_observers {
            port_scanner.set_open(*addr, 179);
        }

        StudyOutcome {
            world,
            preflight,
            phase1,
            phase2: phase2_data,
            correlated,
            traced_paths,
            traceroutes,
            dest_names,
            blocklist,
            port_scanner,
            metrics,
            journal,
        }
    }

    /// [`Study::run`], executed across `shards` worker threads (one
    /// private world per shard, VPs partitioned round-robin). Produces
    /// byte-identical output to the sequential path for any shard count —
    /// `tests/sharded_equivalence.rs` enforces this on the exported
    /// analysis bundle.
    pub fn run_sharded(config: StudyConfig, shards: usize) -> StudyOutcome {
        let spec = generate_spec(config.world.clone());
        let phase1_config = config.phase1_effective();
        let mut sharded = run_phase1_sharded_conditioned(
            &spec,
            &phase1_config,
            shards,
            config.telemetry,
            config.conditioner(&spec),
        );
        let mut phase1 = sharded.data;
        let preflight = sharded.preflight;
        let correlator = Correlator::new(&phase1.registry);
        let correlated = correlator.correlate(&phase1.arrivals);

        let (traced_paths, traceroutes, mut phase2_data) = if config.run_phase2 {
            let traced =
                paths_to_trace(&correlated, &phase1.registry, config.trace_cap_per_protocol);
            let (results, data) = run_phase2_sharded(
                &mut sharded.worlds,
                &sharded.assignment,
                &traced,
                &config.phase2,
            );
            (traced, results, Some(data))
        } else {
            (Vec::new(), Vec::new(), None)
        };
        let (metrics, journal) =
            finalize_telemetry(&config, &mut phase1, phase2_data.as_mut(), &correlated);

        // Shard 0's world carries the analysis inputs: platform vetting,
        // destinations, and ground truth are spec data, identical in every
        // shard and in the sequential run.
        let world = sharded.worlds.swap_remove(0);

        let mut dest_names: BTreeMap<Ipv4Addr, String> = BTreeMap::new();
        for dest in &world.dns_destinations {
            dest_names.insert(dest.addr, dest.dest.name.to_string());
        }
        for site in &world.tranco {
            dest_names.insert(site.addr, format!("site:{}", site.country));
        }

        let blocklist = Blocklist::from_addrs(world.ground_truth.blocklisted_addrs.iter().copied());
        let mut port_scanner = PortScanner::new();
        for addr in &world.ground_truth.bgp_speaking_observers {
            port_scanner.set_open(*addr, 179);
        }

        StudyOutcome {
            world,
            preflight,
            phase1,
            phase2: phase2_data,
            correlated,
            traced_paths,
            traceroutes,
            dest_names,
            blocklist,
            port_scanner,
            metrics,
            journal,
        }
    }
}

/// Merge the per-phase telemetry into the study-level artifacts and fold
/// the post-correlation classification in: every correlated arrival lands
/// in the `unsolicited_by_rule` map / retention-interval histogram, and
/// (when journaling) every unsolicited arrival gets an
/// [`UnsolicitedArrival`](shadow_telemetry::EventKind::UnsolicitedArrival)
/// record. Classification runs on the *merged* data, so the synthesized
/// records are identical for any shard count.
fn finalize_telemetry(
    config: &StudyConfig,
    phase1: &mut CampaignData,
    phase2: Option<&mut CampaignData>,
    correlated: &[CorrelatedRequest],
) -> (
    Option<shadow_telemetry::MetricsSnapshot>,
    Option<Vec<shadow_telemetry::JournalRecord>>,
) {
    if !config.telemetry.metrics && !config.telemetry.journal {
        return (None, None);
    }
    let mut metrics = std::mem::take(&mut phase1.metrics);
    let mut journal = std::mem::take(&mut phase1.journal);
    if let Some(p2) = phase2 {
        // Both phases ran on the same shard set; keep the shard count
        // instead of summing it across phases.
        let shards = metrics.run.shards.max(p2.metrics.run.shards);
        metrics.merge(&std::mem::take(&mut p2.metrics));
        metrics.run.shards = shards;
        journal.append(&mut p2.journal);
    }
    for (i, req) in correlated.iter().enumerate() {
        let rule = format!("{:?}", req.label);
        metrics.record_classification(&rule, req.label.is_unsolicited(), req.interval.millis());
        if config.telemetry.journal && req.label.is_unsolicited() {
            journal.push(shadow_telemetry::JournalRecord {
                at_ms: req.arrival.at.millis(),
                shard: 0,
                node: None,
                seq: i as u64,
                event: shadow_telemetry::EventKind::UnsolicitedArrival {
                    rule,
                    domain: req.arrival.domain.as_str().to_string(),
                    src: req.arrival.src,
                    protocol: req.arrival.protocol.as_str().to_string(),
                },
            });
        }
    }
    shadow_telemetry::sort_records(&mut journal);
    let journal = config.telemetry.journal.then_some(journal);
    (Some(metrics), journal)
}

impl StudyOutcome {
    /// Figure 3.
    pub fn landscape(&self) -> LandscapeReport {
        LandscapeReport::compute(
            &self.phase1.registry,
            &self.correlated,
            &self.world.platform,
            &self.dest_names,
        )
    }

    /// Table 2.
    pub fn hop_table(&self) -> ObserverHopTable {
        ObserverHopTable::compute(&self.traceroutes)
    }

    /// Table 3 + the observer-IP country split.
    pub fn observer_ips(&self) -> ObserverIpSummary {
        ObserverIpSummary::compute(&self.traceroutes, &self.world.geo, &self.world.catalog)
    }

    /// Figure 4: interval CDF for DNS decoys to Resolver_h.
    pub fn fig4_cdf(&self) -> Cdf {
        let dsts: Vec<Ipv4Addr> = resolver_h().iter().map(|d| d.addr).collect();
        interval_cdf(&self.correlated, DecoyProtocol::Dns, Some(&dsts))
    }

    /// Figure 4's control: the other 15 public resolvers.
    pub fn fig4_other_resolvers_cdf(&self) -> Cdf {
        let heavy: Vec<Ipv4Addr> = resolver_h().iter().map(|d| d.addr).collect();
        let others: Vec<Ipv4Addr> = self
            .world
            .dns_destinations
            .iter()
            .filter(|d| {
                matches!(
                    d.dest.kind,
                    shadow_dns::catalog::DnsDestinationKind::PublicResolver
                ) && !heavy.contains(&d.addr)
            })
            .map(|d| d.addr)
            .collect();
        interval_cdf(&self.correlated, DecoyProtocol::Dns, Some(&others))
    }

    /// Figure 5.
    pub fn fig5_breakdown(&self) -> Vec<DestinationBreakdown> {
        breakdown::compute(&self.phase1.registry, &self.correlated, &self.dest_names)
    }

    /// Figure 6.
    pub fn fig6_origins(&self) -> OriginAsReport {
        let dests: BTreeMap<Ipv4Addr, String> = resolver_h()
            .iter()
            .map(|d| (d.addr, d.name.to_string()))
            .collect();
        OriginAsReport::compute(&self.correlated, &dests, &self.world.geo, &self.blocklist)
    }

    /// Figure 7: interval CDFs for HTTP and TLS decoys.
    pub fn fig7_cdfs(&self) -> (Cdf, Cdf) {
        (
            interval_cdf(&self.correlated, DecoyProtocol::Http, None),
            interval_cdf(&self.correlated, DecoyProtocol::Tls, None),
        )
    }

    /// §5.1 reuse counts.
    pub fn reuse(&self) -> ReuseReport {
        ReuseReport::compute(
            &self.correlated,
            DecoyProtocol::Dns,
            shadow_netsim::time::SimDuration::from_hours(1),
        )
    }

    /// §5 probing incentives for decoys of one protocol.
    pub fn probing(&self, protocol: DecoyProtocol) -> ProbingReport {
        ProbingReport::compute(&self.correlated, protocol, &self.blocklist)
    }

    /// Case I (any resolver by catalog name).
    pub fn resolver_case(&self, name: &str) -> Option<ResolverCase> {
        let dest = self.world.dns_destination(name)?;
        Some(ResolverCase::compute(
            &self.phase1.registry,
            &self.correlated,
            dest.addr,
            name,
        ))
    }

    /// Case II (the 114DNS anycast split).
    pub fn anycast_case(&self) -> Option<AnycastCase> {
        let dest = self.world.dns_destination("114DNS")?;
        Some(AnycastCase::compute(
            &self.phase1.registry,
            &self.correlated,
            &self.world.platform,
            dest.addr,
            "114DNS",
            cc("CN"),
        ))
    }

    /// Case III (CN observer concentration).
    pub fn cn_observer_case(&self) -> CnObserverCase {
        CnObserverCase::compute(&self.traceroutes, &self.correlated, &self.world.geo)
    }

    /// §5.2 protocol combinations per observer network.
    pub fn observer_combos(&self) -> shadow_analysis::combos::ObserverCombos {
        shadow_analysis::combos::ObserverCombos::compute(
            &self.correlated,
            &self.traceroutes,
            &self.world.geo,
        )
    }

    /// Overall Decoy-Request combination counts.
    pub fn combo_counts(&self) -> std::collections::BTreeMap<String, usize> {
        shadow_analysis::combos::combo_counts(&self.correlated)
    }

    /// §5.2 open-port scan of ICMP-revealed observers.
    pub fn observer_port_scan(&self) -> shadow_intel::PortScanReport {
        let observer_addrs: Vec<Ipv4Addr> = self
            .traceroutes
            .iter()
            .filter(|r| r.normalized_hop.is_some() && r.normalized_hop != Some(10))
            .filter_map(|r| r.observer_addr)
            .collect();
        self.port_scanner.scan_all(observer_addrs.iter())
    }

    /// Total decoys sent across both phases.
    pub fn total_decoys(&self) -> usize {
        self.phase1.registry.len() + self.phase2.as_ref().map(|p| p.registry.len()).unwrap_or(0)
    }

    /// Bundle every analysis artifact for JSON export (diffing runs).
    pub fn export_bundle(&self) -> shadow_analysis::export::AnalysisBundle {
        use shadow_analysis::export::{grid_points, AnalysisBundle, SerializableHopTable};
        let (http_cdf, tls_cdf) = self.fig7_cdfs();
        AnalysisBundle {
            landscape: Some(self.landscape()),
            hop_table: Some(SerializableHopTable::from_table(&self.hop_table())),
            observer_ips: Some(self.observer_ips()),
            fig4_grid: Some(grid_points(&self.fig4_cdf())),
            fig5: Some(self.fig5_breakdown()),
            origins: Some(self.fig6_origins()),
            fig7_http_grid: Some(grid_points(&http_cdf)),
            fig7_tls_grid: Some(grid_points(&tls_cdf)),
            reuse: Some(self.reuse()),
            probing_dns: Some(self.probing(DecoyProtocol::Dns)),
        }
    }

    /// A human-readable executive summary.
    pub fn summary(&self) -> String {
        let counts = self.phase1.registry.counts();
        let landscape = self.landscape();
        let unsolicited = self
            .correlated
            .iter()
            .filter(|r| r.label.is_unsolicited())
            .count();
        format!(
            "platform: {} VPs after vetting ({} excluded)\n\
             decoys: {} DNS / {} HTTP / {} TLS\n\
             arrivals: {} captured, {} unsolicited\n\
             path ratios: DNS {:.1}% | HTTP {:.1}% | TLS {:.1}%\n\
             phase II: {} paths traced, {} observers localized",
            self.world.platform.vps.len(),
            self.world.platform.excluded.len(),
            counts.get(&DecoyProtocol::Dns).unwrap_or(&0),
            counts.get(&DecoyProtocol::Http).unwrap_or(&0),
            counts.get(&DecoyProtocol::Tls).unwrap_or(&0),
            self.phase1.arrivals.len(),
            unsolicited,
            landscape.protocol_ratio(DecoyProtocol::Dns) * 100.0,
            landscape.protocol_ratio(DecoyProtocol::Http) * 100.0,
            landscape.protocol_ratio(DecoyProtocol::Tls) * 100.0,
            self.traced_paths.len(),
            self.traceroutes
                .iter()
                .filter(|r| r.normalized_hop.is_some())
                .count(),
        )
    }
}
