//! One-call orchestration of the full study: world construction, Appendix-E
//! pre-flight, Phase I, correlation, Phase II, and the analysis inputs —
//! everything the examples and benches build on.

use crate::robustness::fault_targets;
use shadow_analysis::breakdown::{self, DestinationBreakdown};
use shadow_analysis::cases::{AnycastCase, CnObserverCase, ResolverCase};
use shadow_analysis::landscape::LandscapeReport;
use shadow_analysis::location::{ObserverHopTable, ObserverIpSummary};
use shadow_analysis::origins::OriginAsReport;
use shadow_analysis::probing::ProbingReport;
use shadow_analysis::reuse::ReuseReport;
use shadow_analysis::temporal::{interval_cdf, interval_histogram, Cdf};
use shadow_chaos::FaultProfile;
use shadow_core::campaign::{CampaignData, CampaignRunner, Phase1Config};
use shadow_core::correlate::{Combo, CorrelatedRequest, Correlator, PathKey};
use shadow_core::decoy::DecoyProtocol;
use shadow_core::executor::{
    run_phase1_sharded_sink, run_phase1_work_stealing, run_phase2_sharded_sink,
    run_phase2_work_stealing, ShardedPhase1, StealConfig, TelemetryOptions,
};
use shadow_core::noise::{NoiseFilter, PreflightOutcome};
use shadow_core::phase2::{paths_to_trace_streamed, Phase2Config, Phase2Runner, TracerouteResult};
use shadow_core::sink::{IntervalHistogram, SinkConfig};
use shadow_core::world::{generate_spec, World, WorldConfig, WorldSpec};
use shadow_dns::catalog::resolver_h;
use shadow_geo::country::cc;
use shadow_intel::{Blocklist, PortScanner};
use shadow_netsim::fault::LinkConditioner;
use shadow_vantage::vp::DnsRetry;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Study-wide configuration.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    pub world: WorldConfig,
    pub phase1: Phase1Config,
    pub phase2: Phase2Config,
    /// Cap on traced paths per decoy protocol (Phase II cost control).
    pub trace_cap_per_protocol: usize,
    /// Skip Phase II entirely (landscape-only runs).
    pub run_phase2: bool,
    /// Run-wide observability (metrics and/or event journal). Disabled by
    /// default — and zero-cost when disabled.
    pub telemetry: TelemetryOptions,
    /// Fault injection: impair the network under a declarative profile
    /// (see `shadow_chaos`). `None` (the default) leaves the engine's
    /// conditioner slot empty — byte-identical to pre-chaos builds.
    pub faults: Option<FaultProfile>,
    /// Keep the raw honeypot arrival vectors alongside the streamed
    /// correlation aggregates. The default (`false`) streams: every
    /// arrival is classified at capture time, the honeypots buffer
    /// nothing, and memory stays flat in traffic volume. Opt in for the
    /// sample-level analyses (Figure 6 origins, probing payloads, the
    /// case studies) that need individual requests.
    pub retain_arrivals: bool,
}

impl StudyConfig {
    /// A laptop-milliseconds configuration for tests and the quickstart.
    pub fn tiny(seed: u64) -> Self {
        Self {
            world: WorldConfig::tiny(seed),
            phase1: Phase1Config::default(),
            phase2: Phase2Config {
                max_ttl: 24,
                ..Phase2Config::default()
            },
            trace_cap_per_protocol: 12,
            run_phase2: true,
            telemetry: TelemetryOptions::disabled(),
            faults: None,
            retain_arrivals: false,
        }
    }

    /// The default full-scale (simulated) campaign.
    pub fn standard(seed: u64) -> Self {
        Self {
            world: WorldConfig::standard(seed),
            phase1: Phase1Config::default(),
            phase2: Phase2Config::default(),
            trace_cap_per_protocol: 60,
            run_phase2: true,
            telemetry: TelemetryOptions::disabled(),
            faults: None,
            retain_arrivals: false,
        }
    }

    /// The paper's §3 deployment: 4,364 VPs against the full destination
    /// set. Streams (no retained arrivals) — at this scale the raw
    /// arrival vector is the difference between flat and unbounded
    /// memory — and is meant to run under
    /// [`Study::run_work_stealing`] with [`StealConfig::auto`]
    /// (`shadow_core::executor::StealConfig`).
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            world: WorldConfig::paper_scale(seed),
            phase1: Phase1Config::default(),
            phase2: Phase2Config::default(),
            trace_cap_per_protocol: 60,
            run_phase2: true,
            telemetry: TelemetryOptions::disabled(),
            faults: None,
            retain_arrivals: false,
        }
    }

    /// `factor`× the paper's decoy volume (both scale axes grow √factor;
    /// `factor = 1` is [`Self::paper_scale`]).
    pub fn paper_scale_factor(seed: u64, factor: u32) -> Self {
        Self {
            world: WorldConfig::paper_scale_factor(seed, factor),
            ..Self::paper_scale(seed)
        }
    }

    /// Ten times the paper's decoy volume (both scale axes grow ~√10).
    pub fn paper_scale_10x(seed: u64) -> Self {
        Self {
            world: WorldConfig::paper_scale_10x(seed),
            ..Self::paper_scale(seed)
        }
    }

    /// Install a fault profile (builder style, for sweeps).
    pub fn with_faults(mut self, profile: FaultProfile) -> Self {
        self.faults = Some(profile);
        self
    }

    /// Opt into buffering raw arrivals (builder style) for the
    /// sample-level analyses.
    pub fn with_retained_arrivals(mut self) -> Self {
        self.retain_arrivals = true;
        self
    }

    /// The sink configuration both phases stream through.
    fn sink(&self) -> SinkConfig {
        if self.retain_arrivals {
            SinkConfig::retained()
        } else {
            SinkConfig::streaming()
        }
    }

    /// The Phase I configuration with the fault profile's DNS retry
    /// policy folded in (an explicit `phase1.dns_retry` wins).
    fn phase1_effective(&self) -> Phase1Config {
        let mut phase1 = self.phase1.clone();
        if phase1.dns_retry.is_none() {
            if let Some(profile) = &self.faults {
                phase1.dns_retry = profile.dns_retry.map(|r| DnsRetry {
                    attempts: r.attempts,
                    timeout_ms: r.timeout_ms,
                });
            }
        }
        phase1
    }

    /// Compile the fault profile against `spec`'s node populations.
    /// `None` when no profile is installed — the engine keeps its
    /// zero-cost empty conditioner slot.
    fn conditioner(&self, spec: &WorldSpec) -> Option<Arc<LinkConditioner>> {
        self.faults
            .as_ref()
            .map(|profile| Arc::new(profile.compile(&fault_targets(spec))))
    }
}

/// Everything the study produced.
pub struct StudyOutcome {
    pub world: World,
    pub preflight: PreflightOutcome,
    /// Phase I data (the landscape inputs — one decoy per path/protocol).
    pub phase1: CampaignData,
    /// Phase II data (the TTL sweeps), if Phase II ran.
    pub phase2: Option<CampaignData>,
    /// Correlation of Phase I arrivals — populated only when the study ran
    /// with retained arrivals; the streaming default leaves it empty and
    /// `phase1.aggregates` carries the classification state.
    pub correlated: Vec<CorrelatedRequest>,
    /// Whether raw arrivals (and hence `correlated`) were retained.
    pub retained: bool,
    pub traced_paths: Vec<PathKey>,
    pub traceroutes: Vec<TracerouteResult>,
    /// Router graph reconstructed from Phase II Time-Exceeded arrivals,
    /// annotated with ASNs from the world's geo database. Empty when
    /// Phase II did not run.
    pub router_graph: shadow_topo::RouterGraph,
    /// Destination address → display name.
    pub dest_names: BTreeMap<Ipv4Addr, String>,
    /// The Spamhaus stand-in, populated from world ground truth
    /// (DESIGN.md documents the substitution).
    pub blocklist: Blocklist,
    /// The port-scan substrate for §5.2's observer fingerprinting.
    pub port_scanner: PortScanner,
    /// Merged run metrics (Phase I + Phase II + post-correlation
    /// classification); `None` when telemetry was disabled.
    pub metrics: Option<shadow_telemetry::MetricsSnapshot>,
    /// The merged, canonically sorted event journal; `None` unless the
    /// journal was enabled.
    pub journal: Option<Vec<shadow_telemetry::JournalRecord>>,
}

/// The runner.
pub struct Study;

impl Study {
    pub fn run(config: StudyConfig) -> StudyOutcome {
        // `World::build` is `generate_spec(..).instantiate()`; going
        // through the spec here keeps one copy around for compiling the
        // fault profile against the world's node populations.
        let spec = generate_spec(config.world.clone());
        let conditioner = config.conditioner(&spec);
        let mut world = spec.instantiate();
        let preflight = NoiseFilter::run_and_apply(&mut world);
        // Telemetry and faults start *after* the pre-flight, mirroring the
        // sharded path (where the pre-flight replays in every shard and
        // must not be counted K times, and vets the platform on a healthy
        // network so the global plan survives impairment).
        world.engine.set_telemetry(config.telemetry.handle(0));
        world.engine.set_conditioner(conditioner);

        let phase1_config = config.phase1_effective();
        let mut phase1 = CampaignRunner::run_phase1_with(&mut world, &phase1_config, config.sink());
        let correlated = if config.retain_arrivals {
            Correlator::new(&phase1.registry).correlate(&phase1.arrivals)
        } else {
            Vec::new()
        };

        let (traced_paths, traceroutes, mut phase2_data) = if config.run_phase2 {
            let traced = paths_to_trace_streamed(&phase1.aggregates, config.trace_cap_per_protocol);
            let (results, data) =
                Phase2Runner::run_with(&mut world, &traced, &config.phase2, config.sink());
            (traced, results, Some(data))
        } else {
            (Vec::new(), Vec::new(), None)
        };
        let (metrics, journal) =
            finalize_telemetry(&config, &mut phase1, phase2_data.as_mut(), &correlated);

        let mut dest_names: BTreeMap<Ipv4Addr, String> = BTreeMap::new();
        for dest in &world.dns_destinations {
            dest_names.insert(dest.addr, dest.dest.name.to_string());
        }
        for site in &world.tranco {
            dest_names.insert(site.addr, format!("site:{}", site.country));
        }

        let blocklist = Blocklist::from_addrs(world.ground_truth.blocklisted_addrs.iter().copied());
        let mut port_scanner = PortScanner::new();
        for addr in &world.ground_truth.bgp_speaking_observers {
            port_scanner.set_open(*addr, 179);
        }
        let router_graph = finalize_router_graph(phase2_data.as_ref(), &world);

        StudyOutcome {
            world,
            preflight,
            phase1,
            phase2: phase2_data,
            correlated,
            retained: config.retain_arrivals,
            traced_paths,
            traceroutes,
            router_graph,
            dest_names,
            blocklist,
            port_scanner,
            metrics,
            journal,
        }
    }

    /// [`Study::run`], executed across `shards` worker threads (one
    /// private world per shard, VPs partitioned round-robin). Produces
    /// byte-identical output to the sequential path for any shard count —
    /// `tests/sharded_equivalence.rs` enforces this on the exported
    /// analysis bundle.
    pub fn run_sharded(config: StudyConfig, shards: usize) -> StudyOutcome {
        let spec = generate_spec(config.world.clone());
        let phase1_config = config.phase1_effective();
        let sharded = run_phase1_sharded_sink(
            &spec,
            &phase1_config,
            shards,
            config.telemetry,
            config.conditioner(&spec),
            config.sink(),
        );
        Self::assemble_sharded(config, sharded, None)
    }

    /// [`Study::run`] under the work-stealing scheduler: VPs split into
    /// [`StealConfig::chunks`] work units drained by
    /// [`StealConfig::workers`] threads, with the global plan computed
    /// once and shared. Byte-identical to [`Study::run`] and
    /// [`Study::run_sharded`] for any execution shape (enforced by
    /// `tests/sharded_equivalence.rs`); this is the path that scales to
    /// core count on skewed worlds, and the one `--paper-scale` campaigns
    /// should use.
    pub fn run_work_stealing(config: StudyConfig, steal: StealConfig) -> StudyOutcome {
        let spec = generate_spec(config.world.clone());
        let phase1_config = config.phase1_effective();
        let sharded = run_phase1_work_stealing(
            &spec,
            &phase1_config,
            steal,
            config.telemetry,
            config.conditioner(&spec),
            config.sink(),
        );
        Self::assemble_sharded(config, sharded, Some(steal.workers))
    }

    /// Shared continuation for the sharded execution paths: correlation,
    /// Phase II over the kept chunk worlds (work-stealing when
    /// `steal_workers` is set, one-thread-per-shard otherwise), telemetry
    /// finalization, and the analysis inputs.
    fn assemble_sharded(
        config: StudyConfig,
        mut sharded: ShardedPhase1,
        steal_workers: Option<usize>,
    ) -> StudyOutcome {
        let mut phase1 = sharded.data;
        let preflight = sharded.preflight;
        let correlated = if config.retain_arrivals {
            Correlator::new(&phase1.registry).correlate(&phase1.arrivals)
        } else {
            Vec::new()
        };

        let (traced_paths, traceroutes, mut phase2_data) = if config.run_phase2 {
            let traced = paths_to_trace_streamed(&phase1.aggregates, config.trace_cap_per_protocol);
            let (results, data) = match steal_workers {
                Some(workers) => run_phase2_work_stealing(
                    &mut sharded.worlds,
                    &sharded.assignment,
                    &traced,
                    &config.phase2,
                    workers,
                    config.sink(),
                ),
                None => run_phase2_sharded_sink(
                    &mut sharded.worlds,
                    &sharded.assignment,
                    &traced,
                    &config.phase2,
                    config.sink(),
                ),
            };
            (traced, results, Some(data))
        } else {
            (Vec::new(), Vec::new(), None)
        };
        let (metrics, journal) =
            finalize_telemetry(&config, &mut phase1, phase2_data.as_mut(), &correlated);

        // Shard 0's world carries the analysis inputs: platform vetting,
        // destinations, and ground truth are spec data, identical in every
        // shard and in the sequential run.
        let world = sharded.worlds.swap_remove(0);

        let mut dest_names: BTreeMap<Ipv4Addr, String> = BTreeMap::new();
        for dest in &world.dns_destinations {
            dest_names.insert(dest.addr, dest.dest.name.to_string());
        }
        for site in &world.tranco {
            dest_names.insert(site.addr, format!("site:{}", site.country));
        }

        let blocklist = Blocklist::from_addrs(world.ground_truth.blocklisted_addrs.iter().copied());
        let mut port_scanner = PortScanner::new();
        for addr in &world.ground_truth.bgp_speaking_observers {
            port_scanner.set_open(*addr, 179);
        }
        let router_graph = finalize_router_graph(phase2_data.as_ref(), &world);

        StudyOutcome {
            world,
            preflight,
            phase1,
            phase2: phase2_data,
            correlated,
            retained: config.retain_arrivals,
            traced_paths,
            traceroutes,
            router_graph,
            dest_names,
            blocklist,
            port_scanner,
            metrics,
            journal,
        }
    }
}

/// Finalize the Phase II router-graph builder against the world's geo
/// database. The builder's per-shard folds are commutative and each probe
/// path is wholly owned by one shard, so the merged builder — and hence
/// the finalized graph — is identical for any shard count.
fn finalize_router_graph(phase2: Option<&CampaignData>, world: &World) -> shadow_topo::RouterGraph {
    phase2
        .map(|data| {
            data.router_graph
                .finalize(|addr| world.geo.asn_of(addr).map(|asn| asn.0))
        })
        .unwrap_or_default()
}

/// Merge the per-phase telemetry into the study-level artifacts and fold
/// the capture-time classification in: the Phase I sink aggregates supply
/// the `unsolicited_by_rule` map and retention-interval histogram (the sink
/// folds every classified arrival, so this matches the old post-hoc
/// correlation pass byte for byte, for any shard count). When journaling in
/// retained mode, every unsolicited correlated arrival additionally gets an
/// [`UnsolicitedArrival`](shadow_telemetry::EventKind::UnsolicitedArrival)
/// record; the streaming path already journaled per-arrival
/// `ArrivalClassified` events at capture time.
fn finalize_telemetry(
    config: &StudyConfig,
    phase1: &mut CampaignData,
    phase2: Option<&mut CampaignData>,
    correlated: &[CorrelatedRequest],
) -> (
    Option<shadow_telemetry::MetricsSnapshot>,
    Option<Vec<shadow_telemetry::JournalRecord>>,
) {
    if !config.telemetry.metrics && !config.telemetry.journal {
        return (None, None);
    }
    let mut metrics = std::mem::take(&mut phase1.metrics);
    let mut journal = std::mem::take(&mut phase1.journal);
    if let Some(p2) = phase2 {
        // Both phases ran on the same shard set; keep the shard count
        // instead of summing it across phases.
        let shards = metrics.run.shards.max(p2.metrics.run.shards);
        metrics.merge(&std::mem::take(&mut p2.metrics));
        metrics.run.shards = shards;
        journal.append(&mut p2.journal);
    }
    for (label, n) in &phase1.aggregates.by_label {
        if label.is_unsolicited() {
            *metrics
                .world
                .unsolicited_by_rule
                .entry(label.as_str().to_string())
                .or_insert(0) += n;
        }
    }
    metrics
        .world
        .retention_intervals_ms
        .merge(&phase1.aggregates.retention_intervals_ms);
    if config.telemetry.journal {
        for (i, req) in correlated.iter().enumerate() {
            if !req.label.is_unsolicited() {
                continue;
            }
            journal.push(shadow_telemetry::JournalRecord {
                at_ms: req.arrival.at.millis(),
                shard: 0,
                node: None,
                seq: i as u64,
                event: shadow_telemetry::EventKind::UnsolicitedArrival {
                    rule: format!("{:?}", req.label),
                    domain: req.arrival.domain.as_str().to_string(),
                    src: req.arrival.src,
                    protocol: req.arrival.protocol.as_str().to_string(),
                },
            });
        }
    }
    shadow_telemetry::sort_records(&mut journal);
    let journal = config.telemetry.journal.then_some(journal);
    (Some(metrics), journal)
}

impl StudyOutcome {
    /// Figure 3 — read from the streamed aggregates, available in both
    /// retained and streaming modes.
    pub fn landscape(&self) -> LandscapeReport {
        LandscapeReport::compute_streamed(
            &self.phase1.registry,
            &self.phase1.aggregates,
            &self.world.platform,
            &self.dest_names,
        )
    }

    /// Table 2.
    pub fn hop_table(&self) -> ObserverHopTable {
        ObserverHopTable::compute(&self.traceroutes)
    }

    /// Table 3 + the observer-IP country split.
    pub fn observer_ips(&self) -> ObserverIpSummary {
        ObserverIpSummary::compute(&self.traceroutes, &self.world.geo, &self.world.catalog)
    }

    /// Figure 4: interval CDF for DNS decoys to Resolver_h.
    ///
    /// Sample-exact, so it needs [`StudyConfig::retain_arrivals`]; the
    /// streaming default gets the same curve at the paper's grid points
    /// from [`StudyOutcome::fig4_hist`].
    pub fn fig4_cdf(&self) -> Cdf {
        let dsts: Vec<Ipv4Addr> = resolver_h().iter().map(|d| d.addr).collect();
        interval_cdf(&self.correlated, DecoyProtocol::Dns, Some(&dsts))
    }

    /// Figure 4 from the streamed fixed-bucket histograms — available in
    /// both modes, and exact at every paper-grid edge.
    pub fn fig4_hist(&self) -> IntervalHistogram {
        let dsts: Vec<Ipv4Addr> = resolver_h().iter().map(|d| d.addr).collect();
        interval_histogram(&self.phase1.aggregates, DecoyProtocol::Dns, Some(&dsts))
    }

    /// Figure 4's control: the other 15 public resolvers (sample-exact;
    /// needs retained arrivals).
    pub fn fig4_other_resolvers_cdf(&self) -> Cdf {
        interval_cdf(
            &self.correlated,
            DecoyProtocol::Dns,
            Some(&self.other_resolver_addrs()),
        )
    }

    /// The streamed control curve for Figure 4.
    pub fn fig4_other_resolvers_hist(&self) -> IntervalHistogram {
        interval_histogram(
            &self.phase1.aggregates,
            DecoyProtocol::Dns,
            Some(&self.other_resolver_addrs()),
        )
    }

    fn other_resolver_addrs(&self) -> Vec<Ipv4Addr> {
        let heavy: Vec<Ipv4Addr> = resolver_h().iter().map(|d| d.addr).collect();
        self.world
            .dns_destinations
            .iter()
            .filter(|d| {
                matches!(
                    d.dest.kind,
                    shadow_dns::catalog::DnsDestinationKind::PublicResolver
                ) && !heavy.contains(&d.addr)
            })
            .map(|d| d.addr)
            .collect()
    }

    /// Figure 5 — decoded from the per-decoy outcome bits the sink folded
    /// at capture time.
    pub fn fig5_breakdown(&self) -> Vec<DestinationBreakdown> {
        breakdown::compute_streamed(
            &self.phase1.registry,
            &self.phase1.aggregates,
            &self.dest_names,
        )
    }

    /// Figure 6 (sample-level origin attribution; needs retained arrivals).
    pub fn fig6_origins(&self) -> OriginAsReport {
        let dests: BTreeMap<Ipv4Addr, String> = resolver_h()
            .iter()
            .map(|d| (d.addr, d.name.to_string()))
            .collect();
        OriginAsReport::compute(&self.correlated, &dests, &self.world.geo, &self.blocklist)
    }

    /// Figure 7: interval CDFs for HTTP and TLS decoys (sample-exact;
    /// needs retained arrivals).
    pub fn fig7_cdfs(&self) -> (Cdf, Cdf) {
        (
            interval_cdf(&self.correlated, DecoyProtocol::Http, None),
            interval_cdf(&self.correlated, DecoyProtocol::Tls, None),
        )
    }

    /// Figure 7 from the streamed histograms — available in both modes.
    pub fn fig7_hists(&self) -> (IntervalHistogram, IntervalHistogram) {
        (
            interval_histogram(&self.phase1.aggregates, DecoyProtocol::Http, None),
            interval_histogram(&self.phase1.aggregates, DecoyProtocol::Tls, None),
        )
    }

    /// §5.1 reuse counts — read from the per-decoy capture-time folds (the
    /// late cutoff is the sink's, 1 h in the shipped configurations).
    pub fn reuse(&self) -> ReuseReport {
        ReuseReport::from_aggregates(&self.phase1.aggregates, DecoyProtocol::Dns)
    }

    /// §5 probing incentives for decoys of one protocol (payload-level;
    /// needs retained arrivals).
    pub fn probing(&self, protocol: DecoyProtocol) -> ProbingReport {
        ProbingReport::compute(&self.correlated, protocol, &self.blocklist)
    }

    /// Case I (any resolver by catalog name).
    pub fn resolver_case(&self, name: &str) -> Option<ResolverCase> {
        let dest = self.world.dns_destination(name)?;
        Some(ResolverCase::compute(
            &self.phase1.registry,
            &self.correlated,
            dest.addr,
            name,
        ))
    }

    /// Case II (the 114DNS anycast split).
    pub fn anycast_case(&self) -> Option<AnycastCase> {
        let dest = self.world.dns_destination("114DNS")?;
        Some(AnycastCase::compute(
            &self.phase1.registry,
            &self.correlated,
            &self.world.platform,
            dest.addr,
            "114DNS",
            cc("CN"),
        ))
    }

    /// Case III (CN observer concentration).
    pub fn cn_observer_case(&self) -> CnObserverCase {
        CnObserverCase::compute(&self.traceroutes, &self.correlated, &self.world.geo)
    }

    /// §5.2 protocol combinations per observer network — from the sink's
    /// per-path counters.
    pub fn observer_combos(&self) -> shadow_analysis::combos::ObserverCombos {
        shadow_analysis::combos::ObserverCombos::compute_streamed(
            &self.phase1.aggregates,
            &self.traceroutes,
            &self.world.geo,
        )
    }

    /// Overall Decoy-Request combination counts, keyed by the typed
    /// [`Combo`] (its `Display` is the paper's `DNS-HTTP` style label).
    pub fn combo_counts(&self) -> std::collections::BTreeMap<Combo, usize> {
        shadow_analysis::combos::combo_counts_streamed(&self.phase1.aggregates)
    }

    /// §5.2 open-port scan of ICMP-revealed observers.
    pub fn observer_port_scan(&self) -> shadow_intel::PortScanReport {
        let observer_addrs: Vec<Ipv4Addr> = self
            .traceroutes
            .iter()
            .filter(|r| r.normalized_hop.is_some() && r.normalized_hop != Some(10))
            .filter_map(|r| r.observer_addr)
            .collect();
        self.port_scanner.scan_all(observer_addrs.iter())
    }

    /// Total decoys sent across both phases.
    pub fn total_decoys(&self) -> usize {
        self.phase1.registry.len() + self.phase2.as_ref().map(|p| p.registry.len()).unwrap_or(0)
    }

    /// Bundle every analysis artifact for JSON export (diffing runs).
    ///
    /// The temporal grids come from the streamed histograms in both modes
    /// (bit-identical to the retained CDFs at those points — enforced by
    /// `tests/streaming_equivalence.rs`); the sample-level artifacts
    /// (origins, probing payloads) are present only in retained mode.
    pub fn export_bundle(&self) -> shadow_analysis::export::AnalysisBundle {
        use shadow_analysis::export::{grid_points_streamed, AnalysisBundle, SerializableHopTable};
        let (http_hist, tls_hist) = self.fig7_hists();
        AnalysisBundle {
            landscape: Some(self.landscape()),
            hop_table: Some(SerializableHopTable::from_table(&self.hop_table())),
            observer_ips: Some(self.observer_ips()),
            fig4_grid: Some(grid_points_streamed(&self.fig4_hist())),
            fig5: Some(self.fig5_breakdown()),
            origins: self.retained.then(|| self.fig6_origins()),
            fig7_http_grid: Some(grid_points_streamed(&http_hist)),
            fig7_tls_grid: Some(grid_points_streamed(&tls_hist)),
            reuse: Some(self.reuse()),
            probing_dns: self.retained.then(|| self.probing(DecoyProtocol::Dns)),
        }
    }

    /// A human-readable executive summary.
    pub fn summary(&self) -> String {
        let counts = self.phase1.registry.counts();
        let landscape = self.landscape();
        format!(
            "platform: {} VPs after vetting ({} excluded)\n\
             decoys: {} DNS / {} HTTP / {} TLS\n\
             arrivals: {} captured, {} unsolicited\n\
             path ratios: DNS {:.1}% | HTTP {:.1}% | TLS {:.1}%\n\
             phase II: {} paths traced, {} observers localized",
            self.world.platform.vps.len(),
            self.world.platform.excluded.len(),
            counts.get(&DecoyProtocol::Dns).unwrap_or(&0),
            counts.get(&DecoyProtocol::Http).unwrap_or(&0),
            counts.get(&DecoyProtocol::Tls).unwrap_or(&0),
            self.phase1.aggregates.arrivals_seen,
            self.phase1.aggregates.unsolicited_total(),
            landscape.protocol_ratio(DecoyProtocol::Dns) * 100.0,
            landscape.protocol_ratio(DecoyProtocol::Http) * 100.0,
            landscape.protocol_ratio(DecoyProtocol::Tls) * 100.0,
            self.traced_paths.len(),
            self.traceroutes
                .iter()
                .filter(|r| r.normalized_hop.is_some())
                .count(),
        )
    }
}
