//! Telemetry merge properties.
//!
//! 1. [`MetricsSnapshot::merge`] is commutative and associative, so
//!    absorbing per-shard snapshots in any completion order yields the
//!    same artifact.
//! 2. For a fixed seed, the **world** section of a sharded run's merged
//!    snapshot equals the sequential run's — the telemetry analogue of
//!    the byte-identical analysis bundle. (The **run** section is shape
//!    diagnostics — shard count, per-shard event totals, wall-clock — and
//!    is excluded: it legitimately differs between shard counts.)

use traffic_shadowing::shadow_core::executor::TelemetryOptions;
use traffic_shadowing::shadow_telemetry::{MetricsRegistry, MetricsSnapshot};
use traffic_shadowing::study::{Study, StudyConfig};

/// Build K synthetic per-shard snapshots with distinct, seeded counter
/// loads (a tiny LCG keeps the test deterministic without `rand`).
fn synthetic_snapshots(k: u32, seed: u64) -> Vec<MetricsSnapshot> {
    let mut state = seed.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) % bound
    };
    (0..k)
        .map(|shard| {
            let registry = MetricsRegistry::default();
            for _ in 0..next(40) {
                registry.packets_forwarded.inc();
            }
            for _ in 0..next(20) {
                registry.packets_delivered.inc();
            }
            for _ in 0..next(10) {
                registry.tap_observations.inc();
            }
            for _ in 0..next(5) {
                registry.decoys_sent.inc("DNS");
                registry.arrivals_captured.inc("HTTP");
            }
            for _ in 0..next(8) {
                registry.queue_depth.record(next(1 << 12));
            }
            registry.events_drained.add(next(1000));
            registry.record_phase_ns("phase1", next(1 << 20));
            registry.take_snapshot(shard)
        })
        .collect()
}

fn merge_in_order(snapshots: &[MetricsSnapshot], order: &[usize]) -> MetricsSnapshot {
    let mut merged = MetricsSnapshot::default();
    for &i in order {
        merged.merge(&snapshots[i]);
    }
    merged
}

#[test]
fn snapshot_merge_is_order_independent() {
    for seed in [3u64, 77, 9_001] {
        let snapshots = synthetic_snapshots(7, seed);
        let forward = merge_in_order(&snapshots, &[0, 1, 2, 3, 4, 5, 6]);
        let reverse = merge_in_order(&snapshots, &[6, 5, 4, 3, 2, 1, 0]);
        let shuffled = merge_in_order(&snapshots, &[3, 6, 0, 5, 1, 4, 2]);
        assert_eq!(forward, reverse, "seed {seed}: reverse order diverges");
        assert_eq!(forward, shuffled, "seed {seed}: shuffled order diverges");
        assert_eq!(forward.run.shards, 7);
    }
}

#[test]
fn snapshot_merge_is_associative() {
    let snapshots = synthetic_snapshots(4, 42);
    // ((a+b)+c)+d vs a+((b+c)+d)
    let left = merge_in_order(&snapshots, &[0, 1, 2, 3]);
    let mut inner = snapshots[1].clone();
    inner.merge(&snapshots[2]);
    inner.merge(&snapshots[3]);
    let mut right = snapshots[0].clone();
    right.merge(&inner);
    assert_eq!(left, right);
}

#[test]
fn sharded_world_metrics_equal_sequential() {
    for seed in [99u64, 424_242] {
        let config = || StudyConfig {
            telemetry: TelemetryOptions::enabled(false),
            ..StudyConfig::tiny(seed)
        };
        let sequential = Study::run(config());
        let expected = sequential.metrics.as_ref().expect("metrics enabled");
        assert!(!expected.is_empty(), "sequential run recorded nothing");
        assert_eq!(expected.run.shards, 1);
        for k in [1usize, 2, 4, 7] {
            let sharded = Study::run_sharded(config(), k);
            let merged = sharded.metrics.as_ref().expect("metrics enabled");
            assert_eq!(
                expected.world, merged.world,
                "seed {seed}, K={k}: merged world counters diverge from sequential"
            );
            // Idle shards (drained == 0) get no entry, so `<=` not `==`.
            assert!(
                merged.run.events_drained_per_shard.len() <= merged.run.shards as usize,
                "seed {seed}, K={k}: more events-drained entries than shards"
            );
            let drained: u64 = merged.run.events_drained_per_shard.values().sum();
            assert!(drained > 0, "seed {seed}, K={k}: no events drained");
        }
    }
}

#[test]
fn disabled_telemetry_reports_nothing() {
    let outcome = Study::run(StudyConfig::tiny(99));
    assert!(outcome.metrics.is_none());
    assert!(outcome.journal.is_none());
}
