//! The checkpoint/resume headline guarantee: interrupting the daemon
//! campaign after any wave, persisting a [`CampaignCheckpoint`] through
//! disk, and resuming in a fresh driver produces **byte-identical** final
//! state — aggregates, journal, and metrics — to a run that was never
//! interrupted. Checked at K ∈ {1, 4}, with and without an active
//! `FaultProfile`, by comparing the rendered checkpoint JSON strings.

use shadow_serve::{CampaignCheckpoint, CampaignDriver, ServeConfig, ServeError};
use traffic_shadowing::shadow_chaos::FaultProfile;

const SEED: u64 = 4242;

fn config(shards: usize, faults: bool) -> ServeConfig {
    let mut config = ServeConfig {
        shards,
        ..ServeConfig::tiny(SEED)
    };
    if faults {
        config.study.faults = Some(FaultProfile::with_loss("serve-loss", 0.10, 77));
    }
    config
}

/// Run straight through; render the final checkpoint.
fn uninterrupted(config: &ServeConfig) -> String {
    let mut driver = CampaignDriver::new(config.clone());
    assert_eq!(driver.run_to_completion(), config.waves);
    driver.checkpoint().to_json().expect("renders")
}

/// Run one wave, checkpoint through a real file, resume in a fresh
/// driver, finish; render the final checkpoint.
fn interrupted(config: &ServeConfig, tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("shadow-serve-determinism-{tag}.json"));
    let mut first = CampaignDriver::new(config.clone());
    assert!(first.run_next_wave().is_some());
    first.save_checkpoint(&path).expect("checkpoint writes");
    drop(first);

    let loaded = CampaignCheckpoint::load(&path).expect("checkpoint loads");
    std::fs::remove_file(&path).ok();
    let mut resumed = CampaignDriver::resume(config.clone(), loaded).expect("checkpoint resumes");
    assert_eq!(resumed.waves_done(), 1);
    resumed.run_to_completion();
    resumed.checkpoint().to_json().expect("renders")
}

#[test]
fn resume_is_byte_identical_k1() {
    let config = config(1, false);
    assert_eq!(
        uninterrupted(&config),
        interrupted(&config, "plain-k1"),
        "K=1: interrupted+resumed state diverges from straight-through"
    );
}

/// The full acceptance matrix — K ∈ {1, 4} × {fault-free, lossy} — runs
/// in release mode (`--include-ignored`, CI `serve-equivalence` job): on
/// a debug build each cell is several journal-enabled campaigns.
#[test]
#[ignore = "full K×faults matrix: run in release via the CI serve-equivalence job"]
fn resume_is_byte_identical_across_shards_and_faults() {
    for shards in [1usize, 4] {
        for faults in [false, true] {
            let config = config(shards, faults);
            assert_eq!(
                uninterrupted(&config),
                interrupted(&config, &format!("matrix-k{shards}-f{faults}")),
                "K={shards}, faults={faults}: interrupted+resumed state diverges"
            );
        }
    }
}

#[test]
#[ignore = "two extra campaigns: run in release via the CI serve-equivalence job"]
fn cumulative_aggregates_are_shard_invariant() {
    // The daemon inherits the workspace-wide guarantee: the served
    // aggregates are byte-identical at any shard count. (The metrics
    // *run* section and per-record journal shard ids are legitimately
    // K-dependent, exactly as in a one-shot study.)
    let rendered = |shards| {
        let mut driver = CampaignDriver::new(config(shards, false));
        driver.run_to_completion();
        serde_json::to_string_pretty(&driver.aggregates().to_portable()).expect("renders")
    };
    assert_eq!(rendered(1), rendered(4));
}

#[test]
fn resume_rejects_mismatched_world() {
    // `--resume` + `--tiny` mixups: the checkpoint's world hash encodes
    // the campaign configuration, so resuming under a different one fails
    // loudly instead of silently blending two campaigns.
    let tiny = config(1, false);
    let mut driver = CampaignDriver::new(tiny.clone());
    driver.run_next_wave();
    let checkpoint = driver.checkpoint();

    let other = ServeConfig {
        waves: 5,
        ..tiny.clone()
    };
    match CampaignDriver::resume(other, checkpoint.clone()) {
        Err(ServeError::WorldMismatch { .. }) => {}
        other => panic!("expected WorldMismatch, got {:?}", other.err()),
    }

    let resharded = ServeConfig {
        shards: 2,
        ..tiny.clone()
    };
    match CampaignDriver::resume(resharded, checkpoint) {
        Err(ServeError::ShardMismatch { expected, found }) => {
            assert_eq!((expected, found), (2, 1));
        }
        other => panic!("expected ShardMismatch, got {:?}", other.err()),
    }
}

#[test]
fn resume_rejects_tampered_rng_streams() {
    let config = config(1, false);
    let mut driver = CampaignDriver::new(config.clone());
    driver.run_next_wave();
    let mut checkpoint = driver.checkpoint();
    checkpoint.rng_streams[0] ^= 1;
    match CampaignDriver::resume(config, checkpoint) {
        Err(ServeError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {:?}", other.err()),
    }
}
