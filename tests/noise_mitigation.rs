//! Appendix E integration tests: the pre-flight checks must catch planted
//! defects — TTL-rewriting VPN egress and on-path DNS interception — and
//! the interception filter must keep replicated queries out of the
//! shadowing counts.

use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::world::{World, WorldConfig};
use traffic_shadowing::shadow_geo::country::cc;
use traffic_shadowing::shadow_vantage::platform::ExclusionReason;
use traffic_shadowing::shadow_vantage::vp::VantagePointHost;

#[test]
fn ttl_preflight_catches_rewriting_egress() {
    let mut world = World::build(WorldConfig::tiny(77));
    // Sabotage two VPs with TTL-rewriting egresses.
    let victims: Vec<_> = world.platform.vps.iter().take(2).cloned().collect();
    for victim in &victims {
        world.engine.add_host(
            victim.node,
            Box::new(VantagePointHost::new(victim.addr, 9, Some(64))),
        );
    }
    let deltas = NoiseFilter::ttl_preflight(&mut world);
    assert_eq!(deltas.len(), world.platform.vps.len(), "every VP measured");
    for victim in &victims {
        let delta = deltas
            .iter()
            .find(|(id, _)| *id == victim.id)
            .map(|&(_, d)| d)
            .expect("victim measured");
        assert_eq!(delta, 0, "rewritten TTLs collapse the delta");
    }
    let clean = deltas
        .iter()
        .filter(|(id, _)| !victims.iter().any(|v| v.id == *id))
        .all(|&(_, d)| d == NoiseFilter::expected_delta());
    assert!(clean, "clean VPs measure the expected delta");

    let mut platform = std::mem::take(&mut world.platform);
    platform.vet_ttl_rewrite(&deltas, NoiseFilter::expected_delta());
    for victim in &victims {
        assert!(platform.get(victim.id).is_none(), "victim excluded");
        assert!(platform
            .excluded
            .iter()
            .any(|(id, r)| *id == victim.id && *r == ExclusionReason::TtlRewrite));
    }
}

#[test]
fn pair_resolver_test_flags_only_intercepted_vps() {
    let mut world = World::build(WorldConfig::tiny(78));
    assert!(
        !world.ground_truth.interceptor_nodes.is_empty(),
        "tiny world plants an interceptor"
    );
    let intercepted = NoiseFilter::pair_resolver_test(&mut world);
    // Interceptors sit on CN cloud edges, so every flagged VP is CN-side.
    for id in &intercepted {
        let vp = world.platform.get(*id).expect("still on the platform");
        assert_eq!(vp.country, cc("CN"), "only CN VPs sit behind the middlebox");
    }
    // And VPs whose egress cloud carries the interceptor are flagged.
    let interceptor_ases: Vec<_> = world
        .ground_truth
        .interceptor_nodes
        .iter()
        .map(|n| world.engine.topology().node(*n).asn)
        .collect();
    for vp in &world.platform.vps {
        let vp_as = world.engine.topology().node(vp.node).asn;
        if interceptor_ases.contains(&vp_as) {
            assert!(
                intercepted.contains(&vp.id),
                "VP behind an interceptor cloud must be flagged"
            );
        }
    }
}

#[test]
fn run_and_apply_removes_flagged_vps_from_table1() {
    let mut world = World::build(WorldConfig::tiny(79));
    let before = world.platform.vps.len();
    let outcome = NoiseFilter::run_and_apply(&mut world);
    assert_eq!(
        world.platform.vps.len() + outcome.intercepted.len(),
        before,
        "interception is the only exclusion for clean providers"
    );
    // Table 1 counts only surviving VPs.
    let rows = world.platform.table1(&world.geo);
    let total_row = rows.last().expect("total row");
    assert_eq!(total_row.vps, world.platform.vps.len());
}

#[test]
fn interceptor_free_world_excludes_nothing() {
    let mut world = World::build(WorldConfig {
        interceptors: 0,
        ..WorldConfig::tiny(80)
    });
    let outcome = NoiseFilter::run_and_apply(&mut world);
    assert!(outcome.intercepted.is_empty());
    assert!(world.platform.excluded.is_empty());
}
