//! The §6 mitigation ablation as assertions: encrypted DNS blinds on-path
//! observers but not terminating resolvers; ECH kills TLS shadowing.

use traffic_shadowing::shadow_core::campaign::Phase1Config;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_core::phase2::Phase2Config;
use traffic_shadowing::shadow_core::world::WorldConfig;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

fn run(seed: u64, encrypted: bool) -> StudyOutcome {
    Study::run(StudyConfig {
        world: WorldConfig::tiny(seed),
        phase1: Phase1Config {
            encrypted_dns: encrypted,
            ech_tls: encrypted,
            ..Phase1Config::default()
        },
        phase2: Phase2Config::default(),
        trace_cap_per_protocol: 0,
        run_phase2: false,
        telemetry: traffic_shadowing::shadow_core::executor::TelemetryOptions::disabled(),
        faults: None,
        // `encrypted_queries_still_resolve` inspects raw arrivals.
        retain_arrivals: true,
    })
}

#[test]
fn encryption_blinds_the_wire_but_not_the_resolver() {
    let clear = run(2_024, false);
    let encrypted = run(2_024, true);

    let clear_ls = clear.landscape();
    let enc_ls = encrypted.landscape();

    // Resolver-side shadowing persists: the terminating resolver decrypts
    // and sees everything (§6: "does not mitigate data collection by the
    // destination server, especially for DNS").
    let clear_yandex = clear_ls.destination_ratio("Yandex", DecoyProtocol::Dns);
    let enc_yandex = enc_ls.destination_ratio("Yandex", DecoyProtocol::Dns);
    assert!(clear_yandex > 0.8);
    assert!(
        enc_yandex > 0.8,
        "encrypted DNS must NOT stop resolver-side shadowing (got {enc_yandex})"
    );

    // ECH kills TLS shadowing entirely: no clear-text SNI anywhere.
    let enc_tls = enc_ls.protocol_ratio(DecoyProtocol::Tls);
    assert_eq!(
        enc_tls, 0.0,
        "ECH leaves nothing for SNI observers (got {enc_tls})"
    );

    // HTTP stays unencrypted in both runs, so its exposure is unchanged in
    // kind (not necessarily in exact ratio).
    let clear_http = clear_ls.protocol_ratio(DecoyProtocol::Http);
    let enc_http = enc_ls.protocol_ratio(DecoyProtocol::Http);
    assert_eq!(
        clear_http, enc_http,
        "HTTP decoys are identical in both campaigns"
    );
}

#[test]
fn encrypted_queries_still_resolve() {
    // The ablation is only valid if encrypted decoys actually work: VPs
    // must receive answers over the encrypted channel.
    let encrypted = run(2_025, true);
    let answered = encrypted
        .phase1
        .vp_reports
        .values()
        .flat_map(|r| r.dns_answers.iter())
        .filter(|a| a.answer.is_some())
        .count();
    assert!(
        answered > 0,
        "DoQ decoys must resolve end-to-end through the resolver"
    );
    // And the honeypot authoritative saw the (decrypted, recursed) queries.
    let dns_arrivals = encrypted
        .phase1
        .arrivals
        .iter()
        .filter(|a| a.protocol == traffic_shadowing::shadow_honeypot::capture::ArrivalProtocol::Dns)
        .count();
    assert!(dns_arrivals > 0);
}
