//! Property test for the three §3 unsolicited-classification rules as the
//! streaming classifier applies them at capture time:
//!
//!  1. HTTP/HTTPS arrivals are always `HttpTlsArrival`;
//!  2. DNS arrivals for HTTP/TLS decoys are `CrossProtocol`;
//!  3. DNS arrivals for DNS decoys split on the first-seen resolution —
//!     first is `SolicitedResolution`, within the replication window is
//!     `ReplicationNoise`, later is `RepeatedDnsQuery`.
//!
//! The streamed one-pass classifier (and the aggregate fold built on it)
//! must agree with a naive whole-vector reference on randomly interleaved
//! multi-decoy arrival streams.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use traffic_shadowing::shadow_core::correlate::{StreamingClassifier, UnsolicitedLabel};
use traffic_shadowing::shadow_core::decoy::{DecoyProtocol, DecoyRecord, DecoyRegistry};
use traffic_shadowing::shadow_core::sink::{CorrelationAggregates, SinkConfig};
use traffic_shadowing::shadow_honeypot::capture::{Arrival, ArrivalProtocol};
use traffic_shadowing::shadow_netsim::time::{SimDuration, SimTime};
use traffic_shadowing::shadow_packet::dns::DnsName;
use traffic_shadowing::shadow_vantage::platform::VpId;

const WINDOW: SimDuration = StreamingClassifier::DEFAULT_REPLICATION_WINDOW;

/// One generated arrival: (decoy index, offset after decoy emission,
/// arrival protocol).
type RawArrival = (usize, u64, u8);

fn build_registry(protocols: &[DecoyProtocol]) -> (DecoyRegistry, Vec<DecoyRecord>) {
    let zone = DnsName::parse("www.experiment.example").unwrap();
    let mut registry = DecoyRegistry::new(zone);
    let records = protocols
        .iter()
        .enumerate()
        .map(|(i, &protocol)| {
            registry.register(
                VpId(1 + (i as u32 % 3)),
                Ipv4Addr::new(10, 0, 0, 1 + (i as u8 % 3)),
                Ipv4Addr::new(77, 88, 8, 1 + (i as u8 % 5)),
                protocol,
                64,
                SimTime((i as u64) * 700),
                None,
            )
        })
        .collect();
    (registry, records)
}

fn build_arrivals(records: &[DecoyRecord], raw: &[RawArrival]) -> Vec<Arrival> {
    let mut arrivals: Vec<Arrival> = raw
        .iter()
        .map(|&(decoy_idx, offset_ms, proto)| {
            let rec = &records[decoy_idx % records.len()];
            Arrival {
                at: rec.planned_at + SimDuration::from_millis(offset_ms),
                src: Ipv4Addr::new(9, 9, 9, (proto % 250) + 1),
                protocol: match proto % 3 {
                    0 => ArrivalProtocol::Dns,
                    1 => ArrivalProtocol::Http,
                    _ => ArrivalProtocol::Https,
                },
                domain: rec.domain.clone(),
                http_path: None,
                honeypot: "AUTH".into(),
            }
        })
        .collect();
    // Capture order is time order; ties resolve by the full sort key, as
    // in `CampaignData::absorb`.
    arrivals.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    arrivals
}

/// The naive reference: label each arrival by re-deriving the first-seen
/// DNS resolution time from the whole vector, with no incremental state.
fn naive_labels(registry: &DecoyRegistry, arrivals: &[Arrival]) -> Vec<UnsolicitedLabel> {
    // First DNS arrival per DNS-decoy domain, by position in the sorted
    // stream (ties beyond the first occurrence are later arrivals).
    let mut first_dns: BTreeMap<&DnsName, SimTime> = BTreeMap::new();
    for a in arrivals {
        if a.protocol != ArrivalProtocol::Dns {
            continue;
        }
        let Some(decoy) = registry.lookup(&a.domain) else {
            continue;
        };
        if decoy.protocol == DecoyProtocol::Dns {
            first_dns.entry(&a.domain).or_insert(a.at);
        }
    }
    let mut seen_first: BTreeMap<&DnsName, bool> = BTreeMap::new();
    arrivals
        .iter()
        .map(|a| {
            let decoy = registry.lookup(&a.domain).expect("generated domains");
            match a.protocol {
                ArrivalProtocol::Http | ArrivalProtocol::Https => UnsolicitedLabel::HttpTlsArrival,
                ArrivalProtocol::Dns if decoy.protocol != DecoyProtocol::Dns => {
                    UnsolicitedLabel::CrossProtocol
                }
                ArrivalProtocol::Dns => {
                    let first = first_dns[&a.domain];
                    let is_first =
                        !std::mem::replace(seen_first.entry(&a.domain).or_insert(false), true);
                    if is_first {
                        UnsolicitedLabel::SolicitedResolution
                    } else if a.at.since(first) <= WINDOW {
                        UnsolicitedLabel::ReplicationNoise
                    } else {
                        UnsolicitedLabel::RepeatedDnsQuery
                    }
                }
            }
        })
        .collect()
}

fn protocol_strategy() -> impl Strategy<Value = DecoyProtocol> {
    prop_oneof![
        Just(DecoyProtocol::Dns),
        Just(DecoyProtocol::Http),
        Just(DecoyProtocol::Tls),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Streamed one-pass labels == naive whole-vector reference, on
    /// randomly interleaved arrivals for up to 6 decoys. Offsets cluster
    /// around the replication window and the 1 h late cutoff so every
    /// rule fires.
    #[test]
    fn streamed_labels_match_naive_reference(
        protocols in proptest::collection::vec(protocol_strategy(), 1..6),
        raw in proptest::collection::vec(
            (
                0usize..6,
                prop_oneof![
                    0u64..4_000,                       // around the window
                    3_500_000u64..3_700_000,           // around the 1 h cutoff
                    86_000_000u64..90_000_000,         // about a day later
                ],
                0u8..6,
            ),
            1..40,
        ),
    ) {
        let (registry, records) = build_registry(&protocols);
        let arrivals = build_arrivals(&records, &raw);
        let expected = naive_labels(&registry, &arrivals);

        let mut classifier = StreamingClassifier::new(WINDOW);
        let streamed: Vec<UnsolicitedLabel> = arrivals
            .iter()
            .map(|a| classifier.classify(registry.lookup(&a.domain).unwrap(), a))
            .collect();
        prop_assert_eq!(&streamed, &expected);

        // The aggregate fold counts exactly the reference labels.
        let agg = CorrelationAggregates::from_arrivals(
            &registry,
            &arrivals,
            &SinkConfig::retained(),
        );
        let mut by_label: BTreeMap<UnsolicitedLabel, u64> = BTreeMap::new();
        for label in &expected {
            *by_label.entry(*label).or_insert(0) += 1;
        }
        prop_assert_eq!(&agg.by_label, &by_label);
        prop_assert_eq!(agg.arrivals_seen, arrivals.len() as u64);
        prop_assert_eq!(
            agg.unsolicited_total(),
            expected.iter().filter(|l| l.is_unsolicited()).count() as u64
        );
    }

    /// Splitting one stream at an arbitrary point and absorbing the two
    /// halves' aggregates reproduces the unsplit fold, as long as the split
    /// respects domain ownership (each domain's arrivals stay in one half
    /// — the shard invariant: one VP's decoys live in exactly one shard).
    #[test]
    fn absorb_of_domain_partition_matches_unsplit(
        protocols in proptest::collection::vec(protocol_strategy(), 2..6),
        raw in proptest::collection::vec(
            (0usize..6, 0u64..8_000_000, 0u8..6),
            1..30,
        ),
        pivot in 0usize..6,
    ) {
        let (registry, records) = build_registry(&protocols);
        let arrivals = build_arrivals(&records, &raw);
        let whole = CorrelationAggregates::from_arrivals(
            &registry,
            &arrivals,
            &SinkConfig::retained(),
        );

        let pivot_domain = |a: &Arrival| {
            records
                .iter()
                .position(|r| r.domain == a.domain)
                .unwrap()
                < pivot % records.len().max(1)
        };
        let left: Vec<Arrival> = arrivals.iter().filter(|a| pivot_domain(a)).cloned().collect();
        let right: Vec<Arrival> = arrivals.iter().filter(|a| !pivot_domain(a)).cloned().collect();
        let mut merged =
            CorrelationAggregates::from_arrivals(&registry, &left, &SinkConfig::retained());
        merged.absorb(CorrelationAggregates::from_arrivals(
            &registry,
            &right,
            &SinkConfig::retained(),
        ));
        prop_assert_eq!(merged, whole);
    }
}
