//! End-to-end daemon test over a real loopback socket: start
//! `shadow-serve` on an ephemeral port, hammer `/api/aggregates` from
//! many concurrent readers while the campaign runs, and assert the final
//! served snapshot is **byte-identical** to the batch
//! `Study::run_sharded` result — the acceptance bar for "the daemon is
//! the batch pipeline, continuously".

use shadow_serve::client::{http_get, sse_collect};
use shadow_serve::{serve, CampaignDriver, ServeConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use traffic_shadowing::shadow_core::sink::CorrelationAggregates;
use traffic_shadowing::study::Study;

const SEED: u64 = 90_210;
const READERS: usize = 8;

/// What the daemon *should* serve after every wave completes: the
/// commutative absorb of each wave's batch `Study::run_sharded`
/// aggregates, rendered exactly as `/api/aggregates` renders.
fn expected_aggregates_json(config: &ServeConfig) -> String {
    let mut cumulative = CorrelationAggregates::default();
    for wave_seed in config.wave_seeds() {
        let outcome = Study::run_sharded(config.wave_study_config(wave_seed), config.shards);
        cumulative.absorb(outcome.phase1.aggregates);
    }
    serde_json::to_string_pretty(&cumulative.to_portable()).expect("renders")
}

fn run_daemon_under_load(config: ServeConfig) {
    let expected = expected_aggregates_json(&config);
    let mut handle = serve(CampaignDriver::new(config), "127.0.0.1:0").expect("daemon starts");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let polls = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let polls = Arc::clone(&polls);
            std::thread::spawn(move || {
                let mut ok = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let (code, body) = http_get(addr, "/api/aggregates").expect("GET aggregates");
                    assert_eq!(code, 200);
                    assert!(body.starts_with('{'), "not JSON: {body:.40}");
                    ok += 1;
                    polls.fetch_add(1, Ordering::Relaxed);
                }
                ok
            })
        })
        .collect();

    // One SSE subscriber rides along for the whole campaign.
    let tail = std::thread::spawn(move || {
        sse_collect(addr, "/api/journal/tail", 100_000, Duration::from_secs(120))
            .expect("SSE stream")
    });

    let driver = handle.join_campaign().expect("campaign finishes");
    let mid_run_polls = polls.load(Ordering::Relaxed);
    stop.store(true, Ordering::Release);
    for reader in readers {
        assert!(reader.join().expect("reader thread") >= 1);
    }
    assert!(
        mid_run_polls >= READERS as u64,
        "readers only managed {mid_run_polls} polls while the campaign ran"
    );

    // Byte-identity of the final served snapshot with the batch result.
    let (code, served) = http_get(addr, "/api/aggregates").expect("final GET");
    assert_eq!(code, 200);
    assert_eq!(served, expected, "served aggregates diverge from batch");

    // Metrics served == the driver's own cumulative render.
    let (_, metrics) = http_get(addr, "/api/metrics").expect("GET metrics");
    assert_eq!(metrics, driver.metrics().to_json().expect("renders"));

    // Status reflects completion and surfaces the backpressure counter.
    let (_, status) = http_get(addr, "/api/status").expect("GET status");
    assert!(status.contains("\"done\": true"), "{status}");
    assert!(status.contains("\"tail_events_dropped\""), "{status}");

    // Robustness cell of the latest wave is being served.
    let (_, robustness) = http_get(addr, "/api/robustness").expect("GET robustness");
    assert!(robustness.contains("\"name\""), "{robustness}");

    // The SSE stream terminates with the end event; whatever records it
    // caught are valid journal JSON on the campaign time axis.
    let (events, ended) = tail.join().expect("tail thread");
    assert!(ended, "tail subscriber never saw the end event");
    for event in &events {
        assert!(
            event.contains("\"at_ms\""),
            "not a journal record: {event:.80}"
        );
    }

    // Unknown routes 404, other methods 405.
    let (code, _) = http_get(addr, "/api/nope").expect("GET unknown");
    assert_eq!(code, 404);
}

#[test]
fn daemon_serves_batch_identical_aggregates_k1() {
    run_daemon_under_load(ServeConfig {
        waves: 1,
        shards: 1,
        ..ServeConfig::tiny(SEED)
    });
}

#[test]
#[ignore = "two sharded waves + batch twin: run in release via the CI serve-equivalence job"]
fn daemon_serves_batch_identical_aggregates_k4_two_waves() {
    run_daemon_under_load(ServeConfig {
        waves: 2,
        shards: 4,
        ..ServeConfig::tiny(SEED)
    });
}
