//! `CampaignData::absorb` is the sharded executor's merge step, and shard
//! workers finish in whatever order the OS schedules them. The merge must
//! therefore be commutative: absorbing the same per-shard data sets in any
//! order has to produce identical campaign data and identical downstream
//! correlation. This test builds three real shard data sets and merges
//! them in every permutation.

use traffic_shadowing::shadow_core::campaign::{CampaignData, CampaignRunner, Phase1Config};
use traffic_shadowing::shadow_core::correlate::Correlator;
use traffic_shadowing::shadow_core::executor::shard_vps;
use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::sink::SinkConfig;
use traffic_shadowing::shadow_core::world::{generate_spec, WorldConfig};
use traffic_shadowing::shadow_vantage::platform::VpId;

fn shard_datas(seed: u64, shards: usize) -> Vec<CampaignData> {
    let spec = generate_spec(WorldConfig::tiny(seed));
    let config = Phase1Config::default();
    let vp_ids: Vec<VpId> = spec.platform.vps.iter().map(|vp| vp.id).collect();
    shard_vps(&vp_ids, shards)
        .into_iter()
        .map(|owned| {
            let mut world = spec.instantiate();
            NoiseFilter::run_and_apply(&mut world);
            let plan = CampaignRunner::plan_phase1(&world, &config);
            CampaignRunner::execute_phase1(
                &mut world,
                &plan,
                &config,
                SinkConfig::retained(),
                |vp| owned.contains(&vp),
            )
        })
        .collect()
}

fn merge_in_order(datas: &[CampaignData], order: &[usize]) -> CampaignData {
    let mut merged = datas[order[0]].clone();
    for &i in &order[1..] {
        merged.absorb(datas[i].clone());
    }
    merged
}

#[test]
fn absorb_is_commutative_across_all_shard_orders() {
    let datas = shard_datas(7, 3);
    let orders: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let reference = merge_in_order(&datas, &orders[0]);
    assert!(
        !reference.arrivals.is_empty(),
        "the merged campaign must actually carry traffic"
    );
    let ref_correlated = Correlator::new(&reference.registry).correlate(&reference.arrivals);
    for order in &orders[1..] {
        let merged = merge_in_order(&datas, order);
        assert_eq!(
            reference.arrivals, merged.arrivals,
            "absorb order {order:?} changed the merged arrival stream"
        );
        assert_eq!(reference.last_send, merged.last_send);
        assert_eq!(
            reference.aggregates, merged.aggregates,
            "absorb order {order:?} changed the streamed aggregates"
        );
        let correlated = Correlator::new(&merged.registry).correlate(&merged.arrivals);
        assert_eq!(
            ref_correlated.len(),
            correlated.len(),
            "absorb order {order:?} changed correlation"
        );
        for (a, b) in ref_correlated.iter().zip(correlated.iter()) {
            assert_eq!(a.decoy.domain, b.decoy.domain, "order {order:?}");
            assert_eq!(a.label, b.label, "order {order:?}");
            assert_eq!(a.interval, b.interval, "order {order:?}");
        }
    }
}

#[test]
fn absorb_into_empty_is_identity() {
    let datas = shard_datas(11, 2);
    let mut lhs = CampaignData::default();
    for data in &datas {
        lhs.absorb(data.clone());
    }
    let rhs = merge_in_order(&datas, &[0, 1]);
    assert_eq!(lhs.arrivals, rhs.arrivals);
    assert_eq!(lhs.registry.len(), rhs.registry.len());
}
