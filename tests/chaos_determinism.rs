//! Fault injection must not cost the simulator its headline guarantee:
//! a fixed `(WorldConfig, FaultProfile, seed)` triple produces
//! byte-identical output — run twice, run sequentially, or run across any
//! shard count. Every fault decision is value-derived from packet bytes,
//! so shards that each see only a subset of the traffic still agree with
//! the sequential run packet-for-packet.
//!
//! Also pins the boundary profiles: total loss delivers nothing, and a
//! compiled-but-impairment-free profile is indistinguishable from running
//! with no profile at all.

use proptest::prelude::*;
use traffic_shadowing::shadow_chaos::{ChurnSpec, FaultProfile, OutageSpec, RetrySpec, Window};
use traffic_shadowing::shadow_core::executor::StealConfig;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

const SEED: u64 = 99;

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bundle_json(outcome: &StudyOutcome) -> String {
    outcome
        .export_bundle()
        .to_json()
        .expect("bundle serializes")
}

/// A profile exercising every fault class at once.
fn rich_profile() -> FaultProfile {
    FaultProfile {
        name: "rich".into(),
        fault_seed: 0xC0FFEE,
        loss: 0.01,
        duplication: 0.005,
        jitter_ms: 3,
        icmp_rate_limit: 0.5,
        router_outage: Some(OutageSpec {
            fraction: 0.1,
            window: Window::new(60_000, 600_000),
        }),
        link_outage: Some(OutageSpec {
            fraction: 0.05,
            window: Window::new(120_000, 300_000),
        }),
        resolver_outage: Some(Window::new(30_000, 90_000)),
        vp_churn: Some(ChurnSpec {
            fraction: 0.2,
            window: Window::new(200_000, 500_000),
        }),
        honeypot_downtime: Some(Window::new(400_000, 450_000)),
        dns_retry: Some(RetrySpec::STANDARD),
    }
}

// Retained mode: these tests compare raw arrival streams packet-for-packet
// (the streaming default buffers nothing — `tests/streaming_equivalence.rs`
// covers that path under the same rich profile).
fn config_with(profile: FaultProfile) -> StudyConfig {
    StudyConfig::tiny(SEED)
        .with_faults(profile)
        .with_retained_arrivals()
}

#[test]
fn same_profile_same_seed_is_byte_identical() {
    let a = Study::run(config_with(rich_profile()));
    let b = Study::run(config_with(rich_profile()));
    assert_eq!(a.phase1.arrivals, b.phase1.arrivals);
    assert_eq!(a.traceroutes, b.traceroutes);
    assert_eq!(bundle_json(&a), bundle_json(&b));
}

#[test]
fn sharded_equivalence_survives_faults() {
    let sequential = Study::run(config_with(rich_profile()));
    let expected = bundle_json(&sequential);
    for k in [1usize, 3, 7, num_cpus()] {
        let sharded = Study::run_sharded(config_with(rich_profile()), k);
        assert_eq!(
            sequential.phase1.arrivals, sharded.phase1.arrivals,
            "K={k}: Phase I arrival streams diverge under faults"
        );
        assert_eq!(
            sequential.traceroutes, sharded.traceroutes,
            "K={k}: Phase II traceroutes diverge under faults"
        );
        assert_eq!(
            expected,
            bundle_json(&sharded),
            "K={k}: exported analysis bundles diverge under faults"
        );
    }
}

#[test]
fn work_stealing_equivalence_survives_faults() {
    // The conditioner's decisions are value-derived from packet bytes, so
    // nondeterministic chunk→thread placement must not change which
    // packets suffer. Shapes mirror tests/sharded_equivalence.rs.
    let sequential = Study::run(config_with(rich_profile()));
    let expected = bundle_json(&sequential);
    let shapes = [
        StealConfig::with_workers(1),
        StealConfig::with_workers(2).with_chunks(7),
        StealConfig::auto(),
    ];
    for shape in shapes {
        let stolen = Study::run_work_stealing(config_with(rich_profile()), shape);
        assert_eq!(
            sequential.phase1.arrivals, stolen.phase1.arrivals,
            "{shape:?}: Phase I arrival streams diverge under faults"
        );
        assert_eq!(
            sequential.traceroutes, stolen.traceroutes,
            "{shape:?}: Phase II traceroutes diverge under faults"
        );
        assert_eq!(
            expected,
            bundle_json(&stolen),
            "{shape:?}: exported analysis bundles diverge under faults"
        );
    }
}

#[test]
fn fault_seed_changes_which_packets_suffer() {
    let a = Study::run(config_with(FaultProfile::with_loss("l", 0.05, 1)));
    let b = Study::run(config_with(FaultProfile::with_loss("l", 0.05, 2)));
    assert_ne!(
        a.phase1.arrivals, b.phase1.arrivals,
        "different fault seeds must impair different packets"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Total loss delivers nothing: no arrivals, no correlations, no
    /// traceroute ever completes.
    #[test]
    fn total_loss_delivers_nothing(seed in 1u64..1_000) {
        let profile = FaultProfile::with_loss("blackout", 1.0, seed);
        let outcome = Study::run(config_with(profile));
        prop_assert!(outcome.phase1.arrivals.is_empty());
        prop_assert!(outcome.correlated.is_empty());
        prop_assert!(outcome.traceroutes.iter().all(|r| r.normalized_hop.is_none()));
    }

    /// A zero-impairment profile (conditioner installed, nothing to do)
    /// must match running with no profile at all, byte for byte.
    #[test]
    fn fault_free_profile_matches_no_profile(seed in 1u64..1_000) {
        let mut clean = FaultProfile::baseline("clean");
        clean.fault_seed = seed;
        let with_profile = Study::run(config_with(clean));
        let without = Study::run(StudyConfig::tiny(SEED).with_retained_arrivals());
        prop_assert_eq!(&with_profile.phase1.arrivals, &without.phase1.arrivals);
        prop_assert_eq!(bundle_json(&with_profile), bundle_json(&without));
    }
}
