//! End-to-end integration tests over the whole stack: a miniature campaign
//! must qualitatively recover every headline finding of the paper.

use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_netsim::time::SimDuration;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

fn outcome() -> &'static StudyOutcome {
    use std::sync::OnceLock;
    static OUTCOME: OnceLock<StudyOutcome> = OnceLock::new();
    // Retained: several of these tests are sample-level (Figure 6 origins,
    // probing payloads, the case studies).
    OUTCOME.get_or_init(|| Study::run(StudyConfig::tiny(1234).with_retained_arrivals()))
}

#[test]
fn heavy_resolvers_dominate_dns_landscape() {
    let outcome = outcome();
    let landscape = outcome.landscape();
    let yandex = landscape.destination_ratio("Yandex", DecoyProtocol::Dns);
    let google = landscape.destination_ratio("Google", DecoyProtocol::Dns);
    let control = landscape.destination_ratio("self-built", DecoyProtocol::Dns);
    let root = landscape.destination_ratio("a.root", DecoyProtocol::Dns);
    assert!(yandex > 0.8, "Yandex nearly always shadows ({yandex})");
    assert!(yandex > google, "Resolver_h above benign resolvers");
    assert_eq!(control, 0.0, "the control resolver stays clean");
    assert_eq!(root, 0.0, "roots stay clean");
}

#[test]
fn dns_decoys_more_susceptible_than_http_tls() {
    let outcome = outcome();
    let landscape = outcome.landscape();
    let dns = landscape.protocol_ratio(DecoyProtocol::Dns);
    let http = landscape.protocol_ratio(DecoyProtocol::Http);
    let tls = landscape.protocol_ratio(DecoyProtocol::Tls);
    assert!(dns > http, "DNS ({dns}) above HTTP ({http})");
    assert!(dns > tls, "DNS ({dns}) above TLS ({tls})");
}

#[test]
fn dns_observers_sit_at_the_destination() {
    let outcome = outcome();
    let table = outcome.hop_table();
    if table.localized_paths(DecoyProtocol::Dns) == 0 {
        panic!("phase II localized no DNS paths");
    }
    assert!(
        table.at_destination_percent(DecoyProtocol::Dns) > 80.0,
        "DNS shadowing is resolver-side (paper: 99.7%)"
    );
}

#[test]
fn retention_reaches_past_ten_days() {
    let outcome = outcome();
    let cdf = outcome.fig4_cdf();
    assert!(!cdf.is_empty());
    let at_10d = cdf.fraction_at(SimDuration::from_days(10));
    assert!(
        at_10d < 1.0,
        "some unsolicited requests arrive ≥10 days later (paper: 40% for Yandex)"
    );
    // No cache-refresh spike at the wildcard TTL mark.
    let spike = cdf.mass_near(SimDuration::from_hours(1), SimDuration::from_mins(5));
    assert!(spike < 0.2, "no 1h spike expected, got {spike}");
}

#[test]
fn benign_resolvers_retry_within_a_minute() {
    let outcome = outcome();
    let others = outcome.fig4_other_resolvers_cdf();
    if others.is_empty() {
        return; // tiny worlds may have no benign retries with some seeds
    }
    assert!(
        others.fraction_at(SimDuration::from_mins(1)) > 0.8,
        "non-Resolver_h unsolicited requests are prompt retries (paper: 95%)"
    );
}

#[test]
fn data_is_reused_multiple_times() {
    let outcome = outcome();
    let reuse = outcome.reuse();
    assert!(reuse.late_active_decoys() > 0);
    assert!(
        reuse.fraction_exceeding(3) > 0.2,
        "a sizable share of late-active decoys produce >3 requests (paper: 51%)"
    );
    assert!(reuse.max_reuse() > 3);
}

#[test]
fn google_is_a_dominant_dns_requery_origin() {
    let outcome = outcome();
    let origins = outcome.fig6_origins();
    assert!(
        origins.as_share(15169) > 0.2,
        "exhibitors re-query via Google Public DNS (paper: dominant origin)"
    );
}

#[test]
fn probing_is_enumeration_not_exploitation() {
    let outcome = outcome();
    let probing = outcome.probing(DecoyProtocol::Dns);
    assert_eq!(probing.exploits, 0, "no exploit payloads (as in the paper)");
    if probing.http_requests > 0 {
        assert!(
            probing.enumeration_fraction() > 0.7,
            "probes enumerate paths (paper: ~95%)"
        );
    }
    // Blocklist rates: HTTP origins dirtier than DNS origins.
    let dns_rate = probing.blocklist_rate("DNS");
    let http_rate = probing.blocklist_rate("HTTP");
    if probing.http_requests > 0 {
        assert!(
            http_rate > dns_rate,
            "HTTP probe origins hit the blocklist more ({http_rate} vs {dns_rate})"
        );
    }
}

#[test]
fn yandex_case_study_shape() {
    let outcome = outcome();
    let case = outcome.resolver_case("Yandex").expect("Yandex deployed");
    assert!(case.decoys > 0);
    assert!(
        case.shadowed_fraction() > 0.8,
        "paper: >99% of Yandex decoys shadowed"
    );
    assert!(
        case.http_probed_fraction() > 0.2,
        "paper: 51% trigger HTTP(S) probes"
    );
}

#[test]
fn summary_renders() {
    let outcome = outcome();
    let summary = outcome.summary();
    assert!(summary.contains("decoys:"));
    assert!(summary.contains("path ratios:"));
}
