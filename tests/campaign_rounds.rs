//! Multi-round campaigns: the paper round-robins "continuously ... without
//! stop" for two months. More rounds mean more decoys per path and a higher
//! chance that probabilistic exhibitors fire at least once per path.

use traffic_shadowing::shadow_core::campaign::{CampaignRunner, Phase1Config};
use traffic_shadowing::shadow_core::correlate::Correlator;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::world::{World, WorldConfig};
use traffic_shadowing::shadow_netsim::time::SimDuration;

fn run_rounds(seed: u64, rounds: usize) -> (usize, usize, f64) {
    let mut world = World::build(WorldConfig::tiny(seed));
    NoiseFilter::run_and_apply(&mut world);
    let data = CampaignRunner::run_phase1(
        &mut world,
        &Phase1Config {
            send_http: false,
            send_tls: false,
            rounds,
            round_gap: SimDuration::from_hours(6),
            grace: SimDuration::from_days(35),
            ..Phase1Config::default()
        },
    );
    let vps = world.platform.vps.len();
    let correlator = Correlator::new(&data.registry);
    let correlated = correlator.correlate(&data.arrivals);
    let problematic = correlator.problematic_paths(&correlated).len();
    let total = correlator.total_paths(DecoyProtocol::Dns);
    (
        data.registry.len(),
        vps,
        problematic as f64 / total.max(1) as f64,
    )
}

#[test]
fn rounds_scale_decoy_counts_not_path_counts() {
    let (decoys_1, vps_1, ratio_1) = run_rounds(555, 1);
    let (decoys_3, vps_3, ratio_3) = run_rounds(555, 3);
    assert_eq!(vps_1, vps_3, "identical world and vetting");
    assert_eq!(decoys_3, decoys_1 * 3, "3 rounds = 3× decoys");
    // More rounds can only help a path turn problematic: probabilistic
    // retry/trigger behaviour gets more chances per path.
    assert!(
        ratio_3 >= ratio_1,
        "problematic ratio must not shrink with rounds ({ratio_1} → {ratio_3})"
    );
    // And with 3 shots at ≥25%-probability behaviours, a visibly larger
    // share of benign-resolver paths shows retries.
    assert!(
        ratio_3 > ratio_1 + 0.02,
        "three rounds should lift the ratio measurably ({ratio_1} → {ratio_3})"
    );
}
