//! The shadow-topo guarantees, enforced end to end:
//!
//! 1. **Router-graph determinism.** The Phase II router-graph
//!    reconstruction serializes byte-identically for K∈{1,4} shard
//!    counts, with and without a fault profile — the per-shard builders
//!    fold disjoint probe-path sets and `absorb` is commutative, so the
//!    merged graph cannot depend on shard scheduling.
//!
//! 2. **LPM/scan equivalence.** The treebitmap trie behind `GeoDb::lookup`
//!    answers exactly like the old sorted-vec backward scan (kept as
//!    `GeoScanIndex`) on the standard world: asn/country/hosting agree on
//!    every routed address and on adversarial probes around every prefix
//!    boundary.

use std::net::Ipv4Addr;
use traffic_shadowing::shadow_chaos::FaultProfile;
use traffic_shadowing::shadow_core::world::{generate_spec, WorldConfig};
use traffic_shadowing::study::{Study, StudyConfig};

fn graph_json(outcome: &traffic_shadowing::study::StudyOutcome) -> String {
    serde_json::to_string(&outcome.router_graph).expect("router graph serializes")
}

#[test]
fn router_graph_identical_across_shard_counts() {
    let sequential = Study::run(StudyConfig::tiny(7));
    assert!(
        sequential.router_graph.observations > 0,
        "tiny study must reveal hops"
    );
    let expected = graph_json(&sequential);
    for k in [1, 4] {
        let sharded = Study::run_sharded(StudyConfig::tiny(7), k);
        assert_eq!(
            expected,
            graph_json(&sharded),
            "K={k}: router graph diverges from sequential"
        );
    }
}

#[test]
fn router_graph_identical_across_shard_counts_under_faults() {
    let profile = FaultProfile {
        loss: 0.02,
        icmp_rate_limit: 0.5,
        fault_seed: 3,
        ..FaultProfile::baseline("topo-faults")
    };
    let config = || StudyConfig::tiny(7).with_faults(profile.clone());
    let sequential = Study::run(config());
    let expected = graph_json(&sequential);
    // Rate limiting must actually bite, or this test collapses into the
    // fault-free one above.
    let baseline = Study::run(StudyConfig::tiny(7));
    assert!(
        sequential.router_graph.observations < baseline.router_graph.observations,
        "ICMP rate limiting should suppress some Time-Exceeded answers"
    );
    for k in [1, 4] {
        let sharded = Study::run_sharded(config(), k);
        assert_eq!(
            expected,
            graph_json(&sharded),
            "K={k}: faulted router graph diverges from sequential"
        );
    }
}

#[test]
fn trie_agrees_with_scan_reference_on_the_standard_world() {
    let spec = generate_spec(WorldConfig::standard(7));
    let world = spec.instantiate();
    let db = &world.geo;
    let scan = db.scan_index();
    assert!(db.len() > 100, "standard world should carry a real table");

    let mut probes: Vec<Ipv4Addr> = Vec::new();
    // Every routed node address (the acceptance bar), plus adversarial
    // probes around every prefix boundary: base-1, base, base+1, last,
    // last+1 — the addresses where the old /8-bounded backward scan and
    // a trie could plausibly disagree.
    for node in world.engine.topology().nodes() {
        probes.push(node.addr);
    }
    for record in db.iter() {
        let base = record.prefix.base_u32();
        let span = if record.prefix.len() == 0 {
            u32::MAX
        } else {
            (1u64 << (32 - record.prefix.len()) as u64).wrapping_sub(1) as u32
        };
        let last = base.saturating_add(span);
        for probe in [
            base.wrapping_sub(1),
            base,
            base.wrapping_add(1),
            last,
            last.wrapping_add(1),
        ] {
            probes.push(Ipv4Addr::from(probe));
        }
    }

    for addr in probes {
        let via_trie = db
            .lookup(addr)
            .map(|r| (r.prefix, r.asn, r.country, r.hosting));
        let via_scan = scan
            .lookup(addr)
            .map(|r| (r.prefix, r.asn, r.country, r.hosting));
        assert_eq!(via_trie, via_scan, "lookup({addr}) diverges from the scan");
    }
}
