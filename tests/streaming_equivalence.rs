//! The streaming pipeline's headline guarantee: classifying every arrival
//! at capture time and folding into per-shard aggregates produces
//! **byte-identical** analysis output to the retained batch path — for any
//! shard count, with or without fault injection — while the default path
//! retains no raw arrival vector at all.

use traffic_shadowing::shadow_chaos::{FaultProfile, OutageSpec, RetrySpec, Window};
use traffic_shadowing::shadow_core::executor::StealConfig;
use traffic_shadowing::shadow_core::sink::{CorrelationAggregates, SinkConfig};
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

const SEED: u64 = 4_021;

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn bundle_json(outcome: &StudyOutcome) -> String {
    outcome
        .export_bundle()
        .to_json()
        .expect("bundle serializes")
}

/// The retained bundle with its sample-only artifacts removed — what the
/// streaming bundle must match byte for byte.
fn bundle_json_without_samples(outcome: &StudyOutcome) -> String {
    let mut bundle = outcome.export_bundle();
    bundle.origins = None;
    bundle.probing_dns = None;
    bundle.to_json().expect("bundle serializes")
}

/// A profile exercising every fault class at once (mirrors
/// `tests/chaos_determinism.rs`).
fn rich_profile() -> FaultProfile {
    FaultProfile {
        name: "rich".into(),
        fault_seed: 0xC0FFEE,
        loss: 0.01,
        duplication: 0.005,
        jitter_ms: 3,
        icmp_rate_limit: 0.5,
        router_outage: Some(OutageSpec {
            fraction: 0.1,
            window: Window::new(60_000, 600_000),
        }),
        link_outage: None,
        resolver_outage: Some(Window::new(30_000, 90_000)),
        vp_churn: None,
        honeypot_downtime: Some(Window::new(400_000, 450_000)),
        dns_retry: Some(RetrySpec::STANDARD),
    }
}

#[test]
fn default_path_retains_no_arrivals() {
    let outcome = Study::run(StudyConfig::tiny(SEED));
    assert!(
        outcome.phase1.arrivals.is_empty(),
        "streaming mode must not buffer raw arrivals"
    );
    assert!(outcome.correlated.is_empty());
    assert!(!outcome.retained);
    assert!(
        outcome.phase1.aggregates.arrivals_seen > 0,
        "the sink must still have seen the traffic"
    );
    assert!(outcome.phase1.aggregates.unsolicited_total() > 0);
    if let Some(p2) = &outcome.phase2 {
        assert!(p2.arrivals.is_empty(), "Phase II streams too");
    }
}

#[test]
fn streamed_aggregates_match_batch_fold_on_retained_run() {
    let outcome = Study::run(StudyConfig::tiny(SEED).with_retained_arrivals());
    let batch = CorrelationAggregates::from_arrivals(
        &outcome.phase1.registry,
        &outcome.phase1.arrivals,
        &SinkConfig::retained(),
    );
    assert_eq!(
        outcome.phase1.aggregates, batch,
        "capture-time folding diverged from the batch twin"
    );
}

#[test]
fn streaming_bundle_matches_retained_bundle() {
    let streamed = Study::run(StudyConfig::tiny(SEED));
    let retained = Study::run(StudyConfig::tiny(SEED).with_retained_arrivals());
    assert_eq!(
        bundle_json(&streamed),
        bundle_json_without_samples(&retained),
        "streamed and retained analysis bundles diverge"
    );
    // Sample-only artifacts exist exactly in retained mode.
    assert!(retained.export_bundle().origins.is_some());
    assert!(streamed.export_bundle().origins.is_none());
}

#[test]
fn streaming_is_shard_invariant() {
    let sequential = Study::run(StudyConfig::tiny(SEED));
    let expected = bundle_json(&sequential);
    for k in [1usize, 3, 7, num_cpus()] {
        let sharded = Study::run_sharded(StudyConfig::tiny(SEED), k);
        assert_eq!(
            sequential.phase1.aggregates, sharded.phase1.aggregates,
            "K={k}: streamed aggregates diverge"
        );
        assert_eq!(
            expected,
            bundle_json(&sharded),
            "K={k}: streamed analysis bundles diverge"
        );
        assert!(sharded.phase1.arrivals.is_empty());
    }
    // The streaming default is exactly what paper-scale work-stealing
    // campaigns run; cover the same shapes here.
    for shape in [
        StealConfig::with_workers(1),
        StealConfig::with_workers(3).with_chunks(7),
        StealConfig::auto(),
    ] {
        let stolen = Study::run_work_stealing(StudyConfig::tiny(SEED), shape);
        assert_eq!(
            sequential.phase1.aggregates, stolen.phase1.aggregates,
            "{shape:?}: streamed aggregates diverge"
        );
        assert_eq!(
            expected,
            bundle_json(&stolen),
            "{shape:?}: streamed analysis bundles diverge"
        );
        assert!(stolen.phase1.arrivals.is_empty());
    }
}

#[test]
fn streaming_is_shard_invariant_under_faults() {
    let config = || StudyConfig::tiny(SEED).with_faults(rich_profile());
    let sequential = Study::run(config());
    let expected = bundle_json(&sequential);
    let retained = Study::run(config().with_retained_arrivals());
    assert_eq!(
        expected,
        bundle_json_without_samples(&retained),
        "faults: streamed vs retained bundles diverge"
    );
    for k in [1usize, 3, 7, num_cpus()] {
        let sharded = Study::run_sharded(config(), k);
        assert_eq!(
            sequential.phase1.aggregates, sharded.phase1.aggregates,
            "K={k}: streamed aggregates diverge under faults"
        );
        assert_eq!(
            expected,
            bundle_json(&sharded),
            "K={k}: streamed bundles diverge under faults"
        );
    }
    for shape in [
        StealConfig::with_workers(2).with_chunks(5),
        StealConfig::auto(),
    ] {
        let stolen = Study::run_work_stealing(config(), shape);
        assert_eq!(
            sequential.phase1.aggregates, stolen.phase1.aggregates,
            "{shape:?}: streamed aggregates diverge under faults"
        );
        assert_eq!(
            expected,
            bundle_json(&stolen),
            "{shape:?}: streamed bundles diverge under faults"
        );
    }
}

#[test]
fn histogram_grid_matches_cdf_bit_for_bit() {
    use traffic_shadowing::shadow_analysis::export::{grid_points, grid_points_streamed};
    let outcome = Study::run(StudyConfig::tiny(SEED).with_retained_arrivals());
    let pairs = [
        (grid_points(&outcome.fig4_cdf()), outcome.fig4_hist()),
        (
            grid_points(&outcome.fig7_cdfs().0),
            outcome.fig7_hists().0.clone(),
        ),
        (
            grid_points(&outcome.fig7_cdfs().1),
            outcome.fig7_hists().1.clone(),
        ),
    ];
    for (cdf_grid, hist) in pairs {
        let hist_grid = grid_points_streamed(&hist);
        assert_eq!(cdf_grid.len(), hist_grid.len());
        for ((label_c, frac_c), (label_h, frac_h)) in cdf_grid.iter().zip(hist_grid.iter()) {
            assert_eq!(label_c, label_h);
            assert_eq!(
                frac_c.to_bits(),
                frac_h.to_bits(),
                "{label_c}: histogram fraction differs from CDF"
            );
        }
    }
}

/// The standard-world equivalence run the CI streaming job executes in
/// release mode (`--include-ignored`): too slow for the default debug
/// suite.
#[test]
#[ignore = "standard world: run in release via the CI streaming-equivalence job"]
fn streaming_matches_retained_on_standard_world() {
    let streamed = Study::run(StudyConfig::standard(SEED));
    let retained = Study::run(StudyConfig::standard(SEED).with_retained_arrivals());
    assert!(streamed.phase1.arrivals.is_empty());
    assert_eq!(
        bundle_json(&streamed),
        bundle_json_without_samples(&retained)
    );
    let batch = CorrelationAggregates::from_arrivals(
        &retained.phase1.registry,
        &retained.phase1.arrivals,
        &SinkConfig::retained(),
    );
    assert_eq!(streamed.phase1.aggregates, batch);
    for k in [1usize, 4] {
        let sharded = Study::run_sharded(StudyConfig::standard(SEED), k);
        assert_eq!(streamed.phase1.aggregates, sharded.phase1.aggregates);
        assert_eq!(bundle_json(&streamed), bundle_json(&sharded));
    }
    let stolen = Study::run_work_stealing(StudyConfig::standard(SEED), StealConfig::auto());
    assert_eq!(streamed.phase1.aggregates, stolen.phase1.aggregates);
    assert_eq!(bundle_json(&streamed), bundle_json(&stolen));
}
