//! Reproducibility: the same (config, seed) must yield byte-identical
//! campaign results; different seeds must actually differ.

use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

fn fingerprint(outcome: &StudyOutcome) -> String {
    let landscape = outcome.landscape();
    let table = outcome.hop_table();
    format!(
        "vps={} decoys={} arrivals={} unsolicited={} dns={:.4} http={:.4} tls={:.4} \
         dns_at_dest={:.2} traced={} localized={}",
        outcome.world.platform.vps.len(),
        outcome.phase1.registry.len(),
        outcome.phase1.aggregates.arrivals_seen,
        outcome.phase1.aggregates.unsolicited_total(),
        landscape.protocol_ratio(DecoyProtocol::Dns),
        landscape.protocol_ratio(DecoyProtocol::Http),
        landscape.protocol_ratio(DecoyProtocol::Tls),
        table.at_destination_percent(DecoyProtocol::Dns),
        outcome.traced_paths.len(),
        outcome
            .traceroutes
            .iter()
            .filter(|r| r.normalized_hop.is_some())
            .count(),
    )
}

#[test]
fn same_seed_same_outcome() {
    // Retained mode so the exact arrival stream is comparable.
    let a = Study::run(StudyConfig::tiny(99).with_retained_arrivals());
    let b = Study::run(StudyConfig::tiny(99).with_retained_arrivals());
    assert_eq!(fingerprint(&a), fingerprint(&b));
    // Down to the exact arrival stream and streamed aggregates.
    assert_eq!(a.phase1.arrivals, b.phase1.arrivals);
    assert_eq!(a.phase1.aggregates, b.phase1.aggregates);
    assert_eq!(a.traceroutes, b.traceroutes);
}

#[test]
fn different_seeds_differ() {
    // Streaming default: the capture-time aggregates carry the traffic.
    let a = Study::run(StudyConfig::tiny(100));
    let b = Study::run(StudyConfig::tiny(101));
    assert_ne!(
        a.phase1.aggregates, b.phase1.aggregates,
        "different seeds must produce different traffic"
    );
}
