//! The sharded executor's headline guarantee: for ANY shard count —
//! including the degenerate K=1 and a K larger than any realistic core
//! count would warrant — `Study::run_sharded` produces **byte-identical**
//! analysis output to the sequential `Study::run`.
//!
//! "Byte-identical" is enforced on the exported JSON analysis bundle (the
//! full Figure/Table artifact set), the raw Phase I arrival stream, and
//! the unsolicited-request classifications. Two distinct seeds are tested
//! so a bug that collapses output to a constant cannot pass.

use traffic_shadowing::shadow_core::correlate::CorrelatedRequest;
use traffic_shadowing::shadow_core::executor::StealConfig;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

const SHARD_COUNTS: [usize; 4] = [1, 3, 7, 0 /* replaced by num_cpus */];
const SEEDS: [u64; 2] = [99, 424_242];

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The fixed shard counts under test: 1, 3, 7, and the machine's core
/// count (so CI exercises whatever parallelism the runner actually has).
fn shard_counts() -> Vec<usize> {
    let mut counts: Vec<usize> = SHARD_COUNTS
        .iter()
        .map(|&k| if k == 0 { num_cpus() } else { k })
        .collect();
    counts.dedup();
    counts
}

/// Work-stealing shapes: the same chunk counts as the fixed grid, with
/// worker counts both below and equal to the chunk count (stealing only
/// happens when a worker's own deque drains first), plus the
/// machine-shaped [`StealConfig::auto`].
fn steal_shapes() -> Vec<StealConfig> {
    let mut shapes = vec![
        StealConfig::with_workers(1),
        StealConfig::with_workers(2).with_chunks(3),
        StealConfig::with_workers(3).with_chunks(7),
        StealConfig::with_workers(7).with_chunks(7),
        StealConfig::auto(),
    ];
    shapes.dedup();
    shapes
}

fn bundle_json(outcome: &StudyOutcome) -> String {
    outcome
        .export_bundle()
        .to_json()
        .expect("bundle serializes")
}

/// The classification facts of one correlated request, independent of any
/// in-memory ordering concerns: (decoy id, label, observed protocol).
fn classifications(correlated: &[CorrelatedRequest]) -> Vec<String> {
    let mut out: Vec<String> = correlated
        .iter()
        .map(|r| {
            format!(
                "{} {:?} {:?} {:?}",
                r.decoy.domain, r.decoy.protocol, r.label, r.arrival.src
            )
        })
        .collect();
    out.sort();
    out
}

#[test]
fn sharded_matches_sequential_for_every_shard_count() {
    // Retained mode: the raw arrival stream and per-request classifications
    // are part of the comparison (the streaming default is covered shard-
    // for-shard by `tests/streaming_equivalence.rs`).
    for seed in SEEDS {
        let sequential = Study::run(StudyConfig::tiny(seed).with_retained_arrivals());
        let expected_json = bundle_json(&sequential);
        let expected_classes = classifications(&sequential.correlated);
        for k in shard_counts() {
            let sharded = Study::run_sharded(StudyConfig::tiny(seed).with_retained_arrivals(), k);
            assert_eq!(
                sequential.phase1.arrivals, sharded.phase1.arrivals,
                "seed {seed}, K={k}: Phase I arrival streams diverge"
            );
            assert_eq!(
                sequential.phase1.aggregates, sharded.phase1.aggregates,
                "seed {seed}, K={k}: streamed aggregates diverge"
            );
            assert_eq!(
                expected_classes,
                classifications(&sharded.correlated),
                "seed {seed}, K={k}: unsolicited classifications diverge"
            );
            assert_eq!(
                expected_json,
                bundle_json(&sharded),
                "seed {seed}, K={k}: exported analysis bundles diverge"
            );
        }
    }
}

#[test]
fn sharded_preserves_phase2_localization() {
    let seed = 99;
    let sequential = Study::run(StudyConfig::tiny(seed));
    let sharded = Study::run_sharded(StudyConfig::tiny(seed), 2);
    assert_eq!(sequential.traced_paths, sharded.traced_paths);
    assert_eq!(sequential.traceroutes, sharded.traceroutes);
}

#[test]
fn work_stealing_matches_sequential_for_every_shape() {
    // Same matrix as the fixed-shard test, but under the work-stealing
    // scheduler: chunk→thread placement is nondeterministic, the merged
    // output must not be.
    for seed in SEEDS {
        let sequential = Study::run(StudyConfig::tiny(seed).with_retained_arrivals());
        let expected_json = bundle_json(&sequential);
        let expected_classes = classifications(&sequential.correlated);
        for shape in steal_shapes() {
            let stolen =
                Study::run_work_stealing(StudyConfig::tiny(seed).with_retained_arrivals(), shape);
            assert_eq!(
                sequential.phase1.arrivals, stolen.phase1.arrivals,
                "seed {seed}, {shape:?}: Phase I arrival streams diverge"
            );
            assert_eq!(
                sequential.phase1.aggregates, stolen.phase1.aggregates,
                "seed {seed}, {shape:?}: streamed aggregates diverge"
            );
            assert_eq!(
                expected_classes,
                classifications(&stolen.correlated),
                "seed {seed}, {shape:?}: unsolicited classifications diverge"
            );
            assert_eq!(
                expected_json,
                bundle_json(&stolen),
                "seed {seed}, {shape:?}: exported analysis bundles diverge"
            );
        }
    }
}

#[test]
fn work_stealing_preserves_phase2_localization() {
    let seed = 99;
    let sequential = Study::run(StudyConfig::tiny(seed));
    let stolen = Study::run_work_stealing(
        StudyConfig::tiny(seed),
        StealConfig::with_workers(2).with_chunks(5),
    );
    assert_eq!(sequential.traced_paths, stolen.traced_paths);
    assert_eq!(sequential.traceroutes, stolen.traceroutes);
}

#[test]
fn distinct_seeds_still_differ_under_sharding() {
    let a = Study::run_sharded(StudyConfig::tiny(SEEDS[0]), 2);
    let b = Study::run_sharded(StudyConfig::tiny(SEEDS[1]), 2);
    assert_ne!(
        a.phase1.aggregates, b.phase1.aggregates,
        "different seeds must produce different sharded traffic"
    );
}
