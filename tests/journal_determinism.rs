//! Event-journal determinism.
//!
//! 1. Re-running the same seed + shard count reproduces a **byte-identical**
//!    serialized journal (the canonical sort makes merge order irrelevant).
//! 2. Journals from different shard counts align under `journal diff`'s
//!    total event key order: the same world events occur at the same
//!    sim-times regardless of how the VPs were partitioned.

use traffic_shadowing::shadow_core::executor::TelemetryOptions;
use traffic_shadowing::shadow_telemetry::{diff, from_jsonl, to_jsonl, JournalRecord};
use traffic_shadowing::study::{Study, StudyConfig};

const SEED: u64 = 99;

fn config() -> StudyConfig {
    StudyConfig {
        telemetry: TelemetryOptions::enabled(true),
        ..StudyConfig::tiny(SEED)
    }
}

fn journal_of(shards: Option<usize>) -> Vec<JournalRecord> {
    let outcome = match shards {
        Some(k) => Study::run_sharded(config(), k),
        None => Study::run(config()),
    };
    outcome.journal.expect("journal enabled")
}

#[test]
fn same_seed_and_shard_count_reproduce_identical_journals() {
    for shards in [None, Some(2)] {
        let first = to_jsonl(&journal_of(shards)).expect("serializes");
        let second = to_jsonl(&journal_of(shards)).expect("serializes");
        assert!(!first.is_empty(), "journal must record events");
        assert_eq!(
            first, second,
            "shards {shards:?}: repeated runs must serialize byte-identically"
        );
        // And the serialization round-trips.
        let reparsed = from_jsonl(&first).expect("parses");
        assert_eq!(to_jsonl(&reparsed).expect("serializes"), first);
    }
}

#[test]
fn journals_align_across_shard_counts() {
    let sequential = journal_of(None);
    for k in [1usize, 2, 7] {
        let sharded = journal_of(Some(k));
        let report = diff(&sequential, &sharded);
        assert!(
            report.identical(),
            "K={k} diverges from sequential:\n{}",
            report.render()
        );
        assert!(report.left_events > 0, "diff compared no events");
    }
}

#[test]
fn different_seeds_produce_different_journals() {
    let a = journal_of(None);
    let outcome = Study::run(StudyConfig {
        telemetry: TelemetryOptions::enabled(true),
        ..StudyConfig::tiny(SEED + 1)
    });
    let b = outcome.journal.expect("journal enabled");
    let report = diff(&a, &b);
    assert!(
        !report.identical(),
        "distinct seeds must produce distinct journals"
    );
}
