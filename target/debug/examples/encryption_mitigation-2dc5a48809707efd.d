/root/repo/target/debug/examples/encryption_mitigation-2dc5a48809707efd.d: examples/encryption_mitigation.rs

/root/repo/target/debug/examples/encryption_mitigation-2dc5a48809707efd: examples/encryption_mitigation.rs

examples/encryption_mitigation.rs:
