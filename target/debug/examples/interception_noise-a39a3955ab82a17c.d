/root/repo/target/debug/examples/interception_noise-a39a3955ab82a17c.d: examples/interception_noise.rs Cargo.toml

/root/repo/target/debug/examples/libinterception_noise-a39a3955ab82a17c.rmeta: examples/interception_noise.rs Cargo.toml

examples/interception_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
