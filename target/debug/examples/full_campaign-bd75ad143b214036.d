/root/repo/target/debug/examples/full_campaign-bd75ad143b214036.d: examples/full_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libfull_campaign-bd75ad143b214036.rmeta: examples/full_campaign.rs Cargo.toml

examples/full_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
