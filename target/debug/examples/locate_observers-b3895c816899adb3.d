/root/repo/target/debug/examples/locate_observers-b3895c816899adb3.d: examples/locate_observers.rs

/root/repo/target/debug/examples/locate_observers-b3895c816899adb3: examples/locate_observers.rs

examples/locate_observers.rs:
