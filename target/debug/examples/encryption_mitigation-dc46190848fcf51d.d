/root/repo/target/debug/examples/encryption_mitigation-dc46190848fcf51d.d: examples/encryption_mitigation.rs

/root/repo/target/debug/examples/encryption_mitigation-dc46190848fcf51d: examples/encryption_mitigation.rs

examples/encryption_mitigation.rs:
