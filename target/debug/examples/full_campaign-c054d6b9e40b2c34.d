/root/repo/target/debug/examples/full_campaign-c054d6b9e40b2c34.d: examples/full_campaign.rs Cargo.toml

/root/repo/target/debug/examples/libfull_campaign-c054d6b9e40b2c34.rmeta: examples/full_campaign.rs Cargo.toml

examples/full_campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
