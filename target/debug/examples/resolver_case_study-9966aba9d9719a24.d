/root/repo/target/debug/examples/resolver_case_study-9966aba9d9719a24.d: examples/resolver_case_study.rs

/root/repo/target/debug/examples/resolver_case_study-9966aba9d9719a24: examples/resolver_case_study.rs

examples/resolver_case_study.rs:
