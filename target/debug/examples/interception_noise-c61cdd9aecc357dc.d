/root/repo/target/debug/examples/interception_noise-c61cdd9aecc357dc.d: examples/interception_noise.rs

/root/repo/target/debug/examples/interception_noise-c61cdd9aecc357dc: examples/interception_noise.rs

examples/interception_noise.rs:
