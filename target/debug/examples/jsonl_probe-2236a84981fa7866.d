/root/repo/target/debug/examples/jsonl_probe-2236a84981fa7866.d: crates/telemetry/examples/jsonl_probe.rs

/root/repo/target/debug/examples/jsonl_probe-2236a84981fa7866: crates/telemetry/examples/jsonl_probe.rs

crates/telemetry/examples/jsonl_probe.rs:
