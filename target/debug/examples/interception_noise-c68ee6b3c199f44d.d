/root/repo/target/debug/examples/interception_noise-c68ee6b3c199f44d.d: examples/interception_noise.rs Cargo.toml

/root/repo/target/debug/examples/libinterception_noise-c68ee6b3c199f44d.rmeta: examples/interception_noise.rs Cargo.toml

examples/interception_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
