/root/repo/target/debug/examples/resolver_case_study-56f8f1cde131046d.d: examples/resolver_case_study.rs Cargo.toml

/root/repo/target/debug/examples/libresolver_case_study-56f8f1cde131046d.rmeta: examples/resolver_case_study.rs Cargo.toml

examples/resolver_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
