/root/repo/target/debug/examples/full_campaign-a859cc20ec032a63.d: examples/full_campaign.rs

/root/repo/target/debug/examples/full_campaign-a859cc20ec032a63: examples/full_campaign.rs

examples/full_campaign.rs:
