/root/repo/target/debug/examples/locate_observers-83b881804e88de39.d: examples/locate_observers.rs

/root/repo/target/debug/examples/locate_observers-83b881804e88de39: examples/locate_observers.rs

examples/locate_observers.rs:
