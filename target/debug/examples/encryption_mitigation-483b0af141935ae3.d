/root/repo/target/debug/examples/encryption_mitigation-483b0af141935ae3.d: examples/encryption_mitigation.rs

/root/repo/target/debug/examples/encryption_mitigation-483b0af141935ae3: examples/encryption_mitigation.rs

examples/encryption_mitigation.rs:
