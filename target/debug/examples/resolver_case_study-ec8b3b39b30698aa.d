/root/repo/target/debug/examples/resolver_case_study-ec8b3b39b30698aa.d: examples/resolver_case_study.rs

/root/repo/target/debug/examples/resolver_case_study-ec8b3b39b30698aa: examples/resolver_case_study.rs

examples/resolver_case_study.rs:
