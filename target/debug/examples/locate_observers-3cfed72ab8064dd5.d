/root/repo/target/debug/examples/locate_observers-3cfed72ab8064dd5.d: examples/locate_observers.rs Cargo.toml

/root/repo/target/debug/examples/liblocate_observers-3cfed72ab8064dd5.rmeta: examples/locate_observers.rs Cargo.toml

examples/locate_observers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
