/root/repo/target/debug/examples/locate_observers-a2b325f26da059bb.d: examples/locate_observers.rs Cargo.toml

/root/repo/target/debug/examples/liblocate_observers-a2b325f26da059bb.rmeta: examples/locate_observers.rs Cargo.toml

examples/locate_observers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
