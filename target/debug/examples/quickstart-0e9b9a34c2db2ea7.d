/root/repo/target/debug/examples/quickstart-0e9b9a34c2db2ea7.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0e9b9a34c2db2ea7: examples/quickstart.rs

examples/quickstart.rs:
