/root/repo/target/debug/examples/quickstart-d6c8a4f4884e136b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d6c8a4f4884e136b: examples/quickstart.rs

examples/quickstart.rs:
