/root/repo/target/debug/examples/resolver_case_study-02aa4bb064aece1e.d: examples/resolver_case_study.rs

/root/repo/target/debug/examples/resolver_case_study-02aa4bb064aece1e: examples/resolver_case_study.rs

examples/resolver_case_study.rs:
