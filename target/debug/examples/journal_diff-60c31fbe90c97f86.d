/root/repo/target/debug/examples/journal_diff-60c31fbe90c97f86.d: examples/journal_diff.rs Cargo.toml

/root/repo/target/debug/examples/libjournal_diff-60c31fbe90c97f86.rmeta: examples/journal_diff.rs Cargo.toml

examples/journal_diff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
