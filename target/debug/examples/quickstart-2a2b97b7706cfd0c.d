/root/repo/target/debug/examples/quickstart-2a2b97b7706cfd0c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2a2b97b7706cfd0c: examples/quickstart.rs

examples/quickstart.rs:
