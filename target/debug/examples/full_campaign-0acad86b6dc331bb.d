/root/repo/target/debug/examples/full_campaign-0acad86b6dc331bb.d: examples/full_campaign.rs

/root/repo/target/debug/examples/full_campaign-0acad86b6dc331bb: examples/full_campaign.rs

examples/full_campaign.rs:
