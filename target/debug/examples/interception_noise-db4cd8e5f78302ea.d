/root/repo/target/debug/examples/interception_noise-db4cd8e5f78302ea.d: examples/interception_noise.rs

/root/repo/target/debug/examples/interception_noise-db4cd8e5f78302ea: examples/interception_noise.rs

examples/interception_noise.rs:
