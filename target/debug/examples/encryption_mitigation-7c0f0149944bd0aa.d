/root/repo/target/debug/examples/encryption_mitigation-7c0f0149944bd0aa.d: examples/encryption_mitigation.rs Cargo.toml

/root/repo/target/debug/examples/libencryption_mitigation-7c0f0149944bd0aa.rmeta: examples/encryption_mitigation.rs Cargo.toml

examples/encryption_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
