/root/repo/target/debug/examples/encryption_mitigation-1e5ab1ddcfa7e2c6.d: examples/encryption_mitigation.rs Cargo.toml

/root/repo/target/debug/examples/libencryption_mitigation-1e5ab1ddcfa7e2c6.rmeta: examples/encryption_mitigation.rs Cargo.toml

examples/encryption_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
