/root/repo/target/debug/examples/locate_observers-2e0518832126ec47.d: examples/locate_observers.rs

/root/repo/target/debug/examples/locate_observers-2e0518832126ec47: examples/locate_observers.rs

examples/locate_observers.rs:
