/root/repo/target/debug/examples/journal_diff-bab14c44d4b54cea.d: examples/journal_diff.rs

/root/repo/target/debug/examples/journal_diff-bab14c44d4b54cea: examples/journal_diff.rs

examples/journal_diff.rs:
