/root/repo/target/debug/examples/full_campaign-598567ad17b50a2e.d: examples/full_campaign.rs

/root/repo/target/debug/examples/full_campaign-598567ad17b50a2e: examples/full_campaign.rs

examples/full_campaign.rs:
