/root/repo/target/debug/examples/resolver_case_study-ad5ff05a145578fb.d: examples/resolver_case_study.rs Cargo.toml

/root/repo/target/debug/examples/libresolver_case_study-ad5ff05a145578fb.rmeta: examples/resolver_case_study.rs Cargo.toml

examples/resolver_case_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
