/root/repo/target/debug/examples/quickstart-67aaf891edeb98f4.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-67aaf891edeb98f4.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
