/root/repo/target/debug/examples/interception_noise-87c37d4a89685871.d: examples/interception_noise.rs

/root/repo/target/debug/examples/interception_noise-87c37d4a89685871: examples/interception_noise.rs

examples/interception_noise.rs:
