/root/repo/target/debug/deps/shadow_packet-f1aa7e55684b8c57.d: crates/packet/src/lib.rs crates/packet/src/cursor.rs crates/packet/src/dns/mod.rs crates/packet/src/dns/message.rs crates/packet/src/dns/name.rs crates/packet/src/doq.rs crates/packet/src/error.rs crates/packet/src/http.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/tls.rs crates/packet/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_packet-f1aa7e55684b8c57.rmeta: crates/packet/src/lib.rs crates/packet/src/cursor.rs crates/packet/src/dns/mod.rs crates/packet/src/dns/message.rs crates/packet/src/dns/name.rs crates/packet/src/doq.rs crates/packet/src/error.rs crates/packet/src/http.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/tls.rs crates/packet/src/udp.rs Cargo.toml

crates/packet/src/lib.rs:
crates/packet/src/cursor.rs:
crates/packet/src/dns/mod.rs:
crates/packet/src/dns/message.rs:
crates/packet/src/dns/name.rs:
crates/packet/src/doq.rs:
crates/packet/src/error.rs:
crates/packet/src/http.rs:
crates/packet/src/icmp.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
crates/packet/src/tls.rs:
crates/packet/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
