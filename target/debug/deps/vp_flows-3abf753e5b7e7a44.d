/root/repo/target/debug/deps/vp_flows-3abf753e5b7e7a44.d: crates/vantage/tests/vp_flows.rs Cargo.toml

/root/repo/target/debug/deps/libvp_flows-3abf753e5b7e7a44.rmeta: crates/vantage/tests/vp_flows.rs Cargo.toml

crates/vantage/tests/vp_flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
