/root/repo/target/debug/deps/campaign_rounds-88cb06ffa4f19c96.d: tests/campaign_rounds.rs

/root/repo/target/debug/deps/campaign_rounds-88cb06ffa4f19c96: tests/campaign_rounds.rs

tests/campaign_rounds.rs:
