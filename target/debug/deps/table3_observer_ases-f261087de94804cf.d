/root/repo/target/debug/deps/table3_observer_ases-f261087de94804cf.d: crates/bench/benches/table3_observer_ases.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_observer_ases-f261087de94804cf.rmeta: crates/bench/benches/table3_observer_ases.rs Cargo.toml

crates/bench/benches/table3_observer_ases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
