/root/repo/target/debug/deps/pipeline_throughput-1632da87bfa54a5c.d: crates/bench/benches/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_throughput-1632da87bfa54a5c.rmeta: crates/bench/benches/pipeline_throughput.rs Cargo.toml

crates/bench/benches/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
