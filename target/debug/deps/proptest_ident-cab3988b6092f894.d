/root/repo/target/debug/deps/proptest_ident-cab3988b6092f894.d: crates/core/tests/proptest_ident.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_ident-cab3988b6092f894.rmeta: crates/core/tests/proptest_ident.rs Cargo.toml

crates/core/tests/proptest_ident.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
