/root/repo/target/debug/deps/proptest_policy-3fd5cd112ad429e9.d: crates/observer/tests/proptest_policy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_policy-3fd5cd112ad429e9.rmeta: crates/observer/tests/proptest_policy.rs Cargo.toml

crates/observer/tests/proptest_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
