/root/repo/target/debug/deps/absorb_commutativity-413be56eab6d541c.d: tests/absorb_commutativity.rs Cargo.toml

/root/repo/target/debug/deps/libabsorb_commutativity-413be56eab6d541c.rmeta: tests/absorb_commutativity.rs Cargo.toml

tests/absorb_commutativity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
