/root/repo/target/debug/deps/shadow_dns-0486a9d3ac912759.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_dns-0486a9d3ac912759.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs Cargo.toml

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
