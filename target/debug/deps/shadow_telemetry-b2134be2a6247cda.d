/root/repo/target/debug/deps/shadow_telemetry-b2134be2a6247cda.d: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

/root/repo/target/debug/deps/libshadow_telemetry-b2134be2a6247cda.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

/root/repo/target/debug/deps/libshadow_telemetry-b2134be2a6247cda.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/diff.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
