/root/repo/target/debug/deps/noise_mitigation-15ca292de1e7bd90.d: tests/noise_mitigation.rs

/root/repo/target/debug/deps/noise_mitigation-15ca292de1e7bd90: tests/noise_mitigation.rs

tests/noise_mitigation.rs:
