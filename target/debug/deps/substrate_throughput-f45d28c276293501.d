/root/repo/target/debug/deps/substrate_throughput-f45d28c276293501.d: crates/bench/benches/substrate_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_throughput-f45d28c276293501.rmeta: crates/bench/benches/substrate_throughput.rs Cargo.toml

crates/bench/benches/substrate_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
