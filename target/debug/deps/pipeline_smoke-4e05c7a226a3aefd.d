/root/repo/target/debug/deps/pipeline_smoke-4e05c7a226a3aefd.d: crates/core/tests/pipeline_smoke.rs

/root/repo/target/debug/deps/pipeline_smoke-4e05c7a226a3aefd: crates/core/tests/pipeline_smoke.rs

crates/core/tests/pipeline_smoke.rs:
