/root/repo/target/debug/deps/shadow_bench-671fdabfe6011e05.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-671fdabfe6011e05.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-671fdabfe6011e05.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
