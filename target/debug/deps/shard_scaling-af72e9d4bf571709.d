/root/repo/target/debug/deps/shard_scaling-af72e9d4bf571709.d: crates/bench/benches/shard_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libshard_scaling-af72e9d4bf571709.rmeta: crates/bench/benches/shard_scaling.rs Cargo.toml

crates/bench/benches/shard_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
