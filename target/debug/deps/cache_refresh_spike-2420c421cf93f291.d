/root/repo/target/debug/deps/cache_refresh_spike-2420c421cf93f291.d: crates/dns/tests/cache_refresh_spike.rs

/root/repo/target/debug/deps/cache_refresh_spike-2420c421cf93f291: crates/dns/tests/cache_refresh_spike.rs

crates/dns/tests/cache_refresh_spike.rs:
