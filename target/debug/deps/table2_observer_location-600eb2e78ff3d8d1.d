/root/repo/target/debug/deps/table2_observer_location-600eb2e78ff3d8d1.d: crates/bench/benches/table2_observer_location.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_observer_location-600eb2e78ff3d8d1.rmeta: crates/bench/benches/table2_observer_location.rs Cargo.toml

crates/bench/benches/table2_observer_location.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
