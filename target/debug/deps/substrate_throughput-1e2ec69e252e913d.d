/root/repo/target/debug/deps/substrate_throughput-1e2ec69e252e913d.d: crates/bench/benches/substrate_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_throughput-1e2ec69e252e913d.rmeta: crates/bench/benches/substrate_throughput.rs Cargo.toml

crates/bench/benches/substrate_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
