/root/repo/target/debug/deps/table4_dns_catalog-7b45539601d23d72.d: crates/bench/benches/table4_dns_catalog.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_dns_catalog-7b45539601d23d72.rmeta: crates/bench/benches/table4_dns_catalog.rs Cargo.toml

crates/bench/benches/table4_dns_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
