/root/repo/target/debug/deps/table1_platform-221873e1b9c788ac.d: crates/bench/benches/table1_platform.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_platform-221873e1b9c788ac.rmeta: crates/bench/benches/table1_platform.rs Cargo.toml

crates/bench/benches/table1_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
