/root/repo/target/debug/deps/s51_reuse_counts-d5ec3f34821f94fe.d: crates/bench/benches/s51_reuse_counts.rs Cargo.toml

/root/repo/target/debug/deps/libs51_reuse_counts-d5ec3f34821f94fe.rmeta: crates/bench/benches/s51_reuse_counts.rs Cargo.toml

crates/bench/benches/s51_reuse_counts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
