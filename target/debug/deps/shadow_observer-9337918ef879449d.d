/root/repo/target/debug/deps/shadow_observer-9337918ef879449d.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_observer-9337918ef879449d.rmeta: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs Cargo.toml

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
