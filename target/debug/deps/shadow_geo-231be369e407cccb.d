/root/repo/target/debug/deps/shadow_geo-231be369e407cccb.d: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_geo-231be369e407cccb.rmeta: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/alloc.rs:
crates/geo/src/asn.rs:
crates/geo/src/country.rs:
crates/geo/src/db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
