/root/repo/target/debug/deps/traffic_shadowing-ca79da995c174238.d: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-ca79da995c174238.rlib: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-ca79da995c174238.rmeta: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
