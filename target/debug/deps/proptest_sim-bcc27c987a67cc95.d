/root/repo/target/debug/deps/proptest_sim-bcc27c987a67cc95.d: crates/netsim/tests/proptest_sim.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sim-bcc27c987a67cc95.rmeta: crates/netsim/tests/proptest_sim.rs Cargo.toml

crates/netsim/tests/proptest_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
