/root/repo/target/debug/deps/shadow_telemetry-0e28fd88805d16a4.d: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

/root/repo/target/debug/deps/shadow_telemetry-0e28fd88805d16a4: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/diff.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
