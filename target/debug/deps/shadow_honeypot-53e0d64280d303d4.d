/root/repo/target/debug/deps/shadow_honeypot-53e0d64280d303d4.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/shadow_honeypot-53e0d64280d303d4: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
