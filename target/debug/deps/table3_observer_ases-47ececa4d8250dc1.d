/root/repo/target/debug/deps/table3_observer_ases-47ececa4d8250dc1.d: crates/bench/benches/table3_observer_ases.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_observer_ases-47ececa4d8250dc1.rmeta: crates/bench/benches/table3_observer_ases.rs Cargo.toml

crates/bench/benches/table3_observer_ases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
