/root/repo/target/debug/deps/shadow_intel-df383856305e8421.d: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_intel-df383856305e8421.rmeta: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs Cargo.toml

crates/intel/src/lib.rs:
crates/intel/src/blocklist.rs:
crates/intel/src/payload.rs:
crates/intel/src/portscan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
