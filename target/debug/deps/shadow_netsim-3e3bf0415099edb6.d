/root/repo/target/debug/deps/shadow_netsim-3e3bf0415099edb6.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/debug/deps/libshadow_netsim-3e3bf0415099edb6.rlib: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/debug/deps/libshadow_netsim-3e3bf0415099edb6.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
