/root/repo/target/debug/deps/sharded_equivalence-22027da9a647e3dd.d: tests/sharded_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsharded_equivalence-22027da9a647e3dd.rmeta: tests/sharded_equivalence.rs Cargo.toml

tests/sharded_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
