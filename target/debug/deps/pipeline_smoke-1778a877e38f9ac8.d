/root/repo/target/debug/deps/pipeline_smoke-1778a877e38f9ac8.d: crates/core/tests/pipeline_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_smoke-1778a877e38f9ac8.rmeta: crates/core/tests/pipeline_smoke.rs Cargo.toml

crates/core/tests/pipeline_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
