/root/repo/target/debug/deps/shadow_intel-bacc087e418c0c75.d: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_intel-bacc087e418c0c75.rmeta: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs Cargo.toml

crates/intel/src/lib.rs:
crates/intel/src/blocklist.rs:
crates/intel/src/payload.rs:
crates/intel/src/portscan.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
