/root/repo/target/debug/deps/metrics_merge-fa036a5c427ed60c.d: tests/metrics_merge.rs

/root/repo/target/debug/deps/metrics_merge-fa036a5c427ed60c: tests/metrics_merge.rs

tests/metrics_merge.rs:
