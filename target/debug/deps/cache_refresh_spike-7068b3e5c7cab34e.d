/root/repo/target/debug/deps/cache_refresh_spike-7068b3e5c7cab34e.d: crates/dns/tests/cache_refresh_spike.rs Cargo.toml

/root/repo/target/debug/deps/libcache_refresh_spike-7068b3e5c7cab34e.rmeta: crates/dns/tests/cache_refresh_spike.rs Cargo.toml

crates/dns/tests/cache_refresh_spike.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
