/root/repo/target/debug/deps/shadow_dns-fe4036f2b763e21c.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/shadow_dns-fe4036f2b763e21c: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
