/root/repo/target/debug/deps/shadow_vantage-56b95452e8a3cb47.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_vantage-56b95452e8a3cb47.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs Cargo.toml

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
