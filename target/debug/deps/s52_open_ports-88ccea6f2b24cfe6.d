/root/repo/target/debug/deps/s52_open_ports-88ccea6f2b24cfe6.d: crates/bench/benches/s52_open_ports.rs Cargo.toml

/root/repo/target/debug/deps/libs52_open_ports-88ccea6f2b24cfe6.rmeta: crates/bench/benches/s52_open_ports.rs Cargo.toml

crates/bench/benches/s52_open_ports.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
