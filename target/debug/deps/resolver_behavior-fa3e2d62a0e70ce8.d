/root/repo/target/debug/deps/resolver_behavior-fa3e2d62a0e70ce8.d: crates/dns/tests/resolver_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libresolver_behavior-fa3e2d62a0e70ce8.rmeta: crates/dns/tests/resolver_behavior.rs Cargo.toml

crates/dns/tests/resolver_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
