/root/repo/target/debug/deps/fig4_dns_temporal_cdf-d7d76537169eb838.d: crates/bench/benches/fig4_dns_temporal_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_dns_temporal_cdf-d7d76537169eb838.rmeta: crates/bench/benches/fig4_dns_temporal_cdf.rs Cargo.toml

crates/bench/benches/fig4_dns_temporal_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
