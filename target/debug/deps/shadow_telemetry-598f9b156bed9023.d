/root/repo/target/debug/deps/shadow_telemetry-598f9b156bed9023.d: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_telemetry-598f9b156bed9023.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/diff.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
