/root/repo/target/debug/deps/encryption_ablation-c648c6c4e25fc800.d: tests/encryption_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libencryption_ablation-c648c6c4e25fc800.rmeta: tests/encryption_ablation.rs Cargo.toml

tests/encryption_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
