/root/repo/target/debug/deps/fig3_path_ratios-1eeeac6460b01bc7.d: crates/bench/benches/fig3_path_ratios.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_path_ratios-1eeeac6460b01bc7.rmeta: crates/bench/benches/fig3_path_ratios.rs Cargo.toml

crates/bench/benches/fig3_path_ratios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
