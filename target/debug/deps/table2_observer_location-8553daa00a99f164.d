/root/repo/target/debug/deps/table2_observer_location-8553daa00a99f164.d: crates/bench/benches/table2_observer_location.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_observer_location-8553daa00a99f164.rmeta: crates/bench/benches/table2_observer_location.rs Cargo.toml

crates/bench/benches/table2_observer_location.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
