/root/repo/target/debug/deps/pipeline_throughput-f164b22b4aee7f6e.d: crates/bench/benches/pipeline_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_throughput-f164b22b4aee7f6e.rmeta: crates/bench/benches/pipeline_throughput.rs Cargo.toml

crates/bench/benches/pipeline_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
