/root/repo/target/debug/deps/sharded_equivalence-aeffb6ec9c3e019c.d: tests/sharded_equivalence.rs

/root/repo/target/debug/deps/sharded_equivalence-aeffb6ec9c3e019c: tests/sharded_equivalence.rs

tests/sharded_equivalence.rs:
