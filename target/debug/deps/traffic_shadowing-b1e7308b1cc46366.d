/root/repo/target/debug/deps/traffic_shadowing-b1e7308b1cc46366.d: src/lib.rs src/study.rs

/root/repo/target/debug/deps/traffic_shadowing-b1e7308b1cc46366: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
