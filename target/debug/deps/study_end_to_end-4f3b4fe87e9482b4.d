/root/repo/target/debug/deps/study_end_to_end-4f3b4fe87e9482b4.d: tests/study_end_to_end.rs

/root/repo/target/debug/deps/study_end_to_end-4f3b4fe87e9482b4: tests/study_end_to_end.rs

tests/study_end_to_end.rs:
