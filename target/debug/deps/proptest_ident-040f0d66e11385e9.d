/root/repo/target/debug/deps/proptest_ident-040f0d66e11385e9.d: crates/core/tests/proptest_ident.rs

/root/repo/target/debug/deps/proptest_ident-040f0d66e11385e9: crates/core/tests/proptest_ident.rs

crates/core/tests/proptest_ident.rs:
