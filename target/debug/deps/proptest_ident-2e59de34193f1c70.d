/root/repo/target/debug/deps/proptest_ident-2e59de34193f1c70.d: crates/core/tests/proptest_ident.rs

/root/repo/target/debug/deps/proptest_ident-2e59de34193f1c70: crates/core/tests/proptest_ident.rs

crates/core/tests/proptest_ident.rs:
