/root/repo/target/debug/deps/encryption_ablation-8b6071499f8f2e49.d: tests/encryption_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libencryption_ablation-8b6071499f8f2e49.rmeta: tests/encryption_ablation.rs Cargo.toml

tests/encryption_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
