/root/repo/target/debug/deps/noise_mitigation-8aa884fff673f3d5.d: tests/noise_mitigation.rs

/root/repo/target/debug/deps/noise_mitigation-8aa884fff673f3d5: tests/noise_mitigation.rs

tests/noise_mitigation.rs:
