/root/repo/target/debug/deps/determinism-566a13f0c367598e.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-566a13f0c367598e: tests/determinism.rs

tests/determinism.rs:
