/root/repo/target/debug/deps/shadow_dns-89d1ead38348dee6.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_dns-89d1ead38348dee6.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs Cargo.toml

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
