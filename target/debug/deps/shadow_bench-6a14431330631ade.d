/root/repo/target/debug/deps/shadow_bench-6a14431330631ade.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shadow_bench-6a14431330631ade: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
