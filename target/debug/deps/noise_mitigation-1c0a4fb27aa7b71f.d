/root/repo/target/debug/deps/noise_mitigation-1c0a4fb27aa7b71f.d: tests/noise_mitigation.rs

/root/repo/target/debug/deps/noise_mitigation-1c0a4fb27aa7b71f: tests/noise_mitigation.rs

tests/noise_mitigation.rs:
