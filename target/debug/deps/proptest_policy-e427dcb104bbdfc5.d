/root/repo/target/debug/deps/proptest_policy-e427dcb104bbdfc5.d: crates/observer/tests/proptest_policy.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_policy-e427dcb104bbdfc5.rmeta: crates/observer/tests/proptest_policy.rs Cargo.toml

crates/observer/tests/proptest_policy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
