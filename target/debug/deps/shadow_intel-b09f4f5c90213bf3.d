/root/repo/target/debug/deps/shadow_intel-b09f4f5c90213bf3.d: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/debug/deps/shadow_intel-b09f4f5c90213bf3: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

crates/intel/src/lib.rs:
crates/intel/src/blocklist.rs:
crates/intel/src/payload.rs:
crates/intel/src/portscan.rs:
