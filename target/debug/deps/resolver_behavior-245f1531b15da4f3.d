/root/repo/target/debug/deps/resolver_behavior-245f1531b15da4f3.d: crates/dns/tests/resolver_behavior.rs

/root/repo/target/debug/deps/resolver_behavior-245f1531b15da4f3: crates/dns/tests/resolver_behavior.rs

crates/dns/tests/resolver_behavior.rs:
