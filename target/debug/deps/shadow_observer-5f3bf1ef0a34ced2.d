/root/repo/target/debug/deps/shadow_observer-5f3bf1ef0a34ced2.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_observer-5f3bf1ef0a34ced2.rmeta: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs Cargo.toml

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
