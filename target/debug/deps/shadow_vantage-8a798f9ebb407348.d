/root/repo/target/debug/deps/shadow_vantage-8a798f9ebb407348.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/shadow_vantage-8a798f9ebb407348: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
