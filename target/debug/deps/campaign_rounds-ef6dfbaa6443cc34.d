/root/repo/target/debug/deps/campaign_rounds-ef6dfbaa6443cc34.d: tests/campaign_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_rounds-ef6dfbaa6443cc34.rmeta: tests/campaign_rounds.rs Cargo.toml

tests/campaign_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
