/root/repo/target/debug/deps/shadow_vantage-a1eb1c1498ff9723.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_vantage-a1eb1c1498ff9723.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs Cargo.toml

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
