/root/repo/target/debug/deps/proptest_sim-d751e2be3516362d.d: crates/netsim/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-d751e2be3516362d: crates/netsim/tests/proptest_sim.rs

crates/netsim/tests/proptest_sim.rs:
