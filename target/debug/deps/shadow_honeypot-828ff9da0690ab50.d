/root/repo/target/debug/deps/shadow_honeypot-828ff9da0690ab50.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_honeypot-828ff9da0690ab50.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs Cargo.toml

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
