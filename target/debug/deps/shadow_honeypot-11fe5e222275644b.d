/root/repo/target/debug/deps/shadow_honeypot-11fe5e222275644b.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-11fe5e222275644b.rlib: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-11fe5e222275644b.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
