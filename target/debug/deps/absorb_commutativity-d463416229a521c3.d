/root/repo/target/debug/deps/absorb_commutativity-d463416229a521c3.d: tests/absorb_commutativity.rs

/root/repo/target/debug/deps/absorb_commutativity-d463416229a521c3: tests/absorb_commutativity.rs

tests/absorb_commutativity.rs:
