/root/repo/target/debug/deps/pipeline_smoke-fc959356c879c9fb.d: crates/core/tests/pipeline_smoke.rs

/root/repo/target/debug/deps/pipeline_smoke-fc959356c879c9fb: crates/core/tests/pipeline_smoke.rs

crates/core/tests/pipeline_smoke.rs:
