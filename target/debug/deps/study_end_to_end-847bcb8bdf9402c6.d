/root/repo/target/debug/deps/study_end_to_end-847bcb8bdf9402c6.d: tests/study_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_end_to_end-847bcb8bdf9402c6.rmeta: tests/study_end_to_end.rs Cargo.toml

tests/study_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
