/root/repo/target/debug/deps/shard_scaling-50b403d2b92a8428.d: crates/bench/benches/shard_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libshard_scaling-50b403d2b92a8428.rmeta: crates/bench/benches/shard_scaling.rs Cargo.toml

crates/bench/benches/shard_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
