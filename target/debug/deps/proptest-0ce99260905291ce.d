/root/repo/target/debug/deps/proptest-0ce99260905291ce.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0ce99260905291ce.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
