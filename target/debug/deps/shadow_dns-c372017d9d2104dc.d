/root/repo/target/debug/deps/shadow_dns-c372017d9d2104dc.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/shadow_dns-c372017d9d2104dc: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
