/root/repo/target/debug/deps/proptest_roundtrip-e0017e91c71e31ec.d: crates/packet/tests/proptest_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_roundtrip-e0017e91c71e31ec.rmeta: crates/packet/tests/proptest_roundtrip.rs Cargo.toml

crates/packet/tests/proptest_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
