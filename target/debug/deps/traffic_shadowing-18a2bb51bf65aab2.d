/root/repo/target/debug/deps/traffic_shadowing-18a2bb51bf65aab2.d: src/lib.rs src/study.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic_shadowing-18a2bb51bf65aab2.rmeta: src/lib.rs src/study.rs Cargo.toml

src/lib.rs:
src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
