/root/repo/target/debug/deps/vp_flows-fbc39ce674ed945f.d: crates/vantage/tests/vp_flows.rs

/root/repo/target/debug/deps/vp_flows-fbc39ce674ed945f: crates/vantage/tests/vp_flows.rs

crates/vantage/tests/vp_flows.rs:
