/root/repo/target/debug/deps/campaign_rounds-b32cc28f832ce7e5.d: tests/campaign_rounds.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_rounds-b32cc28f832ce7e5.rmeta: tests/campaign_rounds.rs Cargo.toml

tests/campaign_rounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
