/root/repo/target/debug/deps/s5_probing_incentives-c457a6a916aa6ada.d: crates/bench/benches/s5_probing_incentives.rs Cargo.toml

/root/repo/target/debug/deps/libs5_probing_incentives-c457a6a916aa6ada.rmeta: crates/bench/benches/s5_probing_incentives.rs Cargo.toml

crates/bench/benches/s5_probing_incentives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
