/root/repo/target/debug/deps/table4_dns_catalog-7ce465978a41042f.d: crates/bench/benches/table4_dns_catalog.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_dns_catalog-7ce465978a41042f.rmeta: crates/bench/benches/table4_dns_catalog.rs Cargo.toml

crates/bench/benches/table4_dns_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
