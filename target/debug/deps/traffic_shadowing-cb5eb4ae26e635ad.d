/root/repo/target/debug/deps/traffic_shadowing-cb5eb4ae26e635ad.d: src/lib.rs src/study.rs

/root/repo/target/debug/deps/traffic_shadowing-cb5eb4ae26e635ad: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
