/root/repo/target/debug/deps/world_consistency-cf5923adf379ac1c.d: crates/core/tests/world_consistency.rs

/root/repo/target/debug/deps/world_consistency-cf5923adf379ac1c: crates/core/tests/world_consistency.rs

crates/core/tests/world_consistency.rs:
