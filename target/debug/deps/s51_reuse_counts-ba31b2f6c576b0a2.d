/root/repo/target/debug/deps/s51_reuse_counts-ba31b2f6c576b0a2.d: crates/bench/benches/s51_reuse_counts.rs Cargo.toml

/root/repo/target/debug/deps/libs51_reuse_counts-ba31b2f6c576b0a2.rmeta: crates/bench/benches/s51_reuse_counts.rs Cargo.toml

crates/bench/benches/s51_reuse_counts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
