/root/repo/target/debug/deps/table1_platform-de3365d550810017.d: crates/bench/benches/table1_platform.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_platform-de3365d550810017.rmeta: crates/bench/benches/table1_platform.rs Cargo.toml

crates/bench/benches/table1_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
