/root/repo/target/debug/deps/noise_mitigation-fc3b9886af5416c0.d: tests/noise_mitigation.rs Cargo.toml

/root/repo/target/debug/deps/libnoise_mitigation-fc3b9886af5416c0.rmeta: tests/noise_mitigation.rs Cargo.toml

tests/noise_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
