/root/repo/target/debug/deps/traffic_shadowing-92d1bb906902b07f.d: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-92d1bb906902b07f.rlib: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-92d1bb906902b07f.rmeta: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
