/root/repo/target/debug/deps/shadow_core-159ff59e4f771568.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/debug/deps/libshadow_core-159ff59e4f771568.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/debug/deps/libshadow_core-159ff59e4f771568.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/correlate.rs:
crates/core/src/decoy.rs:
crates/core/src/executor.rs:
crates/core/src/ident.rs:
crates/core/src/noise.rs:
crates/core/src/phase2.rs:
crates/core/src/world/mod.rs:
crates/core/src/world/build.rs:
crates/core/src/world/spec.rs:
