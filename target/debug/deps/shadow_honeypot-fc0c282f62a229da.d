/root/repo/target/debug/deps/shadow_honeypot-fc0c282f62a229da.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-fc0c282f62a229da.rlib: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-fc0c282f62a229da.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
