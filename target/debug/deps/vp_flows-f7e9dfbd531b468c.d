/root/repo/target/debug/deps/vp_flows-f7e9dfbd531b468c.d: crates/vantage/tests/vp_flows.rs Cargo.toml

/root/repo/target/debug/deps/libvp_flows-f7e9dfbd531b468c.rmeta: crates/vantage/tests/vp_flows.rs Cargo.toml

crates/vantage/tests/vp_flows.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
