/root/repo/target/debug/deps/shadow_core-6845d3b48edd87a7.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/debug/deps/libshadow_core-6845d3b48edd87a7.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/debug/deps/libshadow_core-6845d3b48edd87a7.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/correlate.rs:
crates/core/src/decoy.rs:
crates/core/src/executor.rs:
crates/core/src/ident.rs:
crates/core/src/noise.rs:
crates/core/src/phase2.rs:
crates/core/src/world/mod.rs:
crates/core/src/world/build.rs:
crates/core/src/world/spec.rs:
