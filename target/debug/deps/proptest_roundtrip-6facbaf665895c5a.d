/root/repo/target/debug/deps/proptest_roundtrip-6facbaf665895c5a.d: crates/packet/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-6facbaf665895c5a: crates/packet/tests/proptest_roundtrip.rs

crates/packet/tests/proptest_roundtrip.rs:
