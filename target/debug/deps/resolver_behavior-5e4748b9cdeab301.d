/root/repo/target/debug/deps/resolver_behavior-5e4748b9cdeab301.d: crates/dns/tests/resolver_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libresolver_behavior-5e4748b9cdeab301.rmeta: crates/dns/tests/resolver_behavior.rs Cargo.toml

crates/dns/tests/resolver_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
