/root/repo/target/debug/deps/shadow_geo-23751492c4a360db.d: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/debug/deps/shadow_geo-23751492c4a360db: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

crates/geo/src/lib.rs:
crates/geo/src/alloc.rs:
crates/geo/src/asn.rs:
crates/geo/src/country.rs:
crates/geo/src/db.rs:
