/root/repo/target/debug/deps/pipeline_smoke-b60e0cbbf7db20f0.d: crates/core/tests/pipeline_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_smoke-b60e0cbbf7db20f0.rmeta: crates/core/tests/pipeline_smoke.rs Cargo.toml

crates/core/tests/pipeline_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
