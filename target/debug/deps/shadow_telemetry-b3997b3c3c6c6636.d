/root/repo/target/debug/deps/shadow_telemetry-b3997b3c3c6c6636.d: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

/root/repo/target/debug/deps/libshadow_telemetry-b3997b3c3c6c6636.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

/root/repo/target/debug/deps/libshadow_telemetry-b3997b3c3c6c6636.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/diff.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
