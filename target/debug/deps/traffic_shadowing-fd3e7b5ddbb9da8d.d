/root/repo/target/debug/deps/traffic_shadowing-fd3e7b5ddbb9da8d.d: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-fd3e7b5ddbb9da8d.rlib: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-fd3e7b5ddbb9da8d.rmeta: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
