/root/repo/target/debug/deps/shadow_vantage-3723b53d11402100.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/libshadow_vantage-3723b53d11402100.rlib: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/libshadow_vantage-3723b53d11402100.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
