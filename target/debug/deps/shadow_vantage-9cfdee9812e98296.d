/root/repo/target/debug/deps/shadow_vantage-9cfdee9812e98296.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/shadow_vantage-9cfdee9812e98296: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
