/root/repo/target/debug/deps/shadow_bench-f2d72ad2cde71b78.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shadow_bench-f2d72ad2cde71b78: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
