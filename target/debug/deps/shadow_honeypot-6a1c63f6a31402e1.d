/root/repo/target/debug/deps/shadow_honeypot-6a1c63f6a31402e1.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-6a1c63f6a31402e1.rlib: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-6a1c63f6a31402e1.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
