/root/repo/target/debug/deps/journal_determinism-94358ea66acae8f0.d: tests/journal_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libjournal_determinism-94358ea66acae8f0.rmeta: tests/journal_determinism.rs Cargo.toml

tests/journal_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
