/root/repo/target/debug/deps/pipeline_smoke-2f3f074f674318ed.d: crates/core/tests/pipeline_smoke.rs

/root/repo/target/debug/deps/pipeline_smoke-2f3f074f674318ed: crates/core/tests/pipeline_smoke.rs

crates/core/tests/pipeline_smoke.rs:
