/root/repo/target/debug/deps/s5_probing_incentives-8e7cc7f1874610c3.d: crates/bench/benches/s5_probing_incentives.rs Cargo.toml

/root/repo/target/debug/deps/libs5_probing_incentives-8e7cc7f1874610c3.rmeta: crates/bench/benches/s5_probing_incentives.rs Cargo.toml

crates/bench/benches/s5_probing_incentives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
