/root/repo/target/debug/deps/cache_refresh_spike-9cc0857b89f2ef2a.d: crates/dns/tests/cache_refresh_spike.rs Cargo.toml

/root/repo/target/debug/deps/libcache_refresh_spike-9cc0857b89f2ef2a.rmeta: crates/dns/tests/cache_refresh_spike.rs Cargo.toml

crates/dns/tests/cache_refresh_spike.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
