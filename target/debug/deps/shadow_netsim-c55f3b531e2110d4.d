/root/repo/target/debug/deps/shadow_netsim-c55f3b531e2110d4.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/debug/deps/shadow_netsim-c55f3b531e2110d4: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
