/root/repo/target/debug/deps/shadow_geo-f8280c904f6c33c3.d: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/debug/deps/libshadow_geo-f8280c904f6c33c3.rlib: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/debug/deps/libshadow_geo-f8280c904f6c33c3.rmeta: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

crates/geo/src/lib.rs:
crates/geo/src/alloc.rs:
crates/geo/src/asn.rs:
crates/geo/src/country.rs:
crates/geo/src/db.rs:
