/root/repo/target/debug/deps/determinism-626c1427a4439c14.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-626c1427a4439c14.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
