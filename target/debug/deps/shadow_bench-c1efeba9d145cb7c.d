/root/repo/target/debug/deps/shadow_bench-c1efeba9d145cb7c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-c1efeba9d145cb7c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-c1efeba9d145cb7c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
