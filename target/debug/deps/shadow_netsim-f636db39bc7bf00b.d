/root/repo/target/debug/deps/shadow_netsim-f636db39bc7bf00b.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/debug/deps/shadow_netsim-f636db39bc7bf00b: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
