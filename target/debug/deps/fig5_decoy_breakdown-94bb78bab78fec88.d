/root/repo/target/debug/deps/fig5_decoy_breakdown-94bb78bab78fec88.d: crates/bench/benches/fig5_decoy_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_decoy_breakdown-94bb78bab78fec88.rmeta: crates/bench/benches/fig5_decoy_breakdown.rs Cargo.toml

crates/bench/benches/fig5_decoy_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
