/root/repo/target/debug/deps/determinism-47fb99a15fa77816.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-47fb99a15fa77816: tests/determinism.rs

tests/determinism.rs:
