/root/repo/target/debug/deps/serde-b645049bdafbd7ac.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b645049bdafbd7ac.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b645049bdafbd7ac.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
