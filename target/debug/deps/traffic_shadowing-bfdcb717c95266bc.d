/root/repo/target/debug/deps/traffic_shadowing-bfdcb717c95266bc.d: src/lib.rs src/study.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic_shadowing-bfdcb717c95266bc.rmeta: src/lib.rs src/study.rs Cargo.toml

src/lib.rs:
src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
