/root/repo/target/debug/deps/campaign_rounds-7a1dc045d5d315d2.d: tests/campaign_rounds.rs

/root/repo/target/debug/deps/campaign_rounds-7a1dc045d5d315d2: tests/campaign_rounds.rs

tests/campaign_rounds.rs:
