/root/repo/target/debug/deps/shadow_bench-c84f4cb4de341f0c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-c84f4cb4de341f0c.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-c84f4cb4de341f0c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
