/root/repo/target/debug/deps/ablation_encryption-f9e5c62018a386a3.d: crates/bench/benches/ablation_encryption.rs Cargo.toml

/root/repo/target/debug/deps/libablation_encryption-f9e5c62018a386a3.rmeta: crates/bench/benches/ablation_encryption.rs Cargo.toml

crates/bench/benches/ablation_encryption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
