/root/repo/target/debug/deps/shadow_observer-1b3ca6e355799953.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/debug/deps/libshadow_observer-1b3ca6e355799953.rlib: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/debug/deps/libshadow_observer-1b3ca6e355799953.rmeta: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
