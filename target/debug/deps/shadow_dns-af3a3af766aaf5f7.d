/root/repo/target/debug/deps/shadow_dns-af3a3af766aaf5f7.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-af3a3af766aaf5f7.rlib: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-af3a3af766aaf5f7.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
