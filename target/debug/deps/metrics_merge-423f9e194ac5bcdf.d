/root/repo/target/debug/deps/metrics_merge-423f9e194ac5bcdf.d: tests/metrics_merge.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics_merge-423f9e194ac5bcdf.rmeta: tests/metrics_merge.rs Cargo.toml

tests/metrics_merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
