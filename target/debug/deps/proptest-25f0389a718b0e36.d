/root/repo/target/debug/deps/proptest-25f0389a718b0e36.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-25f0389a718b0e36.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
