/root/repo/target/debug/deps/shadow_analysis-4712caf444059439.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

/root/repo/target/debug/deps/libshadow_analysis-4712caf444059439.rlib: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

/root/repo/target/debug/deps/libshadow_analysis-4712caf444059439.rmeta: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/cases.rs:
crates/analysis/src/combos.rs:
crates/analysis/src/export.rs:
crates/analysis/src/landscape.rs:
crates/analysis/src/location.rs:
crates/analysis/src/origins.rs:
crates/analysis/src/probing.rs:
crates/analysis/src/report.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/temporal.rs:
