/root/repo/target/debug/deps/shadow_bench-c35037918bac348f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-c35037918bac348f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libshadow_bench-c35037918bac348f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
