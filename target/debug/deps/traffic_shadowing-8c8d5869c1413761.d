/root/repo/target/debug/deps/traffic_shadowing-8c8d5869c1413761.d: src/lib.rs src/study.rs Cargo.toml

/root/repo/target/debug/deps/libtraffic_shadowing-8c8d5869c1413761.rmeta: src/lib.rs src/study.rs Cargo.toml

src/lib.rs:
src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
