/root/repo/target/debug/deps/shadow_bench-388e3a2bb4468754.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_bench-388e3a2bb4468754.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
