/root/repo/target/debug/deps/encryption_ablation-699338b0d6d3ad54.d: tests/encryption_ablation.rs

/root/repo/target/debug/deps/encryption_ablation-699338b0d6d3ad54: tests/encryption_ablation.rs

tests/encryption_ablation.rs:
