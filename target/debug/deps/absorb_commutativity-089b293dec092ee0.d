/root/repo/target/debug/deps/absorb_commutativity-089b293dec092ee0.d: tests/absorb_commutativity.rs

/root/repo/target/debug/deps/absorb_commutativity-089b293dec092ee0: tests/absorb_commutativity.rs

tests/absorb_commutativity.rs:
