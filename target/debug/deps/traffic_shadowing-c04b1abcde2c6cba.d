/root/repo/target/debug/deps/traffic_shadowing-c04b1abcde2c6cba.d: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-c04b1abcde2c6cba.rlib: src/lib.rs src/study.rs

/root/repo/target/debug/deps/libtraffic_shadowing-c04b1abcde2c6cba.rmeta: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
