/root/repo/target/debug/deps/shadow_observer-e3fd9f6f73f2ba49.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/debug/deps/shadow_observer-e3fd9f6f73f2ba49: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
