/root/repo/target/debug/deps/encryption_ablation-b87dfa97cfd5b17f.d: tests/encryption_ablation.rs

/root/repo/target/debug/deps/encryption_ablation-b87dfa97cfd5b17f: tests/encryption_ablation.rs

tests/encryption_ablation.rs:
