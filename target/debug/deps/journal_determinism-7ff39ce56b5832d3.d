/root/repo/target/debug/deps/journal_determinism-7ff39ce56b5832d3.d: tests/journal_determinism.rs

/root/repo/target/debug/deps/journal_determinism-7ff39ce56b5832d3: tests/journal_determinism.rs

tests/journal_determinism.rs:
