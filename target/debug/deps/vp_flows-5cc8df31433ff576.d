/root/repo/target/debug/deps/vp_flows-5cc8df31433ff576.d: crates/vantage/tests/vp_flows.rs

/root/repo/target/debug/deps/vp_flows-5cc8df31433ff576: crates/vantage/tests/vp_flows.rs

crates/vantage/tests/vp_flows.rs:
