/root/repo/target/debug/deps/study_end_to_end-86ccd1acce4966e6.d: tests/study_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libstudy_end_to_end-86ccd1acce4966e6.rmeta: tests/study_end_to_end.rs Cargo.toml

tests/study_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
