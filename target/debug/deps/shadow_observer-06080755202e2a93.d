/root/repo/target/debug/deps/shadow_observer-06080755202e2a93.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/debug/deps/libshadow_observer-06080755202e2a93.rlib: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/debug/deps/libshadow_observer-06080755202e2a93.rmeta: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
