/root/repo/target/debug/deps/s52_open_ports-288676f321da8bd1.d: crates/bench/benches/s52_open_ports.rs Cargo.toml

/root/repo/target/debug/deps/libs52_open_ports-288676f321da8bd1.rmeta: crates/bench/benches/s52_open_ports.rs Cargo.toml

crates/bench/benches/s52_open_ports.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
