/root/repo/target/debug/deps/cache_refresh_spike-a256372395612c20.d: crates/dns/tests/cache_refresh_spike.rs

/root/repo/target/debug/deps/cache_refresh_spike-a256372395612c20: crates/dns/tests/cache_refresh_spike.rs

crates/dns/tests/cache_refresh_spike.rs:
