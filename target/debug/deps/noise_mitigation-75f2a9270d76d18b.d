/root/repo/target/debug/deps/noise_mitigation-75f2a9270d76d18b.d: tests/noise_mitigation.rs Cargo.toml

/root/repo/target/debug/deps/libnoise_mitigation-75f2a9270d76d18b.rmeta: tests/noise_mitigation.rs Cargo.toml

tests/noise_mitigation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
