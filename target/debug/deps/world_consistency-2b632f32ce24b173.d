/root/repo/target/debug/deps/world_consistency-2b632f32ce24b173.d: crates/core/tests/world_consistency.rs

/root/repo/target/debug/deps/world_consistency-2b632f32ce24b173: crates/core/tests/world_consistency.rs

crates/core/tests/world_consistency.rs:
