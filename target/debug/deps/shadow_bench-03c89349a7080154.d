/root/repo/target/debug/deps/shadow_bench-03c89349a7080154.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_bench-03c89349a7080154.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
