/root/repo/target/debug/deps/shadow_observer-218dc176249dea90.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/debug/deps/shadow_observer-218dc176249dea90: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
