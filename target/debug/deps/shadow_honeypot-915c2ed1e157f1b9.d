/root/repo/target/debug/deps/shadow_honeypot-915c2ed1e157f1b9.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_honeypot-915c2ed1e157f1b9.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs Cargo.toml

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
