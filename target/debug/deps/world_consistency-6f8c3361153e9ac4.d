/root/repo/target/debug/deps/world_consistency-6f8c3361153e9ac4.d: crates/core/tests/world_consistency.rs

/root/repo/target/debug/deps/world_consistency-6f8c3361153e9ac4: crates/core/tests/world_consistency.rs

crates/core/tests/world_consistency.rs:
