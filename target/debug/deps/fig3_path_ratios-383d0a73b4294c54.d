/root/repo/target/debug/deps/fig3_path_ratios-383d0a73b4294c54.d: crates/bench/benches/fig3_path_ratios.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_path_ratios-383d0a73b4294c54.rmeta: crates/bench/benches/fig3_path_ratios.rs Cargo.toml

crates/bench/benches/fig3_path_ratios.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
