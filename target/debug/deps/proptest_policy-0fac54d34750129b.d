/root/repo/target/debug/deps/proptest_policy-0fac54d34750129b.d: crates/observer/tests/proptest_policy.rs

/root/repo/target/debug/deps/proptest_policy-0fac54d34750129b: crates/observer/tests/proptest_policy.rs

crates/observer/tests/proptest_policy.rs:
