/root/repo/target/debug/deps/shadow_vantage-114512150c0bf571.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/libshadow_vantage-114512150c0bf571.rlib: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/libshadow_vantage-114512150c0bf571.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
