/root/repo/target/debug/deps/shadow_netsim-45cd942aa40417b7.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_netsim-45cd942aa40417b7.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
