/root/repo/target/debug/deps/proptest_sim-56fa4c412a7f5b02.d: crates/netsim/tests/proptest_sim.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_sim-56fa4c412a7f5b02.rmeta: crates/netsim/tests/proptest_sim.rs Cargo.toml

crates/netsim/tests/proptest_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
