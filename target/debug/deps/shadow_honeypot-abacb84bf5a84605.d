/root/repo/target/debug/deps/shadow_honeypot-abacb84bf5a84605.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-abacb84bf5a84605.rlib: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/libshadow_honeypot-abacb84bf5a84605.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
