/root/repo/target/debug/deps/resolver_behavior-c1b3ee17c7b638f2.d: crates/dns/tests/resolver_behavior.rs

/root/repo/target/debug/deps/resolver_behavior-c1b3ee17c7b638f2: crates/dns/tests/resolver_behavior.rs

crates/dns/tests/resolver_behavior.rs:
