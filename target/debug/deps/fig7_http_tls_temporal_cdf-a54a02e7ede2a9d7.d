/root/repo/target/debug/deps/fig7_http_tls_temporal_cdf-a54a02e7ede2a9d7.d: crates/bench/benches/fig7_http_tls_temporal_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_http_tls_temporal_cdf-a54a02e7ede2a9d7.rmeta: crates/bench/benches/fig7_http_tls_temporal_cdf.rs Cargo.toml

crates/bench/benches/fig7_http_tls_temporal_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
