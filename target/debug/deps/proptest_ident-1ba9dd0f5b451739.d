/root/repo/target/debug/deps/proptest_ident-1ba9dd0f5b451739.d: crates/core/tests/proptest_ident.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_ident-1ba9dd0f5b451739.rmeta: crates/core/tests/proptest_ident.rs Cargo.toml

crates/core/tests/proptest_ident.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
