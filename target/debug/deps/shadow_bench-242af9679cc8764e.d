/root/repo/target/debug/deps/shadow_bench-242af9679cc8764e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/shadow_bench-242af9679cc8764e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
