/root/repo/target/debug/deps/sharded_equivalence-ffa637d9bcf3f9ae.d: tests/sharded_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsharded_equivalence-ffa637d9bcf3f9ae.rmeta: tests/sharded_equivalence.rs Cargo.toml

tests/sharded_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
