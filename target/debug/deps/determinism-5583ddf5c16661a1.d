/root/repo/target/debug/deps/determinism-5583ddf5c16661a1.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-5583ddf5c16661a1: tests/determinism.rs

tests/determinism.rs:
