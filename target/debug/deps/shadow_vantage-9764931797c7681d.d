/root/repo/target/debug/deps/shadow_vantage-9764931797c7681d.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/libshadow_vantage-9764931797c7681d.rlib: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/debug/deps/libshadow_vantage-9764931797c7681d.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
