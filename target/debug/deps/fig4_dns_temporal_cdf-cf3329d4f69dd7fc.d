/root/repo/target/debug/deps/fig4_dns_temporal_cdf-cf3329d4f69dd7fc.d: crates/bench/benches/fig4_dns_temporal_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_dns_temporal_cdf-cf3329d4f69dd7fc.rmeta: crates/bench/benches/fig4_dns_temporal_cdf.rs Cargo.toml

crates/bench/benches/fig4_dns_temporal_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
