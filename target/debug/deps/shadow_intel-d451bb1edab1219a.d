/root/repo/target/debug/deps/shadow_intel-d451bb1edab1219a.d: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/debug/deps/libshadow_intel-d451bb1edab1219a.rlib: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/debug/deps/libshadow_intel-d451bb1edab1219a.rmeta: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

crates/intel/src/lib.rs:
crates/intel/src/blocklist.rs:
crates/intel/src/payload.rs:
crates/intel/src/portscan.rs:
