/root/repo/target/debug/deps/serde_json-d1134f0e3e4b3afd.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d1134f0e3e4b3afd.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-d1134f0e3e4b3afd.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
