/root/repo/target/debug/deps/fig6_origin_ases-d1c8e3f4fcada1b6.d: crates/bench/benches/fig6_origin_ases.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_origin_ases-d1c8e3f4fcada1b6.rmeta: crates/bench/benches/fig6_origin_ases.rs Cargo.toml

crates/bench/benches/fig6_origin_ases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
