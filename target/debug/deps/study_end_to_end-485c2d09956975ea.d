/root/repo/target/debug/deps/study_end_to_end-485c2d09956975ea.d: tests/study_end_to_end.rs

/root/repo/target/debug/deps/study_end_to_end-485c2d09956975ea: tests/study_end_to_end.rs

tests/study_end_to_end.rs:
