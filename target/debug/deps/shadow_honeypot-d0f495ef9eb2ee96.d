/root/repo/target/debug/deps/shadow_honeypot-d0f495ef9eb2ee96.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/debug/deps/shadow_honeypot-d0f495ef9eb2ee96: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
