/root/repo/target/debug/deps/shadow_netsim-13818ed9ef9fafbb.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_netsim-13818ed9ef9fafbb.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
