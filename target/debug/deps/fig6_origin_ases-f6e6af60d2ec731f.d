/root/repo/target/debug/deps/fig6_origin_ases-f6e6af60d2ec731f.d: crates/bench/benches/fig6_origin_ases.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_origin_ases-f6e6af60d2ec731f.rmeta: crates/bench/benches/fig6_origin_ases.rs Cargo.toml

crates/bench/benches/fig6_origin_ases.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
