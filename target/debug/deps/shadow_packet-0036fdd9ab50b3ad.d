/root/repo/target/debug/deps/shadow_packet-0036fdd9ab50b3ad.d: crates/packet/src/lib.rs crates/packet/src/cursor.rs crates/packet/src/dns/mod.rs crates/packet/src/dns/message.rs crates/packet/src/dns/name.rs crates/packet/src/doq.rs crates/packet/src/error.rs crates/packet/src/http.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/tls.rs crates/packet/src/udp.rs

/root/repo/target/debug/deps/libshadow_packet-0036fdd9ab50b3ad.rlib: crates/packet/src/lib.rs crates/packet/src/cursor.rs crates/packet/src/dns/mod.rs crates/packet/src/dns/message.rs crates/packet/src/dns/name.rs crates/packet/src/doq.rs crates/packet/src/error.rs crates/packet/src/http.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/tls.rs crates/packet/src/udp.rs

/root/repo/target/debug/deps/libshadow_packet-0036fdd9ab50b3ad.rmeta: crates/packet/src/lib.rs crates/packet/src/cursor.rs crates/packet/src/dns/mod.rs crates/packet/src/dns/message.rs crates/packet/src/dns/name.rs crates/packet/src/doq.rs crates/packet/src/error.rs crates/packet/src/http.rs crates/packet/src/icmp.rs crates/packet/src/ipv4.rs crates/packet/src/tcp.rs crates/packet/src/tls.rs crates/packet/src/udp.rs

crates/packet/src/lib.rs:
crates/packet/src/cursor.rs:
crates/packet/src/dns/mod.rs:
crates/packet/src/dns/message.rs:
crates/packet/src/dns/name.rs:
crates/packet/src/doq.rs:
crates/packet/src/error.rs:
crates/packet/src/http.rs:
crates/packet/src/icmp.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/tcp.rs:
crates/packet/src/tls.rs:
crates/packet/src/udp.rs:
