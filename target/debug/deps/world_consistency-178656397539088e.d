/root/repo/target/debug/deps/world_consistency-178656397539088e.d: crates/core/tests/world_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libworld_consistency-178656397539088e.rmeta: crates/core/tests/world_consistency.rs Cargo.toml

crates/core/tests/world_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
