/root/repo/target/debug/deps/world_consistency-c97df9307006794c.d: crates/core/tests/world_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libworld_consistency-c97df9307006794c.rmeta: crates/core/tests/world_consistency.rs Cargo.toml

crates/core/tests/world_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
