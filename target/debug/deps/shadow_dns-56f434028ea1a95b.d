/root/repo/target/debug/deps/shadow_dns-56f434028ea1a95b.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-56f434028ea1a95b.rlib: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-56f434028ea1a95b.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
