/root/repo/target/debug/deps/shadow_honeypot-67627777008169eb.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_honeypot-67627777008169eb.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs Cargo.toml

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
