/root/repo/target/debug/deps/shadow_dns-d2fd844cf527b38c.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-d2fd844cf527b38c.rlib: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-d2fd844cf527b38c.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
