/root/repo/target/debug/deps/shadow_netsim-915461f29e7b6fbb.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/debug/deps/libshadow_netsim-915461f29e7b6fbb.rlib: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/debug/deps/libshadow_netsim-915461f29e7b6fbb.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
