/root/repo/target/debug/deps/study_end_to_end-9d502d9cff471bff.d: tests/study_end_to_end.rs

/root/repo/target/debug/deps/study_end_to_end-9d502d9cff471bff: tests/study_end_to_end.rs

tests/study_end_to_end.rs:
