/root/repo/target/debug/deps/proptest_policy-2da348a014acd963.d: crates/observer/tests/proptest_policy.rs

/root/repo/target/debug/deps/proptest_policy-2da348a014acd963: crates/observer/tests/proptest_policy.rs

crates/observer/tests/proptest_policy.rs:
