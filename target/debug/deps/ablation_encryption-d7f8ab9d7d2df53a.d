/root/repo/target/debug/deps/ablation_encryption-d7f8ab9d7d2df53a.d: crates/bench/benches/ablation_encryption.rs Cargo.toml

/root/repo/target/debug/deps/libablation_encryption-d7f8ab9d7d2df53a.rmeta: crates/bench/benches/ablation_encryption.rs Cargo.toml

crates/bench/benches/ablation_encryption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
