/root/repo/target/debug/deps/shadow_vantage-781cbc55a6121baa.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_vantage-781cbc55a6121baa.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs Cargo.toml

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
