/root/repo/target/debug/deps/sharded_equivalence-6ab3c677311175cb.d: tests/sharded_equivalence.rs

/root/repo/target/debug/deps/sharded_equivalence-6ab3c677311175cb: tests/sharded_equivalence.rs

tests/sharded_equivalence.rs:
