/root/repo/target/debug/deps/proptest_ident-696622beb2f3ddc0.d: crates/core/tests/proptest_ident.rs

/root/repo/target/debug/deps/proptest_ident-696622beb2f3ddc0: crates/core/tests/proptest_ident.rs

crates/core/tests/proptest_ident.rs:
