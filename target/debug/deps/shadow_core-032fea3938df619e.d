/root/repo/target/debug/deps/shadow_core-032fea3938df619e.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/debug/deps/libshadow_core-032fea3938df619e.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/debug/deps/libshadow_core-032fea3938df619e.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/correlate.rs:
crates/core/src/decoy.rs:
crates/core/src/executor.rs:
crates/core/src/ident.rs:
crates/core/src/noise.rs:
crates/core/src/phase2.rs:
crates/core/src/world/mod.rs:
crates/core/src/world/build.rs:
crates/core/src/world/spec.rs:
