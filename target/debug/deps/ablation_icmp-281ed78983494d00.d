/root/repo/target/debug/deps/ablation_icmp-281ed78983494d00.d: crates/bench/benches/ablation_icmp.rs Cargo.toml

/root/repo/target/debug/deps/libablation_icmp-281ed78983494d00.rmeta: crates/bench/benches/ablation_icmp.rs Cargo.toml

crates/bench/benches/ablation_icmp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
