/root/repo/target/debug/deps/ablation_icmp-e2da3d611cbcab3d.d: crates/bench/benches/ablation_icmp.rs Cargo.toml

/root/repo/target/debug/deps/libablation_icmp-e2da3d611cbcab3d.rmeta: crates/bench/benches/ablation_icmp.rs Cargo.toml

crates/bench/benches/ablation_icmp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
