/root/repo/target/debug/deps/encryption_ablation-b5646d5bd3502d6a.d: tests/encryption_ablation.rs

/root/repo/target/debug/deps/encryption_ablation-b5646d5bd3502d6a: tests/encryption_ablation.rs

tests/encryption_ablation.rs:
