/root/repo/target/debug/deps/proptest_sim-b3740fd4bf03de04.d: crates/netsim/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-b3740fd4bf03de04: crates/netsim/tests/proptest_sim.rs

crates/netsim/tests/proptest_sim.rs:
