/root/repo/target/debug/deps/shadow_dns-080411c8839498dc.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-080411c8839498dc.rlib: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/debug/deps/libshadow_dns-080411c8839498dc.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
