/root/repo/target/debug/deps/absorb_commutativity-629a42361bcf9b9b.d: tests/absorb_commutativity.rs Cargo.toml

/root/repo/target/debug/deps/libabsorb_commutativity-629a42361bcf9b9b.rmeta: tests/absorb_commutativity.rs Cargo.toml

tests/absorb_commutativity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
