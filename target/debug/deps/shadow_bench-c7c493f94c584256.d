/root/repo/target/debug/deps/shadow_bench-c7c493f94c584256.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_bench-c7c493f94c584256.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
