/root/repo/target/debug/deps/shadow_analysis-c2c75214867550d6.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_analysis-c2c75214867550d6.rmeta: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/cases.rs:
crates/analysis/src/combos.rs:
crates/analysis/src/export.rs:
crates/analysis/src/landscape.rs:
crates/analysis/src/location.rs:
crates/analysis/src/origins.rs:
crates/analysis/src/probing.rs:
crates/analysis/src/report.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/temporal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
