/root/repo/target/debug/deps/fig5_decoy_breakdown-b6279c8a981d387e.d: crates/bench/benches/fig5_decoy_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_decoy_breakdown-b6279c8a981d387e.rmeta: crates/bench/benches/fig5_decoy_breakdown.rs Cargo.toml

crates/bench/benches/fig5_decoy_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
