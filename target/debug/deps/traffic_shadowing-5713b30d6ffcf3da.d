/root/repo/target/debug/deps/traffic_shadowing-5713b30d6ffcf3da.d: src/lib.rs src/study.rs

/root/repo/target/debug/deps/traffic_shadowing-5713b30d6ffcf3da: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
