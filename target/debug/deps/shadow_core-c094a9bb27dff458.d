/root/repo/target/debug/deps/shadow_core-c094a9bb27dff458.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs Cargo.toml

/root/repo/target/debug/deps/libshadow_core-c094a9bb27dff458.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/correlate.rs:
crates/core/src/decoy.rs:
crates/core/src/executor.rs:
crates/core/src/ident.rs:
crates/core/src/noise.rs:
crates/core/src/phase2.rs:
crates/core/src/world/mod.rs:
crates/core/src/world/build.rs:
crates/core/src/world/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
