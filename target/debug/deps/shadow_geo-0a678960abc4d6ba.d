/root/repo/target/debug/deps/shadow_geo-0a678960abc4d6ba.d: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/debug/deps/libshadow_geo-0a678960abc4d6ba.rlib: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/debug/deps/libshadow_geo-0a678960abc4d6ba.rmeta: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

crates/geo/src/lib.rs:
crates/geo/src/alloc.rs:
crates/geo/src/asn.rs:
crates/geo/src/country.rs:
crates/geo/src/db.rs:
