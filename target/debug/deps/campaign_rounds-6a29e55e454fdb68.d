/root/repo/target/debug/deps/campaign_rounds-6a29e55e454fdb68.d: tests/campaign_rounds.rs

/root/repo/target/debug/deps/campaign_rounds-6a29e55e454fdb68: tests/campaign_rounds.rs

tests/campaign_rounds.rs:
