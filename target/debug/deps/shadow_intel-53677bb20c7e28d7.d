/root/repo/target/debug/deps/shadow_intel-53677bb20c7e28d7.d: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/debug/deps/libshadow_intel-53677bb20c7e28d7.rlib: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/debug/deps/libshadow_intel-53677bb20c7e28d7.rmeta: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

crates/intel/src/lib.rs:
crates/intel/src/blocklist.rs:
crates/intel/src/payload.rs:
crates/intel/src/portscan.rs:
