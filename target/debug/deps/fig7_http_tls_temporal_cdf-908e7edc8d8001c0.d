/root/repo/target/debug/deps/fig7_http_tls_temporal_cdf-908e7edc8d8001c0.d: crates/bench/benches/fig7_http_tls_temporal_cdf.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_http_tls_temporal_cdf-908e7edc8d8001c0.rmeta: crates/bench/benches/fig7_http_tls_temporal_cdf.rs Cargo.toml

crates/bench/benches/fig7_http_tls_temporal_cdf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
