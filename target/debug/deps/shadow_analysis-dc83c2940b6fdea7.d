/root/repo/target/debug/deps/shadow_analysis-dc83c2940b6fdea7.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

/root/repo/target/debug/deps/shadow_analysis-dc83c2940b6fdea7: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/cases.rs:
crates/analysis/src/combos.rs:
crates/analysis/src/export.rs:
crates/analysis/src/landscape.rs:
crates/analysis/src/location.rs:
crates/analysis/src/origins.rs:
crates/analysis/src/probing.rs:
crates/analysis/src/report.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/temporal.rs:
