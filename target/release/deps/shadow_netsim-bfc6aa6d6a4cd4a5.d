/root/repo/target/release/deps/shadow_netsim-bfc6aa6d6a4cd4a5.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/release/deps/libshadow_netsim-bfc6aa6d6a4cd4a5.rlib: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/release/deps/libshadow_netsim-bfc6aa6d6a4cd4a5.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
