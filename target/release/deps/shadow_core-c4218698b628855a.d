/root/repo/target/release/deps/shadow_core-c4218698b628855a.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/release/deps/libshadow_core-c4218698b628855a.rlib: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

/root/repo/target/release/deps/libshadow_core-c4218698b628855a.rmeta: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/executor.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs crates/core/src/world/spec.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/correlate.rs:
crates/core/src/decoy.rs:
crates/core/src/executor.rs:
crates/core/src/ident.rs:
crates/core/src/noise.rs:
crates/core/src/phase2.rs:
crates/core/src/world/mod.rs:
crates/core/src/world/build.rs:
crates/core/src/world/spec.rs:
