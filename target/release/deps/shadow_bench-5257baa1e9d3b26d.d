/root/repo/target/release/deps/shadow_bench-5257baa1e9d3b26d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshadow_bench-5257baa1e9d3b26d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshadow_bench-5257baa1e9d3b26d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
