/root/repo/target/release/deps/proptest_roundtrip-c7833023e9ac0358.d: crates/packet/tests/proptest_roundtrip.rs

/root/repo/target/release/deps/proptest_roundtrip-c7833023e9ac0358: crates/packet/tests/proptest_roundtrip.rs

crates/packet/tests/proptest_roundtrip.rs:
