/root/repo/target/release/deps/shadow_intel-04f9270f7f133f5f.d: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/release/deps/shadow_intel-04f9270f7f133f5f: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

crates/intel/src/lib.rs:
crates/intel/src/blocklist.rs:
crates/intel/src/payload.rs:
crates/intel/src/portscan.rs:
