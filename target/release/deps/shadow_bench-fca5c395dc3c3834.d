/root/repo/target/release/deps/shadow_bench-fca5c395dc3c3834.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshadow_bench-fca5c395dc3c3834.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshadow_bench-fca5c395dc3c3834.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
