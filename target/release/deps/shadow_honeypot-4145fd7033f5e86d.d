/root/repo/target/release/deps/shadow_honeypot-4145fd7033f5e86d.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/release/deps/libshadow_honeypot-4145fd7033f5e86d.rlib: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/release/deps/libshadow_honeypot-4145fd7033f5e86d.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
