/root/repo/target/release/deps/resolver_behavior-517cf17e2f28bbb5.d: crates/dns/tests/resolver_behavior.rs

/root/repo/target/release/deps/resolver_behavior-517cf17e2f28bbb5: crates/dns/tests/resolver_behavior.rs

crates/dns/tests/resolver_behavior.rs:
