/root/repo/target/release/deps/campaign_rounds-e934b9703eacaf86.d: tests/campaign_rounds.rs

/root/repo/target/release/deps/campaign_rounds-e934b9703eacaf86: tests/campaign_rounds.rs

tests/campaign_rounds.rs:
