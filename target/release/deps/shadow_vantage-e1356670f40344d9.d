/root/repo/target/release/deps/shadow_vantage-e1356670f40344d9.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/release/deps/libshadow_vantage-e1356670f40344d9.rlib: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/release/deps/libshadow_vantage-e1356670f40344d9.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
