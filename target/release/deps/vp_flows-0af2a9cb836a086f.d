/root/repo/target/release/deps/vp_flows-0af2a9cb836a086f.d: crates/vantage/tests/vp_flows.rs

/root/repo/target/release/deps/vp_flows-0af2a9cb836a086f: crates/vantage/tests/vp_flows.rs

crates/vantage/tests/vp_flows.rs:
