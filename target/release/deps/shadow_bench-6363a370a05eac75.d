/root/repo/target/release/deps/shadow_bench-6363a370a05eac75.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshadow_bench-6363a370a05eac75.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libshadow_bench-6363a370a05eac75.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
