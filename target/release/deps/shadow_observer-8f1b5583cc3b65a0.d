/root/repo/target/release/deps/shadow_observer-8f1b5583cc3b65a0.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/scheduler.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs

/root/repo/target/release/deps/shadow_observer-8f1b5583cc3b65a0: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/scheduler.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/scheduler.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
