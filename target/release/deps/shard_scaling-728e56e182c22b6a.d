/root/repo/target/release/deps/shard_scaling-728e56e182c22b6a.d: crates/bench/benches/shard_scaling.rs

/root/repo/target/release/deps/shard_scaling-728e56e182c22b6a: crates/bench/benches/shard_scaling.rs

crates/bench/benches/shard_scaling.rs:
