/root/repo/target/release/deps/shadow_dns-ef4962a8a24707a8.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/release/deps/libshadow_dns-ef4962a8a24707a8.rlib: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/release/deps/libshadow_dns-ef4962a8a24707a8.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
