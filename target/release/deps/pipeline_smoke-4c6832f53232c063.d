/root/repo/target/release/deps/pipeline_smoke-4c6832f53232c063.d: crates/core/tests/pipeline_smoke.rs

/root/repo/target/release/deps/pipeline_smoke-4c6832f53232c063: crates/core/tests/pipeline_smoke.rs

crates/core/tests/pipeline_smoke.rs:
