/root/repo/target/release/deps/shadow_telemetry-1c7e0980dbbb82f8.d: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

/root/repo/target/release/deps/libshadow_telemetry-1c7e0980dbbb82f8.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

/root/repo/target/release/deps/libshadow_telemetry-1c7e0980dbbb82f8.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/diff.rs crates/telemetry/src/journal.rs crates/telemetry/src/metrics.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/diff.rs:
crates/telemetry/src/journal.rs:
crates/telemetry/src/metrics.rs:
