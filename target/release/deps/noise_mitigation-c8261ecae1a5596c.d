/root/repo/target/release/deps/noise_mitigation-c8261ecae1a5596c.d: tests/noise_mitigation.rs

/root/repo/target/release/deps/noise_mitigation-c8261ecae1a5596c: tests/noise_mitigation.rs

tests/noise_mitigation.rs:
