/root/repo/target/release/deps/shadow_analysis-524213486ccde108.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

/root/repo/target/release/deps/libshadow_analysis-524213486ccde108.rlib: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

/root/repo/target/release/deps/libshadow_analysis-524213486ccde108.rmeta: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/cases.rs:
crates/analysis/src/combos.rs:
crates/analysis/src/export.rs:
crates/analysis/src/landscape.rs:
crates/analysis/src/location.rs:
crates/analysis/src/origins.rs:
crates/analysis/src/probing.rs:
crates/analysis/src/report.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/temporal.rs:
