/root/repo/target/release/deps/proptest_ident-13a3a64f1f795e83.d: crates/core/tests/proptest_ident.rs

/root/repo/target/release/deps/proptest_ident-13a3a64f1f795e83: crates/core/tests/proptest_ident.rs

crates/core/tests/proptest_ident.rs:
