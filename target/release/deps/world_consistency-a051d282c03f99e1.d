/root/repo/target/release/deps/world_consistency-a051d282c03f99e1.d: crates/core/tests/world_consistency.rs

/root/repo/target/release/deps/world_consistency-a051d282c03f99e1: crates/core/tests/world_consistency.rs

crates/core/tests/world_consistency.rs:
