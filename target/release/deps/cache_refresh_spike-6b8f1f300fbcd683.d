/root/repo/target/release/deps/cache_refresh_spike-6b8f1f300fbcd683.d: crates/dns/tests/cache_refresh_spike.rs

/root/repo/target/release/deps/cache_refresh_spike-6b8f1f300fbcd683: crates/dns/tests/cache_refresh_spike.rs

crates/dns/tests/cache_refresh_spike.rs:
