/root/repo/target/release/deps/proptest-e5e1f9ec7f46653d.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-e5e1f9ec7f46653d: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
