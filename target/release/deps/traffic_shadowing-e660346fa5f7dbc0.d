/root/repo/target/release/deps/traffic_shadowing-e660346fa5f7dbc0.d: src/lib.rs src/study.rs

/root/repo/target/release/deps/libtraffic_shadowing-e660346fa5f7dbc0.rlib: src/lib.rs src/study.rs

/root/repo/target/release/deps/libtraffic_shadowing-e660346fa5f7dbc0.rmeta: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
