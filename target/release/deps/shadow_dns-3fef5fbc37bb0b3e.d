/root/repo/target/release/deps/shadow_dns-3fef5fbc37bb0b3e.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/release/deps/shadow_dns-3fef5fbc37bb0b3e: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
