/root/repo/target/release/deps/shadow_honeypot-8f6137abf185ae14.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/release/deps/libshadow_honeypot-8f6137abf185ae14.rlib: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/release/deps/libshadow_honeypot-8f6137abf185ae14.rmeta: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
