/root/repo/target/release/deps/proptest_policy-69e251b9cf09ee56.d: crates/observer/tests/proptest_policy.rs

/root/repo/target/release/deps/proptest_policy-69e251b9cf09ee56: crates/observer/tests/proptest_policy.rs

crates/observer/tests/proptest_policy.rs:
