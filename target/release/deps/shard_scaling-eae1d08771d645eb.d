/root/repo/target/release/deps/shard_scaling-eae1d08771d645eb.d: crates/bench/benches/shard_scaling.rs

/root/repo/target/release/deps/shard_scaling-eae1d08771d645eb: crates/bench/benches/shard_scaling.rs

crates/bench/benches/shard_scaling.rs:
