/root/repo/target/release/deps/shadow_bench-c473dd0d1d4c16ee.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/shadow_bench-c473dd0d1d4c16ee: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
