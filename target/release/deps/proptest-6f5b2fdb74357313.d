/root/repo/target/release/deps/proptest-6f5b2fdb74357313.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6f5b2fdb74357313.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6f5b2fdb74357313.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
