/root/repo/target/release/deps/traffic_shadowing-66b664e082c427ee.d: src/lib.rs src/study.rs

/root/repo/target/release/deps/libtraffic_shadowing-66b664e082c427ee.rlib: src/lib.rs src/study.rs

/root/repo/target/release/deps/libtraffic_shadowing-66b664e082c427ee.rmeta: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
