/root/repo/target/release/deps/shadow_vantage-91e8a5f23e4f541d.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/release/deps/shadow_vantage-91e8a5f23e4f541d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
