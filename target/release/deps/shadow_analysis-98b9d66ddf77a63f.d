/root/repo/target/release/deps/shadow_analysis-98b9d66ddf77a63f.d: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

/root/repo/target/release/deps/libshadow_analysis-98b9d66ddf77a63f.rlib: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

/root/repo/target/release/deps/libshadow_analysis-98b9d66ddf77a63f.rmeta: crates/analysis/src/lib.rs crates/analysis/src/breakdown.rs crates/analysis/src/cases.rs crates/analysis/src/combos.rs crates/analysis/src/export.rs crates/analysis/src/landscape.rs crates/analysis/src/location.rs crates/analysis/src/origins.rs crates/analysis/src/probing.rs crates/analysis/src/report.rs crates/analysis/src/reuse.rs crates/analysis/src/temporal.rs

crates/analysis/src/lib.rs:
crates/analysis/src/breakdown.rs:
crates/analysis/src/cases.rs:
crates/analysis/src/combos.rs:
crates/analysis/src/export.rs:
crates/analysis/src/landscape.rs:
crates/analysis/src/location.rs:
crates/analysis/src/origins.rs:
crates/analysis/src/probing.rs:
crates/analysis/src/report.rs:
crates/analysis/src/reuse.rs:
crates/analysis/src/temporal.rs:
