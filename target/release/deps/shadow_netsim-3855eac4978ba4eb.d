/root/repo/target/release/deps/shadow_netsim-3855eac4978ba4eb.d: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/release/deps/libshadow_netsim-3855eac4978ba4eb.rlib: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

/root/repo/target/release/deps/libshadow_netsim-3855eac4978ba4eb.rmeta: crates/netsim/src/lib.rs crates/netsim/src/engine.rs crates/netsim/src/tcp.rs crates/netsim/src/time.rs crates/netsim/src/topology.rs crates/netsim/src/trace.rs crates/netsim/src/transport.rs

crates/netsim/src/lib.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/tcp.rs:
crates/netsim/src/time.rs:
crates/netsim/src/topology.rs:
crates/netsim/src/trace.rs:
crates/netsim/src/transport.rs:
