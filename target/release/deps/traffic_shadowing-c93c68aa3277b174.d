/root/repo/target/release/deps/traffic_shadowing-c93c68aa3277b174.d: src/lib.rs src/study.rs

/root/repo/target/release/deps/traffic_shadowing-c93c68aa3277b174: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
