/root/repo/target/release/deps/determinism-e7cb3b77680b5b82.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-e7cb3b77680b5b82: tests/determinism.rs

tests/determinism.rs:
