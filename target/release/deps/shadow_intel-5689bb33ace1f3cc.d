/root/repo/target/release/deps/shadow_intel-5689bb33ace1f3cc.d: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/release/deps/libshadow_intel-5689bb33ace1f3cc.rlib: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

/root/repo/target/release/deps/libshadow_intel-5689bb33ace1f3cc.rmeta: crates/intel/src/lib.rs crates/intel/src/blocklist.rs crates/intel/src/payload.rs crates/intel/src/portscan.rs

crates/intel/src/lib.rs:
crates/intel/src/blocklist.rs:
crates/intel/src/payload.rs:
crates/intel/src/portscan.rs:
