/root/repo/target/release/deps/shadow_dns-09e0920c79c59eee.d: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/release/deps/libshadow_dns-09e0920c79c59eee.rlib: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

/root/repo/target/release/deps/libshadow_dns-09e0920c79c59eee.rmeta: crates/dns/src/lib.rs crates/dns/src/authoritative.rs crates/dns/src/catalog.rs crates/dns/src/profile.rs crates/dns/src/resolver.rs

crates/dns/src/lib.rs:
crates/dns/src/authoritative.rs:
crates/dns/src/catalog.rs:
crates/dns/src/profile.rs:
crates/dns/src/resolver.rs:
