/root/repo/target/release/deps/shadow_observer-c01311a5e879faee.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/release/deps/libshadow_observer-c01311a5e879faee.rlib: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/release/deps/libshadow_observer-c01311a5e879faee.rmeta: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
