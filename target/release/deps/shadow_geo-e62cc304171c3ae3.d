/root/repo/target/release/deps/shadow_geo-e62cc304171c3ae3.d: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/release/deps/shadow_geo-e62cc304171c3ae3: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

crates/geo/src/lib.rs:
crates/geo/src/alloc.rs:
crates/geo/src/asn.rs:
crates/geo/src/country.rs:
crates/geo/src/db.rs:
