/root/repo/target/release/deps/traffic_shadowing-b653a3afeb2e62da.d: src/lib.rs src/study.rs

/root/repo/target/release/deps/libtraffic_shadowing-b653a3afeb2e62da.rlib: src/lib.rs src/study.rs

/root/repo/target/release/deps/libtraffic_shadowing-b653a3afeb2e62da.rmeta: src/lib.rs src/study.rs

src/lib.rs:
src/study.rs:
