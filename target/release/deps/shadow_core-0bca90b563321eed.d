/root/repo/target/release/deps/shadow_core-0bca90b563321eed.d: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs

/root/repo/target/release/deps/shadow_core-0bca90b563321eed: crates/core/src/lib.rs crates/core/src/campaign.rs crates/core/src/correlate.rs crates/core/src/decoy.rs crates/core/src/ident.rs crates/core/src/noise.rs crates/core/src/phase2.rs crates/core/src/world/mod.rs crates/core/src/world/build.rs

crates/core/src/lib.rs:
crates/core/src/campaign.rs:
crates/core/src/correlate.rs:
crates/core/src/decoy.rs:
crates/core/src/ident.rs:
crates/core/src/noise.rs:
crates/core/src/phase2.rs:
crates/core/src/world/mod.rs:
crates/core/src/world/build.rs:
