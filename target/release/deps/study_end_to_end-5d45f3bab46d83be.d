/root/repo/target/release/deps/study_end_to_end-5d45f3bab46d83be.d: tests/study_end_to_end.rs

/root/repo/target/release/deps/study_end_to_end-5d45f3bab46d83be: tests/study_end_to_end.rs

tests/study_end_to_end.rs:
