/root/repo/target/release/deps/shadow_vantage-25696b0a41993ef7.d: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/release/deps/libshadow_vantage-25696b0a41993ef7.rlib: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

/root/repo/target/release/deps/libshadow_vantage-25696b0a41993ef7.rmeta: crates/vantage/src/lib.rs crates/vantage/src/platform.rs crates/vantage/src/providers.rs crates/vantage/src/schedule.rs crates/vantage/src/vp.rs

crates/vantage/src/lib.rs:
crates/vantage/src/platform.rs:
crates/vantage/src/providers.rs:
crates/vantage/src/schedule.rs:
crates/vantage/src/vp.rs:
