/root/repo/target/release/deps/proptest_sim-1835330854dd2211.d: crates/netsim/tests/proptest_sim.rs

/root/repo/target/release/deps/proptest_sim-1835330854dd2211: crates/netsim/tests/proptest_sim.rs

crates/netsim/tests/proptest_sim.rs:
