/root/repo/target/release/deps/encryption_ablation-ceb48821a932873b.d: tests/encryption_ablation.rs

/root/repo/target/release/deps/encryption_ablation-ceb48821a932873b: tests/encryption_ablation.rs

tests/encryption_ablation.rs:
