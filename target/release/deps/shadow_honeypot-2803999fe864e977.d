/root/repo/target/release/deps/shadow_honeypot-2803999fe864e977.d: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

/root/repo/target/release/deps/shadow_honeypot-2803999fe864e977: crates/honeypot/src/lib.rs crates/honeypot/src/authority.rs crates/honeypot/src/capture.rs crates/honeypot/src/web.rs

crates/honeypot/src/lib.rs:
crates/honeypot/src/authority.rs:
crates/honeypot/src/capture.rs:
crates/honeypot/src/web.rs:
