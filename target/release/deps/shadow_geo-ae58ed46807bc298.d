/root/repo/target/release/deps/shadow_geo-ae58ed46807bc298.d: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/release/deps/libshadow_geo-ae58ed46807bc298.rlib: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

/root/repo/target/release/deps/libshadow_geo-ae58ed46807bc298.rmeta: crates/geo/src/lib.rs crates/geo/src/alloc.rs crates/geo/src/asn.rs crates/geo/src/country.rs crates/geo/src/db.rs

crates/geo/src/lib.rs:
crates/geo/src/alloc.rs:
crates/geo/src/asn.rs:
crates/geo/src/country.rs:
crates/geo/src/db.rs:
