/root/repo/target/release/deps/shadow_observer-fd6562b9dd7a23a0.d: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/release/deps/libshadow_observer-fd6562b9dd7a23a0.rlib: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

/root/repo/target/release/deps/libshadow_observer-fd6562b9dd7a23a0.rmeta: crates/observer/src/lib.rs crates/observer/src/dpi.rs crates/observer/src/intercept.rs crates/observer/src/policy.rs crates/observer/src/probe.rs crates/observer/src/retention.rs crates/observer/src/scheduler.rs

crates/observer/src/lib.rs:
crates/observer/src/dpi.rs:
crates/observer/src/intercept.rs:
crates/observer/src/policy.rs:
crates/observer/src/probe.rs:
crates/observer/src/retention.rs:
crates/observer/src/scheduler.rs:
