/root/repo/target/release/examples/full_campaign-72854142dc54e862.d: examples/full_campaign.rs

/root/repo/target/release/examples/full_campaign-72854142dc54e862: examples/full_campaign.rs

examples/full_campaign.rs:
