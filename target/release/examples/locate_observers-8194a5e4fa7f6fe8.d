/root/repo/target/release/examples/locate_observers-8194a5e4fa7f6fe8.d: examples/locate_observers.rs

/root/repo/target/release/examples/locate_observers-8194a5e4fa7f6fe8: examples/locate_observers.rs

examples/locate_observers.rs:
