/root/repo/target/release/examples/quickstart-0472a397576d8a6f.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0472a397576d8a6f: examples/quickstart.rs

examples/quickstart.rs:
