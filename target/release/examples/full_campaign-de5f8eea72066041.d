/root/repo/target/release/examples/full_campaign-de5f8eea72066041.d: examples/full_campaign.rs

/root/repo/target/release/examples/full_campaign-de5f8eea72066041: examples/full_campaign.rs

examples/full_campaign.rs:
