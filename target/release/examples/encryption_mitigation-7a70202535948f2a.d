/root/repo/target/release/examples/encryption_mitigation-7a70202535948f2a.d: examples/encryption_mitigation.rs

/root/repo/target/release/examples/encryption_mitigation-7a70202535948f2a: examples/encryption_mitigation.rs

examples/encryption_mitigation.rs:
