/root/repo/target/release/examples/interception_noise-17c9980cc0eb2df0.d: examples/interception_noise.rs

/root/repo/target/release/examples/interception_noise-17c9980cc0eb2df0: examples/interception_noise.rs

examples/interception_noise.rs:
