/root/repo/target/release/examples/journal_diff-ef199871c573625e.d: examples/journal_diff.rs

/root/repo/target/release/examples/journal_diff-ef199871c573625e: examples/journal_diff.rs

examples/journal_diff.rs:
