/root/repo/target/release/examples/full_campaign-08bd9b876281214f.d: examples/full_campaign.rs

/root/repo/target/release/examples/full_campaign-08bd9b876281214f: examples/full_campaign.rs

examples/full_campaign.rs:
