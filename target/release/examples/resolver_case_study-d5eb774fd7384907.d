/root/repo/target/release/examples/resolver_case_study-d5eb774fd7384907.d: examples/resolver_case_study.rs

/root/repo/target/release/examples/resolver_case_study-d5eb774fd7384907: examples/resolver_case_study.rs

examples/resolver_case_study.rs:
