//! The paper-scale (simulated) campaign: builds the standard world, runs
//! pre-flight vetting, Phase I, Phase II, and prints every table and figure
//! of the evaluation section side by side with the paper's reported
//! numbers. This is the binary behind EXPERIMENTS.md.
//!
//! Run with `cargo run --release --example full_campaign [seed] [--shards N]
//! [--tiny] [--metrics-out PATH] [--journal PATH]`.
//!
//! `--shards N` executes the campaign across N worker threads (one world
//! per shard, merged deterministically); the output is byte-identical to
//! the sequential run for any N. `--metrics-out` writes the merged
//! telemetry snapshot as JSON (and prints a summary table); `--journal`
//! writes the canonically sorted event journal as JSONL (compare runs
//! with the `journal_diff` example). `--tiny` runs the small test world
//! instead of the paper-scale one (used by CI). `--loss P` injects P%
//! uniform per-link packet loss (with the standard DNS retry policy);
//! `--fault-seed S` re-keys which packets the faults hit.
//!
//! `--topology-report` appends the shadow-topo section: the router graph
//! reconstructed from Phase II Time-Exceeded arrivals (cross-validated
//! against the ground-truth topology) followed by the
//! accuracy-vs-ICMP-coverage sweep — one extra campaign per rate-limit
//! level. One-shot mode only (ignored in campaign mode).
//!
//! **Campaign mode** (`--waves N`, `--checkpoint PATH`, `--resume PATH`):
//! instead of a one-shot study, drive the `shadow-serve` campaign loop —
//! N waves folded into one cumulative state, checkpointed after every
//! wave when `--checkpoint` is given. `--resume PATH` restores a saved
//! checkpoint and runs the remaining waves; the final state is
//! byte-identical to a run that was never interrupted. The checkpoint
//! header carries a world hash, so resuming under a different
//! configuration (e.g. a `--tiny` checkpoint without `--tiny`) fails
//! loudly instead of silently blending two campaigns. Campaign mode
//! always records telemetry (the checkpoint carries the journal and
//! metrics) and prints the evaluation report for the final wave.

use shadow_analysis::report::{pct, render_series, render_table};
use shadow_serve::{CampaignCheckpoint, CampaignDriver, ServeConfig, ServeError};
use std::path::{Path, PathBuf};
use traffic_shadowing::shadow_analysis;
use traffic_shadowing::shadow_chaos::{FaultProfile, RetrySpec};
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_core::executor::{StealConfig, TelemetryOptions};
use traffic_shadowing::shadow_netsim::time::SimDuration;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

const USAGE: &str = "usage: full_campaign [seed] [--shards N] [--tiny] [--paper-scale] \
     [--scale-factor N] [--metrics-out PATH] [--journal PATH] [--loss PERCENT] \
     [--fault-seed S] [--waves N] [--checkpoint PATH] [--resume PATH] [--topology-report]";

fn path_arg(args: &[String], i: usize, flag: &str) -> String {
    match args.get(i + 1) {
        Some(p) if !p.is_empty() && !p.starts_with("--") => p.clone(),
        Some(p) if p.is_empty() => {
            eprintln!("{flag} needs a non-empty file path");
            std::process::exit(2);
        }
        _ => {
            eprintln!("{flag} needs a file path");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 7;
    let mut shards: Option<usize> = None;
    let mut tiny = false;
    let mut scale_factor: Option<u32> = None;
    let mut metrics_out: Option<String> = None;
    let mut journal_out: Option<String> = None;
    let mut loss_percent: f64 = 0.0;
    let mut fault_seed: u64 = 1;
    let mut waves: Option<usize> = None;
    let mut checkpoint_out: Option<String> = None;
    let mut resume_from: Option<String> = None;
    let mut topology_report = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                shards = args.get(i + 1).and_then(|s| s.parse().ok());
                match shards {
                    None => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(0) => {
                        eprintln!("--shards must be at least 1 (got 0)");
                        std::process::exit(2);
                    }
                    Some(_) => {}
                }
                i += 2;
            }
            "--tiny" => {
                tiny = true;
                i += 1;
            }
            "--paper-scale" => {
                scale_factor = scale_factor.or(Some(1));
                i += 1;
            }
            "--scale-factor" => {
                match args.get(i + 1).and_then(|s| s.parse::<u32>().ok()) {
                    None => {
                        eprintln!(
                            "--scale-factor needs a positive integer (e.g. --scale-factor 10 \
                             for ten times the paper's decoy volume; 1 is the paper's own scale)"
                        );
                        std::process::exit(2);
                    }
                    Some(0) => {
                        eprintln!(
                            "--scale-factor must be at least 1 (got 0) — 1 is the paper's own \
                             scale; did you mean --paper-scale?"
                        );
                        std::process::exit(2);
                    }
                    Some(f) => scale_factor = Some(f),
                }
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = Some(path_arg(&args, i, "--metrics-out"));
                i += 2;
            }
            "--journal" => {
                journal_out = Some(path_arg(&args, i, "--journal"));
                i += 2;
            }
            "--loss" => {
                match args.get(i + 1).and_then(|s| s.parse::<f64>().ok()) {
                    None => {
                        eprintln!("--loss needs a percentage");
                        std::process::exit(2);
                    }
                    Some(p) if !(0.0..=100.0).contains(&p) => {
                        eprintln!("--loss must be between 0 and 100 (got {p})");
                        std::process::exit(2);
                    }
                    Some(p) => loss_percent = p,
                }
                i += 2;
            }
            "--fault-seed" => {
                match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    None => {
                        eprintln!("--fault-seed needs a non-negative integer");
                        std::process::exit(2);
                    }
                    Some(s) => fault_seed = s,
                }
                i += 2;
            }
            "--waves" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    None => {
                        eprintln!("--waves needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(0) => {
                        eprintln!("--waves must be at least 1 (got 0)");
                        std::process::exit(2);
                    }
                    Some(w) => waves = Some(w),
                }
                i += 2;
            }
            "--checkpoint" => {
                checkpoint_out = Some(path_arg(&args, i, "--checkpoint"));
                i += 2;
            }
            "--resume" => {
                resume_from = Some(path_arg(&args, i, "--resume"));
                i += 2;
            }
            "--topology-report" => {
                topology_report = true;
                i += 1;
            }
            raw => {
                if let Ok(s) = raw.parse() {
                    seed = s;
                } else {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
                i += 1;
            }
        }
    }
    let faults = fault_profile(loss_percent, fault_seed);
    if let Some(factor) = scale_factor {
        if tiny {
            eprintln!(
                "--tiny and --paper-scale/--scale-factor are mutually exclusive — pick one \
                 world scale"
            );
            std::process::exit(2);
        }
        if waves.is_some() || checkpoint_out.is_some() || resume_from.is_some() {
            eprintln!(
                "campaign mode (--waves/--checkpoint/--resume) is not supported at paper \
                 scale — drop those flags, or run waves on the standard world"
            );
            std::process::exit(2);
        }
        if topology_report {
            eprintln!(
                "--topology-report re-runs the campaign once per ICMP level and is not \
                 supported at paper scale — drop it, or run it on the standard/tiny world"
            );
            std::process::exit(2);
        }
        if journal_out.is_some() {
            eprintln!(
                "--journal buffers one record per simulator event and is not supported at \
                 paper scale (~20M decoys/round) — drop it, or journal the standard world"
            );
            std::process::exit(2);
        }
        run_paper_scale(seed, factor, shards, faults, metrics_out);
        return;
    }
    if waves.is_some() || checkpoint_out.is_some() || resume_from.is_some() {
        run_campaign(
            seed,
            tiny,
            shards,
            waves,
            checkpoint_out,
            resume_from,
            faults,
            metrics_out,
            journal_out,
        );
        return;
    }
    let telemetry = if metrics_out.is_some() || journal_out.is_some() {
        TelemetryOptions::enabled(journal_out.is_some())
    } else {
        TelemetryOptions::disabled()
    };
    let config = StudyConfig {
        telemetry,
        faults,
        // The full reproduction prints the sample-level artifacts (Figure
        // 6 origins, probing payloads, case studies).
        retain_arrivals: true,
        ..if tiny {
            StudyConfig::tiny(seed)
        } else {
            StudyConfig::standard(seed)
        }
    };
    let started = std::time::Instant::now();
    let outcome = match shards {
        Some(k) => Study::run_sharded(config, k),
        None => Study::run(config),
    };
    match shards {
        Some(k) => println!(
            "=== full campaign (seed {seed}, {k} shards, {:?}) ===\n",
            started.elapsed()
        ),
        None => println!(
            "=== full campaign (seed {seed}, {:?}) ===\n",
            started.elapsed()
        ),
    }
    println!("{}\n", outcome.summary());
    print_report(&outcome);
    print_artifacts(&outcome, seed, &metrics_out, &journal_out);
    if topology_report {
        print_topology_report(&outcome, &config_for_sweep(seed, tiny), shards.unwrap_or(1));
    }
}

/// The `--paper-scale` / `--scale-factor N` path: the §3 deployment scale
/// (4,364 VPs × 2,325 sites, ~20M Phase I decoys per round at factor 1),
/// streamed end-to-end — arrivals fold into capture-time sinks and are
/// never retained, so the sample-level tables (Figure 6 origins, probing
/// payloads, case studies) are skipped; the aggregate report and telemetry
/// artifacts still print. Without `--shards`, the work-stealing executor
/// runs with one worker per available core and a single shared scout plan.
fn run_paper_scale(
    seed: u64,
    factor: u32,
    shards: Option<usize>,
    faults: Option<FaultProfile>,
    metrics_out: Option<String>,
) {
    let telemetry = if metrics_out.is_some() {
        TelemetryOptions::enabled(false)
    } else {
        TelemetryOptions::disabled()
    };
    let config = StudyConfig {
        telemetry,
        faults,
        ..StudyConfig::paper_scale_factor(seed, factor)
    };
    let world = &config.world;
    eprintln!(
        "[paper-scale] factor {factor}: {} VPs x {} sites (building world + plan; \
         this is minutes of setup before sends start)",
        world.vps_global + world.vps_cn,
        world.tranco_sites,
    );
    let started = std::time::Instant::now();
    let outcome = match shards {
        Some(k) => Study::run_sharded(config, k),
        None => Study::run_work_stealing(config, StealConfig::auto()),
    };
    match shards {
        Some(k) => println!(
            "=== paper-scale campaign (seed {seed}, factor {factor}, {k} shards, {:?}) ===\n",
            started.elapsed()
        ),
        None => println!(
            "=== paper-scale campaign (seed {seed}, factor {factor}, work-stealing, {:?}) ===\n",
            started.elapsed()
        ),
    }
    println!("{}\n", outcome.summary());
    print_streamed_report(&outcome);
    print_artifacts(&outcome, seed, &metrics_out, &None);
}

/// The subset of the reproduction report computable from the capture-time
/// aggregates alone — what the paper-scale path prints. The sample-exact
/// sections (Figure 6 origins, §5 probing payloads, case studies) need
/// retained arrivals and are skipped; their streamed histogram twins
/// (Figure 4/7 grids) print instead.
fn print_streamed_report(outcome: &StudyOutcome) {
    use traffic_shadowing::shadow_analysis::temporal::histogram_paper_grid;

    println!("--- Figure 3: problematic-path ratios (streamed) ---");
    let landscape = outcome.landscape();
    println!(
        "protocol totals: DNS {} | HTTP {} | TLS {}\n",
        pct(landscape.protocol_ratio(DecoyProtocol::Dns)),
        pct(landscape.protocol_ratio(DecoyProtocol::Http)),
        pct(landscape.protocol_ratio(DecoyProtocol::Tls)),
    );

    println!("--- Table 2: normalized location of traffic observers ---");
    let hop_table = outcome.hop_table();
    let mut rows = Vec::new();
    for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
        let mut row = vec![protocol.as_str().to_string()];
        for hop in 1..=10u8 {
            row.push(format!("{:.1}", hop_table.percent(protocol, hop)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["proto", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10=dst"],
            &rows
        )
    );

    let ips = outcome.observer_ips();
    println!(
        "observer IPs revealed: {} ({} in CN)\n",
        ips.total_ips,
        pct(ips.country_fraction("CN"))
    );

    println!("--- Figure 4: Resolver_h retention (streamed histogram) ---");
    let fig4 = outcome.fig4_hist();
    for (label, fraction) in histogram_paper_grid(&fig4) {
        println!("  ≤{label:<5} {}", pct(fraction));
    }

    println!("\n--- Figure 5: DNS decoy outcome breakdown (selected) ---");
    let breakdown = outcome.fig5_breakdown();
    let mut rows = Vec::new();
    for dest in ["Yandex", "114DNS", "One DNS", "Google", "self-built"] {
        if let Some(row) = breakdown.iter().find(|b| b.destination == dest) {
            rows.push(vec![
                dest.to_string(),
                pct(row.shadowed_fraction()),
                pct(row.late_http_fraction()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["Destination", "shadowed", "HTTP(S) after 1h"], &rows)
    );

    let reuse = outcome.reuse();
    println!("--- §5.1: reuse of retained data (cutoff 1h) ---");
    println!(
        "late-active decoys: {} | >3 requests: {} (paper 51%) | >10: {} (paper 2.4%)\n",
        reuse.late_active_decoys(),
        pct(reuse.fraction_exceeding(3)),
        pct(reuse.fraction_exceeding(10)),
    );

    println!("--- §5.2: Decoy-Request combinations ---");
    println!("overall combos: {:?}\n", outcome.combo_counts());

    let scan = outcome.observer_port_scan();
    println!("--- §5.2: open ports of on-wire observers ---");
    println!(
        "{} observers scanned | no open ports: {} (paper 92%) | top open port: {:?} (paper 179)\n",
        scan.targets,
        pct(scan.closed_fraction()),
        scan.top_port()
    );

    println!(
        "(sample-level sections — Figure 6 origins, §5 probing payloads, case studies — \
         need retained arrivals; the paper-scale path streams and skips them)"
    );
}

/// A fault-free, telemetry-free copy of the study configuration for the
/// ICMP-coverage sweep cells (each cell injects its own ICMP profile).
fn config_for_sweep(seed: u64, tiny: bool) -> StudyConfig {
    if tiny {
        StudyConfig::tiny(seed)
    } else {
        StudyConfig::standard(seed)
    }
}

/// The `--topology-report` section: the router graph reconstructed from
/// this run's Phase II traces, cross-validated against ground truth, then
/// the accuracy-vs-ICMP-coverage sweep (one extra campaign per level).
fn print_topology_report(outcome: &StudyOutcome, base: &StudyConfig, shards: usize) {
    use traffic_shadowing::topology_report::{self, DEFAULT_ICMP_LEVELS};

    println!("--- topology report: Phase II router-graph reconstruction ---");
    let graph = &outcome.router_graph;
    println!(
        "router graph: {} routers, {} IP links, {} AS adjacencies from {} ICMP observations over {} paths",
        graph.routers.len(),
        graph.links.len(),
        graph.as_links.len(),
        graph.observations,
        graph.traced_paths,
    );
    let mut hops: Vec<String> = graph
        .as_hops
        .iter()
        .take(6)
        .map(|h| format!("AS{} @ {:.1}", h.asn, h.mean_ttl()))
        .collect();
    if graph.as_hops.len() > 6 {
        hops.push(format!("… {} more", graph.as_hops.len() - 6));
    }
    if !hops.is_empty() {
        println!("mean hop distance per AS: {}", hops.join("  "));
    }
    let cell = topology_report::score_outcome("this run", 0.0, outcome);
    println!(
        "cross-validation: router recall {:.2}, link recall {:.2}, localization accuracy {:.2} ({}/{} localized paths correct)\n",
        cell.router_recall(),
        cell.link_recall(),
        cell.localization_accuracy(),
        cell.correct_localizations,
        cell.localized_paths,
    );

    println!("--- accuracy vs ICMP coverage (rate-limit sweep, {shards} shard(s)/cell) ---");
    let report = topology_report::run_icmp_sweep(base, &DEFAULT_ICMP_LEVELS, 1, shards, 2);
    println!("{}", report.render());
    println!(
        "paper: localization leans on Time-Exceeded answers; rate limiting starves the sweep\n"
    );
}

/// Every table, figure, and case study of the evaluation section, printed
/// from one study outcome — shared by the one-shot path and campaign
/// mode's final-wave report.
fn print_report(outcome: &StudyOutcome) {
    // ------------------------------------------------- Table 1
    println!("--- Table 1: measurement platform (after vetting) ---");
    let rows: Vec<Vec<String>> = outcome
        .world
        .platform
        .table1(&outcome.world.geo)
        .into_iter()
        .map(|r| {
            vec![
                r.market.to_string(),
                r.providers.to_string(),
                r.vps.to_string(),
                r.ases.to_string(),
                r.countries.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Market", "Providers", "VPs", "ASes", "Countries"], &rows)
    );

    // ------------------------------------------------- Figure 3
    println!("--- Figure 3: problematic-path ratios per destination ---");
    let landscape = outcome.landscape();
    let mut rows = Vec::new();
    for dest in [
        "Yandex",
        "114DNS",
        "One DNS",
        "DNS PAI",
        "VERCARA",
        "Google",
        "Cloudflare",
        "Quad9",
        "self-built",
        "a.root",
        ".com",
    ] {
        rows.push(vec![
            dest.to_string(),
            pct(landscape.destination_ratio(dest, DecoyProtocol::Dns)),
        ]);
    }
    println!(
        "{}",
        render_table(&["DNS destination", "paths shadowed"], &rows)
    );
    println!(
        "protocol totals: DNS {} | HTTP {} | TLS {}\n",
        pct(landscape.protocol_ratio(DecoyProtocol::Dns)),
        pct(landscape.protocol_ratio(DecoyProtocol::Http)),
        pct(landscape.protocol_ratio(DecoyProtocol::Tls)),
    );

    println!("HTTP/TLS destinations most observed (site groups by hosting country):");
    for protocol in [DecoyProtocol::Http, DecoyProtocol::Tls] {
        let top: Vec<String> = landscape
            .destination_ratios(protocol)
            .into_iter()
            .filter(|(d, _, _)| d.starts_with("site:"))
            .take(4)
            .map(|(d, r, _)| format!("{d} {}", pct(r)))
            .collect();
        println!("  {}: {}", protocol.as_str(), top.join("  "));
    }
    println!("paper: destinations in CN, AD, US, CA most associated\n");

    // ------------------------------------------------- Table 2
    println!("--- Table 2: normalized location of traffic observers ---");
    let hop_table = outcome.hop_table();
    let mut rows = Vec::new();
    for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
        let mut row = vec![protocol.as_str().to_string()];
        for hop in 1..=10u8 {
            row.push(format!("{:.1}", hop_table.percent(protocol, hop)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["proto", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10=dst"],
            &rows
        )
    );

    // ------------------------------------------------- Table 3
    println!("--- Table 3: top networks of on-path traffic observers ---");
    let ips = outcome.observer_ips();
    println!(
        "observer IPs revealed: {} ({} in CN)\n",
        ips.total_ips,
        pct(ips.country_fraction("CN"))
    );
    for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
        if let Some(rows) = ips.top_ases.get(protocol.as_str()) {
            let table: Vec<Vec<String>> = rows
                .iter()
                .take(3)
                .map(|r| {
                    vec![
                        format!("AS{}", r.asn),
                        r.name.clone(),
                        r.paths.to_string(),
                        pct(r.share),
                    ]
                })
                .collect();
            println!("{protocol:?} decoys:");
            println!(
                "{}",
                render_table(&["AS", "Name", "Paths", "Share"], &table)
            );
        }
    }

    // ------------------------------------------------- Figure 4
    println!("--- Figure 4: interval CDF, DNS decoys to Resolver_h ---");
    let fig4 = outcome.fig4_cdf();
    println!("{}", render_series("Resolver_h", &fig4.paper_grid()));
    let others = outcome.fig4_other_resolvers_cdf();
    println!(
        "other 15 resolvers: {} within 1 minute (paper: 95%)\n",
        pct(others.fraction_at(SimDuration::from_mins(1)))
    );
    println!(
        "mass near the 1h mark (cache-refresh check): {} (no spike expected)\n",
        pct(fig4.mass_near(SimDuration::from_hours(1), SimDuration::from_mins(5)))
    );

    // ------------------------------------------------- Figure 5
    println!("--- Figure 5: DNS decoy outcome breakdown (selected) ---");
    let breakdown = outcome.fig5_breakdown();
    let mut rows = Vec::new();
    for dest in ["Yandex", "114DNS", "One DNS", "Google", "self-built"] {
        if let Some(row) = breakdown.iter().find(|b| b.destination == dest) {
            rows.push(vec![
                dest.to_string(),
                pct(row.shadowed_fraction()),
                pct(row.late_http_fraction()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(&["Destination", "shadowed", "HTTP(S) after 1h"], &rows)
    );

    // ------------------------------------------------- Figure 6
    println!("--- Figure 6: origins of unsolicited requests (Resolver_h) ---");
    let origins = outcome.fig6_origins();
    println!(
        "Google (AS15169) share of unsolicited DNS re-queries: {}",
        pct(origins.as_share(15169))
    );
    println!(
        "114DNS origin-AS fan-out: {} ASes",
        origins.origin_as_count("114DNS")
    );
    for dest in ["Yandex", "114DNS"] {
        let rows: Vec<Vec<String>> = origins
            .named_rows(dest, &outcome.world.catalog)
            .into_iter()
            .take(4)
            .map(|(name, count)| vec![name, count.to_string()])
            .collect();
        println!("\n{dest}:");
        println!("{}", render_table(&["Origin AS", "requests"], &rows));
    }
    println!(
        "origin-IP blocklist rates: {:?}\n",
        origins
            .blocklist_rates
            .iter()
            .map(|(k, v)| format!("{k}: {}", pct(*v)))
            .collect::<Vec<_>>()
    );

    // ------------------------------------------------- Figure 7
    println!("--- Figure 7: interval CDFs, HTTP and TLS decoys ---");
    let (http_cdf, tls_cdf) = outcome.fig7_cdfs();
    println!("{}", render_series("HTTP decoys", &http_cdf.paper_grid()));
    println!("{}", render_series("TLS decoys", &tls_cdf.paper_grid()));

    // ------------------------------------------------- §5.1 reuse
    let reuse = outcome.reuse();
    println!("--- §5.1: reuse of retained data (cutoff 1h) ---");
    println!(
        "late-active decoys: {} | >3 requests: {} (paper 51%) | >10: {} (paper 2.4%)\n",
        reuse.late_active_decoys(),
        pct(reuse.fraction_exceeding(3)),
        pct(reuse.fraction_exceeding(10)),
    );

    // ------------------------------------------------- §5 probing
    println!("--- §5: HTTP(S) probing incentives ---");
    for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
        let probing = outcome.probing(protocol);
        println!(
            "{} decoys → enumeration {} | exploits {} | blocklist HTTP {} HTTPS {} DNS {}",
            protocol.as_str(),
            pct(probing.enumeration_fraction()),
            probing.exploits,
            pct(probing.blocklist_rate("HTTP")),
            pct(probing.blocklist_rate("HTTPS")),
            pct(probing.blocklist_rate("DNS")),
        );
    }

    // ------------------------------------------------- §5.2 combos
    println!("--- §5.2: protocol combinations per observer network ---");
    let combos = outcome.observer_combos();
    for (asn, mix) in combos.per_as.iter().take(6) {
        let name = outcome
            .world
            .catalog
            .get(traffic_shadowing::shadow_geo::Asn(*asn))
            .map(|i| i.name.clone())
            .unwrap_or_default();
        let parts: Vec<String> = mix.iter().map(|(p, c)| format!("{p}:{c}")).collect();
        println!("AS{asn} {name}: {}", parts.join(" "));
    }
    println!(
        "overall Decoy-Request combos: {:?}\n",
        outcome.combo_counts()
    );

    // ------------------------------------------------- §5.2 ports
    let scan = outcome.observer_port_scan();
    println!("\n--- §5.2: open ports of on-wire observers ---");
    println!(
        "{} observers scanned | no open ports: {} (paper 92%) | top open port: {:?} (paper 179)\n",
        scan.targets,
        pct(scan.closed_fraction()),
        scan.top_port()
    );

    // ------------------------------------------------- Cases
    println!("--- Case studies ---");
    if let Some(case) = outcome.resolver_case("Yandex") {
        println!(
            "I  Yandex: {} of decoys shadowed (paper >99%), {} trigger HTTP(S) (paper 51%), ≥10d tail {} (paper ~40%)",
            pct(case.shadowed_fraction()),
            pct(case.http_probed_fraction()),
            pct(case.ten_day_tail),
        );
    }
    if let Some(case) = outcome.anycast_case() {
        println!(
            "II 114DNS anycast: CN VPs {} vs elsewhere {} (paper: CN instances shadow, US do not)",
            pct(case.in_country_ratio()),
            pct(case.elsewhere_ratio()),
        );
    }
    let cn = outcome.cn_observer_case();
    println!(
        "III CN observers: {} of on-wire HTTP/TLS observer IPs in CN (paper 79%); {} of probe traffic from CN origins (paper 85%)",
        pct(cn.cn_observer_fraction()),
        pct(cn.cn_origin_fraction),
    );
}

/// The `--metrics-out` / `--journal` artifacts plus the analysis bundle,
/// for the one-shot path (campaign mode writes its cumulative state
/// instead).
fn print_artifacts(
    outcome: &StudyOutcome,
    seed: u64,
    metrics_out: &Option<String>,
    journal_out: &Option<String>,
) {
    // ------------------------------------------------- Telemetry artifacts
    if let (Some(metrics), Some(path)) = (&outcome.metrics, &metrics_out) {
        println!("\n--- telemetry: run metrics ---");
        let rows: Vec<Vec<String>> = metrics
            .summary_rows()
            .into_iter()
            .map(|(metric, value)| vec![metric, value])
            .collect();
        println!("{}", render_table(&["metric", "value"], &rows));
        match metrics.to_json() {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("failed to write metrics to {path}: {e}");
                    std::process::exit(1);
                }
                println!("metrics snapshot written to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialize metrics: {e:?}");
                std::process::exit(1);
            }
        }
    }
    if let (Some(journal), Some(path)) = (&outcome.journal, &journal_out) {
        match traffic_shadowing::shadow_telemetry::to_jsonl(journal) {
            Ok(jsonl) => {
                if let Err(e) = std::fs::write(path, jsonl) {
                    eprintln!("failed to write journal to {path}: {e}");
                    std::process::exit(1);
                }
                println!(
                    "event journal ({} records) written to {path}",
                    journal.len()
                );
            }
            Err(e) => {
                eprintln!("failed to serialize journal: {e:?}");
                std::process::exit(1);
            }
        }
    }

    // ------------------------------------------------- JSON artifact
    if let Ok(json) = outcome.export_bundle().to_json() {
        let path = std::env::temp_dir().join(format!("traffic-shadowing-seed{seed}.json"));
        if std::fs::write(&path, json).is_ok() {
            println!("\nanalysis bundle written to {}", path.display());
        }
    }
}

fn fault_profile(loss_percent: f64, fault_seed: u64) -> Option<FaultProfile> {
    (loss_percent > 0.0).then(|| FaultProfile {
        dns_retry: Some(RetrySpec::STANDARD),
        ..FaultProfile::with_loss(
            &format!("loss{loss_percent}%"),
            loss_percent / 100.0,
            fault_seed,
        )
    })
}

/// Campaign mode: drive the `shadow-serve` wave loop from the CLI,
/// checkpointing after every wave when asked, and restoring from
/// `--resume` before running the remaining waves.
#[allow(clippy::too_many_arguments)]
fn run_campaign(
    seed: u64,
    tiny: bool,
    shards: Option<usize>,
    waves: Option<usize>,
    checkpoint_out: Option<String>,
    resume_from: Option<String>,
    faults: Option<FaultProfile>,
    metrics_out: Option<String>,
    journal_out: Option<String>,
) {
    let loaded =
        resume_from
            .as_deref()
            .map(|path| match CampaignCheckpoint::load(Path::new(path)) {
                Ok(checkpoint) => checkpoint,
                Err(ServeError::MissingCheckpoint(p)) => {
                    eprintln!("--resume: no checkpoint file at {}", p.display());
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("--resume: cannot load checkpoint: {e}");
                    std::process::exit(2);
                }
            });
    let config = ServeConfig {
        study: StudyConfig {
            telemetry: TelemetryOptions::enabled(true),
            faults,
            retain_arrivals: true,
            ..if tiny {
                StudyConfig::tiny(seed)
            } else {
                StudyConfig::standard(seed)
            }
        },
        // An unflagged resume inherits the checkpoint's wave count; a
        // fresh campaign defaults to two waves.
        waves: waves.unwrap_or_else(|| loaded.as_ref().map_or(2, |c| c.header.waves_total)),
        shards: shards.unwrap_or(1),
        checkpoint_path: checkpoint_out.map(PathBuf::from),
        tail_capacity: 4096,
        http_workers: 4,
    };
    let waves_total = config.waves;
    let shard_count = config.shards;
    let mut driver = match loaded {
        Some(checkpoint) => match CampaignDriver::resume(config, checkpoint) {
            Ok(driver) => driver,
            Err(e) => {
                eprintln!("--resume: {e}");
                match e {
                    ServeError::WorldMismatch { .. } => eprintln!(
                        "hint: the checkpoint was written under a different campaign \
                         configuration — check the seed and the --tiny / --loss / --waves flags"
                    ),
                    ServeError::ShardMismatch { .. } => {
                        eprintln!("hint: pass the --shards the checkpoint was written with")
                    }
                    _ => {}
                }
                std::process::exit(2);
            }
        },
        None => CampaignDriver::new(config),
    };

    let started = std::time::Instant::now();
    if driver.waves_done() > 0 {
        println!(
            "=== campaign (seed {seed}, {waves_total} waves, {shard_count} shards; \
             resumed after wave {}) ===\n",
            driver.waves_done()
        );
    } else {
        println!("=== campaign (seed {seed}, {waves_total} waves, {shard_count} shards) ===\n");
    }

    let mut last_outcome = None;
    while let Some(report) = driver.run_next_wave() {
        println!(
            "wave {}/{waves_total} (seed {:#018x}): cumulative arrivals {} | unsolicited {} | \
             sim cursor {} ms",
            report.wave + 1,
            report.wave_seed,
            driver.aggregates().arrivals_seen,
            driver.aggregates().unsolicited_total(),
            driver.sim_cursor_ms(),
        );
        if let Some(path) = driver.config().checkpoint_path.clone() {
            if let Err(e) = driver.save_checkpoint(&path) {
                eprintln!("failed to write checkpoint to {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("  checkpoint written to {}", path.display());
        }
        last_outcome = Some(report.outcome);
    }
    println!(
        "\ncampaign complete in {:?}: {} waves | {} journal records | simulated span {} ms",
        started.elapsed(),
        driver.waves_done(),
        driver.journal().len(),
        driver.sim_cursor_ms(),
    );

    if let Some(path) = &metrics_out {
        match driver.metrics().to_json() {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("failed to write metrics to {path}: {e}");
                    std::process::exit(1);
                }
                println!("cumulative metrics snapshot written to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialize metrics: {e:?}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &journal_out {
        match traffic_shadowing::shadow_telemetry::to_jsonl(driver.journal()) {
            Ok(jsonl) => {
                if let Err(e) = std::fs::write(path, jsonl) {
                    eprintln!("failed to write journal to {path}: {e}");
                    std::process::exit(1);
                }
                println!(
                    "campaign journal ({} records) written to {path}",
                    driver.journal().len()
                );
            }
            Err(e) => {
                eprintln!("failed to serialize journal: {e:?}");
                std::process::exit(1);
            }
        }
    }

    match last_outcome {
        Some(outcome) => {
            println!("\n--- evaluation report, final wave ---\n");
            println!("{}\n", outcome.summary());
            print_report(&outcome);
        }
        None => println!("nothing to run: the checkpoint already covers every wave"),
    }
}
