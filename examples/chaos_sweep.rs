//! Robustness sweep: rerun the campaign under a grid of fault profiles
//! and report how much of the paper's methodology survives.
//!
//! The grid crosses uniform per-link loss {0%, 0.1%, 1%, 5%} with ICMP
//! Time-Exceeded rate limiting off/on (90% suppression). Every profile
//! arms the standard DNS retry policy, so the sweep shows the paper's
//! operational asymmetry: retry-protected DNS decoys keep detecting
//! shadowed paths while one-shot HTTP/TLS decoys fade, and observer-IP
//! revelation (which rides on ICMP replies) degrades monotonically.
//!
//! Run with `cargo run --release --example chaos_sweep [seed]
//! [--shards N] [--parallel M] [--tiny] [--json PATH]`.
//!
//! `--tiny` sweeps the miniature test world instead of the paper-scale
//! one; its handful of problematic paths makes per-cell recall values
//! coarse (one lost path can move a ratio by 10%), so the headline
//! asymmetry checks are only meaningful at full scale.

use traffic_shadowing::robustness::run_matrix;
use traffic_shadowing::shadow_chaos::{FaultProfile, RetrySpec, ScenarioMatrix};
use traffic_shadowing::study::StudyConfig;

const USAGE: &str = "usage: chaos_sweep [seed] [--shards N] [--parallel M] [--tiny] [--json PATH]";

const LOSS_LEVELS: [f64; 4] = [0.0, 0.001, 0.01, 0.05];
const ICMP_LIMIT: [f64; 2] = [0.0, 0.9];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 7;
    let mut shards: usize = 1;
    let mut parallel: usize = 4;
    let mut tiny = false;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    None | Some(0) => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(k) => shards = k,
                }
                i += 2;
            }
            "--parallel" => {
                match args.get(i + 1).and_then(|s| s.parse().ok()) {
                    None | Some(0) => {
                        eprintln!("--parallel needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(m) => parallel = m,
                }
                i += 2;
            }
            "--tiny" => {
                tiny = true;
                i += 1;
            }
            "--json" => {
                match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => json_out = Some(p.clone()),
                    _ => {
                        eprintln!("--json needs a file path");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            raw => {
                if let Ok(s) = raw.parse() {
                    seed = s;
                } else {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
                i += 1;
            }
        }
    }

    let template = FaultProfile {
        dns_retry: Some(RetrySpec::STANDARD),
        ..FaultProfile::baseline("template")
    };
    let matrix = ScenarioMatrix::loss_grid(&LOSS_LEVELS, &ICMP_LIMIT, seed ^ 0xFA17, &template);
    let mut config = if tiny {
        StudyConfig::tiny(seed)
    } else {
        StudyConfig::standard(seed)
    };
    // Trace a deeper slice of detected paths than the default cap: as loss
    // shifts *which* decoys detect, a tight cap makes the Phase II path
    // set churn, and that churn (not the faults) would dominate
    // observer-IP recall. 200 per protocol keeps every observer on
    // multiple traced paths at an affordable Phase II cost.
    config.trace_cap_per_protocol = 200;

    println!(
        "=== chaos sweep (seed {seed}, {} cells, {shards} shard(s), {parallel} workers) ===\n",
        matrix.len()
    );
    let started = std::time::Instant::now();
    let report = run_matrix(&config, &matrix, shards, parallel);
    println!(
        "baseline: DNS {:.1}% | HTTP {:.1}% | TLS {:.1}% problematic; \
         {} observer IPs; {}/{} paths localized  ({:?})\n",
        report.baseline.dns_ratio * 100.0,
        report.baseline.http_ratio * 100.0,
        report.baseline.tls_ratio * 100.0,
        report.baseline.observer_ips,
        report.baseline.localized_paths,
        report.baseline.traced_paths,
        started.elapsed(),
    );
    println!("{}", report.render());

    // The two properties the sweep exists to demonstrate.
    let no_limit: Vec<_> = report
        .cells
        .iter()
        .filter(|c| !c.metrics.name.contains("icmplimit"))
        .collect();
    let monotone = no_limit
        .windows(2)
        .all(|w| w[1].observer_ip_recall <= w[0].observer_ip_recall);
    println!(
        "\nobserver-IP recall monotonically degrades with loss: {}",
        if monotone { "yes" } else { "NO" }
    );
    let dns_slower = no_limit
        .iter()
        .all(|c| c.dns_recall >= c.http_recall && c.dns_recall >= c.tls_recall);
    println!(
        "retry-protected DNS detection degrades no faster than one-shot HTTP/TLS: {}",
        if dns_slower { "yes" } else { "NO" }
    );

    if let Some(path) = json_out {
        match report.to_json() {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("failed to write report to {path}: {e}");
                    std::process::exit(1);
                }
                println!("robustness report written to {path}");
            }
            Err(e) => {
                eprintln!("failed to serialize report: {e:?}");
                std::process::exit(1);
            }
        }
    }
}
