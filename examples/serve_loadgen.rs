//! Concurrent read load against a running `serve_campaign` daemon:
//! N client threads hammer one JSON endpoint for a fixed window and
//! report throughput and latency percentiles.
//!
//! Run with `cargo run --release --example serve_loadgen -- --addr
//! 127.0.0.1:7070 [--clients N] [--seconds S] [--path /api/aggregates]`.

use shadow_serve::client::http_get;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str =
    "usage: serve_loadgen --addr HOST:PORT [--clients N] [--seconds S] [--path /api/...]";

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((sorted_micros.len() - 1) as f64 * p).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr: Option<SocketAddr> = None;
    let mut clients: usize = 8;
    let mut seconds: u64 = 5;
    let mut path = "/api/aggregates".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                match args.get(i + 1).and_then(|a| a.parse().ok()) {
                    None => {
                        eprintln!("--addr needs HOST:PORT");
                        std::process::exit(2);
                    }
                    some => addr = some,
                }
                i += 2;
            }
            "--clients" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    None | Some(0) => {
                        eprintln!("--clients needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(n) => clients = n,
                }
                i += 2;
            }
            "--seconds" => {
                match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    None | Some(0) => {
                        eprintln!("--seconds needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(s) => seconds = s,
                }
                i += 2;
            }
            "--path" => {
                match args.get(i + 1) {
                    Some(p) if p.starts_with('/') => path = p.clone(),
                    _ => {
                        eprintln!("--path needs an absolute request path");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let addr = addr.unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    println!("loadgen: {clients} clients x {seconds}s against http://{addr}{path}");
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let path = path.clone();
            std::thread::spawn(move || {
                let mut latencies_us = Vec::new();
                let mut errors = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let begun = Instant::now();
                    match http_get(addr, &path) {
                        Ok((200, _)) => latencies_us.push(begun.elapsed().as_micros() as u64),
                        Ok((code, _)) => {
                            eprintln!("HTTP {code} from {path}");
                            errors += 1;
                        }
                        Err(_) => errors += 1,
                    }
                }
                (latencies_us, errors)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_secs(seconds));
    stop.store(true, Ordering::Release);

    let mut all_us = Vec::new();
    let mut errors = 0u64;
    for worker in workers {
        let (latencies, errs) = worker.join().expect("client thread");
        all_us.extend(latencies);
        errors += errs;
    }
    let elapsed = started.elapsed().as_secs_f64();
    all_us.sort_unstable();
    println!(
        "{} reads in {elapsed:.2}s = {:.0} reads/sec | p50 {}us p99 {}us max {}us | {errors} errors",
        all_us.len(),
        all_us.len() as f64 / elapsed,
        percentile(&all_us, 0.50),
        percentile(&all_us, 0.99),
        all_us.last().copied().unwrap_or(0),
    );
    if errors > 0 {
        std::process::exit(1);
    }
}
