//! The §6 mitigation ablation: what happens to the shadowing landscape when
//! decoys use encrypted protocols?
//!
//! The paper's discussion predicts:
//!  * encryption blinds *on-path* observers ("prevents data from being
//!    observed on the wire");
//!  * it does **not** stop the destination ("especially for DNS", where the
//!    resolver decrypts and sees everything);
//!  * ECH is needed because plain TLS still leaks the SNI.
//!
//! This example runs two identical campaigns — clear-text vs. encrypted
//! (DoQ-style DNS + ECH TLS) — on identically-seeded worlds and compares.
//!
//! Run with `cargo run --release --example encryption_mitigation [seed]`.

use shadow_analysis::report::pct;
use traffic_shadowing::shadow_analysis;
use traffic_shadowing::shadow_core::campaign::Phase1Config;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_core::phase2::Phase2Config;
use traffic_shadowing::shadow_core::world::WorldConfig;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

fn run(seed: u64, encrypted: bool) -> StudyOutcome {
    Study::run(StudyConfig {
        world: WorldConfig::standard(seed),
        phase1: Phase1Config {
            encrypted_dns: encrypted,
            ech_tls: encrypted,
            ..Phase1Config::default()
        },
        phase2: Phase2Config::default(),
        trace_cap_per_protocol: 0, // landscape comparison only
        run_phase2: false,
        telemetry: traffic_shadowing::shadow_core::executor::TelemetryOptions::disabled(),
        faults: None,
        retain_arrivals: true,
    })
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    println!("running clear-text campaign (seed {seed})...");
    let clear = run(seed, false);
    println!("running encrypted campaign (same world, DoQ + ECH)...\n");
    let encrypted = run(seed, true);

    let clear_ls = clear.landscape();
    let enc_ls = encrypted.landscape();

    println!("=== §6 ablation: clear-text vs encrypted decoys ===\n");
    println!("{:<28} {:>12} {:>12}", "", "clear-text", "encrypted");
    for (label, dest) in [
        ("Yandex (resolver-side)", "Yandex"),
        ("One DNS (resolver-side)", "One DNS"),
        ("DNS PAI (resolver-side)", "DNS PAI"),
        ("Google (benign)", "Google"),
    ] {
        println!(
            "{:<28} {:>12} {:>12}",
            label,
            pct(clear_ls.destination_ratio(dest, DecoyProtocol::Dns)),
            pct(enc_ls.destination_ratio(dest, DecoyProtocol::Dns)),
        );
    }
    println!(
        "{:<28} {:>12} {:>12}",
        "TLS paths (SNI / ECH)",
        pct(clear_ls.protocol_ratio(DecoyProtocol::Tls)),
        pct(enc_ls.protocol_ratio(DecoyProtocol::Tls)),
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "HTTP paths (unencrypted)",
        pct(clear_ls.protocol_ratio(DecoyProtocol::Http)),
        pct(enc_ls.protocol_ratio(DecoyProtocol::Http)),
    );

    // On-wire DNS observers: unsolicited requests on *benign*-resolver
    // paths arriving well past the retry window can only come from on-path
    // DPI (benign resolvers retry within a minute). Encryption must zero
    // these out.
    let wire_evidence = |outcome: &StudyOutcome| {
        outcome
            .correlated
            .iter()
            .filter(|r| {
                r.label.is_unsolicited()
                    && r.decoy.protocol == DecoyProtocol::Dns
                    && r.interval
                        > traffic_shadowing::shadow_netsim::time::SimDuration::from_mins(10)
                    && {
                        let name = outcome.dest_names.get(&r.decoy.dst());
                        matches!(
                            name.map(String::as_str),
                            Some("Google")
                                | Some("Cloudflare")
                                | Some("Quad9")
                                | Some("OpenDNS")
                                | Some("Level3")
                                | Some("Hurricane")
                                | Some("SafeDNS")
                        )
                    }
            })
            .count()
    };
    println!(
        "\nwire-observer evidence on benign-resolver paths: {} → {}",
        wire_evidence(&clear),
        wire_evidence(&encrypted)
    );

    println!("\nconclusions (cf. paper §6):");
    println!("  * encrypted DNS blinds on-path observers, but resolver-side shadowing persists");
    println!("  * ECH removes the clear-text SNI, killing TLS shadowing entirely");
    println!("  * unencrypted HTTP remains exposed either way");
}
