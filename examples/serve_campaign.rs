//! The always-on measurement daemon: run a multi-wave campaign in the
//! background while serving its live state over HTTP.
//!
//! Run with `cargo run --release --example serve_campaign -- [seed]
//! [--tiny] [--shards N] [--waves N] [--bind ADDR] [--checkpoint PATH]
//! [--resume PATH] [--linger SECS]`.
//!
//! Endpoints (all JSON unless noted):
//!   /api/status        campaign progress + tail backpressure counters
//!   /api/aggregates    cumulative correlation aggregates (portable form)
//!   /api/metrics       cumulative merged telemetry metrics
//!   /api/robustness    robustness cell of the latest completed wave
//!   /api/journal/tail  live journal stream (Server-Sent Events)
//!
//! `--checkpoint PATH` persists a [`shadow_serve::CampaignCheckpoint`]
//! after every wave; `--resume PATH` restores one and runs only the
//! remaining waves. `--linger SECS` keeps the HTTP surface up that long
//! after the last wave so late readers can still fetch the final state
//! (0, the default, shuts down as soon as the campaign ends).

use shadow_serve::{serve, CampaignCheckpoint, CampaignDriver, ServeConfig, ServeError};
use std::path::{Path, PathBuf};
use traffic_shadowing::shadow_core::executor::TelemetryOptions;
use traffic_shadowing::study::StudyConfig;

const USAGE: &str = "usage: serve_campaign [seed] [--tiny] [--shards N] [--waves N] \
     [--bind ADDR] [--checkpoint PATH] [--resume PATH] [--linger SECS]";

fn path_arg(args: &[String], i: usize, flag: &str) -> String {
    match args.get(i + 1) {
        Some(p) if !p.is_empty() && !p.starts_with("--") => p.clone(),
        _ => {
            eprintln!("{flag} needs a non-empty file path");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 7;
    let mut tiny = false;
    let mut shards: usize = 1;
    let mut waves: Option<usize> = None;
    let mut bind = "127.0.0.1:7070".to_string();
    let mut checkpoint_out: Option<String> = None;
    let mut resume_from: Option<String> = None;
    let mut linger_secs: u64 = 0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tiny" => {
                tiny = true;
                i += 1;
            }
            "--shards" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    None | Some(0) => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(k) => shards = k,
                }
                i += 2;
            }
            "--waves" => {
                match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    None | Some(0) => {
                        eprintln!("--waves needs a positive integer");
                        std::process::exit(2);
                    }
                    Some(w) => waves = Some(w),
                }
                i += 2;
            }
            "--bind" => {
                match args.get(i + 1) {
                    Some(a) if !a.is_empty() && !a.starts_with("--") => bind = a.clone(),
                    _ => {
                        eprintln!("--bind needs an address like 127.0.0.1:7070");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--checkpoint" => {
                checkpoint_out = Some(path_arg(&args, i, "--checkpoint"));
                i += 2;
            }
            "--resume" => {
                resume_from = Some(path_arg(&args, i, "--resume"));
                i += 2;
            }
            "--linger" => {
                match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    None => {
                        eprintln!("--linger needs a number of seconds");
                        std::process::exit(2);
                    }
                    Some(s) => linger_secs = s,
                }
                i += 2;
            }
            raw => {
                if let Ok(s) = raw.parse() {
                    seed = s;
                } else {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
                i += 1;
            }
        }
    }

    let loaded =
        resume_from
            .as_deref()
            .map(|path| match CampaignCheckpoint::load(Path::new(path)) {
                Ok(checkpoint) => checkpoint,
                Err(ServeError::MissingCheckpoint(p)) => {
                    eprintln!("--resume: no checkpoint file at {}", p.display());
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("--resume: cannot load checkpoint: {e}");
                    std::process::exit(2);
                }
            });
    let config = ServeConfig {
        study: StudyConfig {
            telemetry: TelemetryOptions::enabled(true),
            retain_arrivals: true,
            ..if tiny {
                StudyConfig::tiny(seed)
            } else {
                StudyConfig::standard(seed)
            }
        },
        waves: waves.unwrap_or_else(|| loaded.as_ref().map_or(2, |c| c.header.waves_total)),
        shards,
        checkpoint_path: checkpoint_out.map(PathBuf::from),
        ..ServeConfig::tiny(seed)
    };
    let waves_total = config.waves;
    let driver = match loaded {
        Some(checkpoint) => match CampaignDriver::resume(config, checkpoint) {
            Ok(driver) => driver,
            Err(e) => {
                eprintln!("--resume: {e}");
                std::process::exit(2);
            }
        },
        None => CampaignDriver::new(config),
    };
    let resumed_at = driver.waves_done();

    let mut handle = match serve(driver, &bind) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let addr = handle.addr();
    println!("shadow-serve: seed {seed}, {waves_total} waves, {shards} shard(s) on http://{addr}");
    if resumed_at > 0 {
        println!("resumed after wave {resumed_at}");
    }
    println!("  http://{addr}/api/status");
    println!("  http://{addr}/api/aggregates");
    println!("  http://{addr}/api/metrics");
    println!("  http://{addr}/api/robustness");
    println!("  http://{addr}/api/journal/tail   (SSE)");

    let driver = handle.join_campaign();
    if let Some(driver) = &driver {
        println!(
            "campaign complete: {} waves | arrivals {} | unsolicited {} | {} journal records",
            driver.waves_done(),
            driver.aggregates().arrivals_seen,
            driver.aggregates().unsolicited_total(),
            driver.journal().len(),
        );
        if let Some(path) = &driver.config().checkpoint_path {
            println!("final checkpoint at {}", path.display());
        }
    }
    if linger_secs > 0 {
        println!("serving the final state for {linger_secs}s more (--linger)");
        std::thread::sleep(std::time::Duration::from_secs(linger_secs));
    }
    handle.shutdown();
}
