//! Quickstart: run a miniature end-to-end study and print the headline
//! numbers. See `full_campaign.rs` for the paper-scale reproduction.

use traffic_shadowing::study::{Study, StudyConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let started = std::time::Instant::now();
    let outcome = Study::run(StudyConfig::tiny(seed));
    println!("=== traffic-shadowing quickstart (seed {seed}) ===\n");
    println!("{}", outcome.summary());
    println!("\nYandex case study:");
    if let Some(case) = outcome.resolver_case("Yandex") {
        println!(
            "  decoys {} | shadowed {:.1}% | HTTP(S)-probed {:.1}% | ≥10d tail {:.1}%",
            case.decoys,
            case.shadowed_fraction() * 100.0,
            case.http_probed_fraction() * 100.0,
            case.ten_day_tail * 100.0
        );
    }
    println!("\n(elapsed: {:?})", started.elapsed());
}
