//! Quickstart: run a miniature end-to-end study and print the headline
//! numbers. See `full_campaign.rs` for the paper-scale reproduction.

use traffic_shadowing::study::{Study, StudyConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let started = std::time::Instant::now();
    // The default configuration streams: arrivals are classified at capture
    // time into compact per-shard aggregates, and no raw arrival vector is
    // retained anywhere.
    let outcome = Study::run(StudyConfig::tiny(seed));
    println!("=== traffic-shadowing quickstart (seed {seed}) ===\n");
    println!("{}", outcome.summary());
    println!("\nunsolicited requests by Decoy-Request combination:");
    for (combo, n) in outcome.combo_counts() {
        println!("  {combo:<12} {n}");
    }
    let fig4 = outcome.fig4_hist();
    if !fig4.is_empty() {
        println!("\nResolver_h retention (Figure 4 grid, streamed histogram):");
        for (label, fraction) in
            traffic_shadowing::shadow_analysis::temporal::histogram_paper_grid(&fig4)
        {
            println!("  ≤{label:<5} {:.1}%", fraction * 100.0);
        }
    }
    println!("\n(elapsed: {:?})", started.elapsed());
}
