//! Phase II walkthrough: pick one problematic path and traceroute it hop by
//! hop, printing what each TTL revealed — the Figure 2 mechanism end to end.
//!
//! Run with `cargo run --release --example locate_observers [seed]`.

use traffic_shadowing::shadow_core::campaign::{CampaignRunner, Phase1Config};
use traffic_shadowing::shadow_core::correlate::Correlator;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::phase2::{paths_to_trace, Phase2Config, Phase2Runner};
use traffic_shadowing::shadow_core::world::{World, WorldConfig};
use traffic_shadowing::shadow_geo::db::as_info_of;
use traffic_shadowing::shadow_netsim::time::SimDuration;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let mut world = World::build(WorldConfig::tiny(seed));
    NoiseFilter::run_and_apply(&mut world);

    // Phase I, HTTP decoys only: find paths with on-wire observers.
    let phase1 = CampaignRunner::run_phase1(
        &mut world,
        &Phase1Config {
            send_dns: true,
            send_http: true,
            send_tls: false,
            grace: SimDuration::from_days(20),
            ..Phase1Config::default()
        },
    );
    let correlator = Correlator::new(&phase1.registry);
    let correlated = correlator.correlate(&phase1.arrivals);
    let traced = paths_to_trace(&correlated, &phase1.registry, 6);
    if traced.is_empty() {
        println!("no problematic paths with this seed; try another");
        return;
    }
    println!(
        "phase I found {} problematic paths; tracing them\n",
        traced.len()
    );

    let (results, phase2_data) = Phase2Runner::run(
        &mut world,
        &traced,
        &Phase2Config {
            max_ttl: 24,
            grace: SimDuration::from_days(10),
            ..Phase2Config::default()
        },
    );

    for result in &results {
        let dest_label = world
            .dns_destinations
            .iter()
            .find(|d| d.addr == result.path.dst)
            .map(|d| d.dest.name.to_string())
            .unwrap_or_else(|| result.path.dst.to_string());
        println!(
            "path: VP{} → {} ({:?} decoys)",
            result.path.vp.0, dest_label, result.path.protocol
        );
        for (hop, router) in &result.revealed_routers {
            let label = as_info_of(&world.geo, &world.catalog, *router)
                .map(|i| format!("{} ({})", i.asn, i.name))
                .unwrap_or_else(|| "unknown AS".to_string());
            let marker = if Some(*hop) == result.observer_hop {
                "  ← observer"
            } else {
                ""
            };
            println!("  hop {hop:>2}: {router:<15} {label}{marker}");
        }
        match (
            result.observer_hop,
            result.dest_distance,
            result.normalized_hop,
        ) {
            (Some(hop), Some(dist), Some(norm)) => println!(
                "  observer at hop {hop} of {dist} (normalized {norm}/10{})\n",
                if norm == 10 { " = destination" } else { "" }
            ),
            (Some(hop), _, _) => {
                println!("  observer at hop {hop}, destination distance unknown\n")
            }
            _ => println!("  no observer triggered during the sweep\n"),
        }
    }

    let protocols: Vec<_> = results
        .iter()
        .filter_map(|r| r.normalized_hop.map(|h| (r.path.protocol, h)))
        .collect();
    let at_dest = protocols.iter().filter(|(_, h)| *h == 10).count();
    let dns_total = protocols
        .iter()
        .filter(|(p, _)| *p == DecoyProtocol::Dns)
        .count();
    println!(
        "summary: {} paths localized, {at_dest} at the destination ({} DNS paths)",
        protocols.len(),
        dns_total
    );

    // The sweep's Time-Exceeded arrivals double as topology intelligence:
    // Phase II folds them into a router graph as it runs (the same
    // structure `full_campaign --topology-report` cross-validates), so the
    // hop-by-hop walkthrough above can close with the AS-level picture.
    let graph = phase2_data
        .router_graph
        .finalize(|addr| world.geo.asn_of(addr).map(|asn| asn.0));
    println!(
        "\nrouter graph from the sweep: {} routers, {} IP links, {} AS adjacencies",
        graph.routers.len(),
        graph.links.len(),
        graph.as_links.len()
    );
    for link in graph.as_links.iter().take(8) {
        println!(
            "  AS{} ↔ AS{} ({} IP link{})",
            link.a,
            link.b,
            link.links,
            if link.links == 1 { "" } else { "s" }
        );
    }
    if graph.as_links.len() > 8 {
        println!("  … {} more adjacencies", graph.as_links.len() - 8);
    }
}
