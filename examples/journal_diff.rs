//! `journal diff`: compare two event journals written by
//! `full_campaign --journal`.
//!
//! Both journals are filtered to world events (meta records like
//! `ShardMerged` describe run structure, which legitimately differs
//! between shard counts), aligned on the total event key order, and the
//! first divergence is printed with both sides' records.
//!
//! Run with `cargo run --example journal_diff left.jsonl right.jsonl`.
//! Exit codes: 0 identical, 1 diverged, 2 usage / read / parse error.

use traffic_shadowing::shadow_telemetry::{diff, from_jsonl, JournalRecord};

fn load(path: &str) -> Vec<JournalRecord> {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match from_jsonl(&raw) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [left_path, right_path] = args.as_slice() else {
        eprintln!("usage: journal_diff LEFT.jsonl RIGHT.jsonl");
        std::process::exit(2);
    };
    let left = load(left_path);
    let right = load(right_path);
    let report = diff(&left, &right);
    println!("{}", report.render());
    std::process::exit(if report.identical() { 0 } else { 1 });
}
