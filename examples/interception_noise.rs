//! Appendix E in action: the pair-resolver test detecting on-path DNS
//! interception, and the TTL pre-flight catching a VPN that rewrites TTLs.
//!
//! Run with `cargo run --release --example interception_noise [seed]`.

use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::world::{World, WorldConfig};
use traffic_shadowing::shadow_vantage::vp::VantagePointHost;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut world = World::build(WorldConfig {
        interceptors: 2,
        ..WorldConfig::standard(seed)
    });
    let before = world.platform.vps.len();
    println!("platform before pre-flight: {before} VPs");
    println!(
        "ground truth: {} interception middleboxes planted on CN cloud edges\n",
        world.ground_truth.interceptor_nodes.len()
    );

    // Sabotage one VP to demonstrate the TTL pre-flight: its VPN egress
    // rewrites every outgoing TTL to 64 (the defect the paper tests for
    // before integrating providers).
    let victim = world.platform.vps[0].clone();
    world.engine.add_host(
        victim.node,
        Box::new(VantagePointHost::new(victim.addr, 1, Some(64))),
    );
    println!(
        "sabotaged VP{} ({}, {}) with a TTL-rewriting egress",
        victim.id.0, victim.provider, victim.country
    );

    // --- TTL pre-flight -------------------------------------------------
    let deltas = NoiseFilter::ttl_preflight(&mut world);
    let expected = NoiseFilter::expected_delta();
    let flagged: Vec<_> = deltas.iter().filter(|&&(_, d)| d != expected).collect();
    println!(
        "\nTTL pre-flight: {} VPs measured, expected Δ={expected}, {} flagged:",
        deltas.len(),
        flagged.len()
    );
    for (id, delta) in &flagged {
        println!("  VP{}: observed Δ={delta} → excluded (TTL rewrite)", id.0);
    }

    // --- pair-resolver test ---------------------------------------------
    let intercepted = NoiseFilter::pair_resolver_test(&mut world);
    println!(
        "\npair-resolver test: {} VPs answered on pair addresses (DNS interception on path)",
        intercepted.len()
    );
    let mut by_country: std::collections::BTreeMap<String, usize> = Default::default();
    for id in &intercepted {
        if let Some(vp) = world.platform.get(*id) {
            *by_country.entry(vp.country.to_string()).or_default() += 1;
        }
    }
    for (country, count) in &by_country {
        println!("  {country}: {count} VPs");
    }

    // --- apply -----------------------------------------------------------
    let mut platform = std::mem::take(&mut world.platform);
    platform.vet_ttl_rewrite(&deltas, expected);
    platform.exclude_intercepted(&intercepted);
    world.platform = platform;
    println!(
        "\nplatform after pre-flight: {} VPs ({} excluded)",
        world.platform.vps.len(),
        world.platform.excluded.len()
    );
    println!("exclusion reasons:");
    let mut reasons: std::collections::BTreeMap<String, usize> = Default::default();
    for (_, reason) in &world.platform.excluded {
        *reasons.entry(format!("{reason:?}")).or_default() += 1;
    }
    for (reason, count) in reasons {
        println!("  {reason}: {count}");
    }
}
