//! The Section 5.1 case studies: Yandex (case I) and the 114DNS anycast
//! split (case II), reproduced on a mid-size world.
//!
//! Run with `cargo run --release --example resolver_case_study [seed]`.

use shadow_analysis::report::pct;
use traffic_shadowing::shadow_analysis;
use traffic_shadowing::shadow_core::campaign::Phase1Config;
use traffic_shadowing::shadow_core::phase2::Phase2Config;
use traffic_shadowing::shadow_core::world::WorldConfig;
use traffic_shadowing::shadow_netsim::time::SimDuration;
use traffic_shadowing::study::{Study, StudyConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(23);
    // DNS-only campaign: the cases are about resolver behaviour.
    let config = StudyConfig {
        world: WorldConfig {
            vps_global: 60,
            vps_cn: 60,
            tranco_sites: 6,
            ..WorldConfig::standard(seed)
        },
        phase1: Phase1Config {
            send_http: false,
            send_tls: false,
            grace: SimDuration::from_days(35),
            ..Phase1Config::default()
        },
        phase2: Phase2Config::default(),
        trace_cap_per_protocol: 10,
        run_phase2: false,
        telemetry: traffic_shadowing::shadow_core::executor::TelemetryOptions::disabled(),
        faults: None,
        // The case studies are sample-level analyses.
        retain_arrivals: true,
    };
    let outcome = Study::run(config);

    println!("=== Case study I: Yandex ===");
    for name in ["Yandex", "One DNS", "DNS PAI", "VERCARA"] {
        if let Some(case) = outcome.resolver_case(name) {
            println!(
                "{:<10} decoys {:>5} | shadowed {:>6} | HTTP(S)-probed {:>6} | median interval {:>10} | ≥10d tail {:>6}",
                case.destination,
                case.decoys,
                pct(case.shadowed_fraction()),
                pct(case.http_probed_fraction()),
                case.median_interval_ms
                    .map(|ms| SimDuration::from_millis(ms).to_string())
                    .unwrap_or_else(|| "-".into()),
                pct(case.ten_day_tail),
            );
        }
    }
    println!("(paper: Yandex >99% shadowed, 51% → HTTP/HTTPS, data retained for days)\n");

    println!("=== Case study II: 114DNS anycast ===");
    if let Some(case) = outcome.anycast_case() {
        println!(
            "CN vantage points:     {:>3}/{:<3} paths problematic ({})",
            case.in_country.0,
            case.in_country.1,
            pct(case.in_country_ratio())
        );
        println!(
            "elsewhere:             {:>3}/{:<3} paths problematic ({})",
            case.elsewhere.0,
            case.elsewhere.1,
            pct(case.elsewhere_ratio())
        );
        println!("(paper: decoys reaching the CN instances trigger unsolicited requests; US instances do not)");
    }

    println!("\n=== Benign control group ===");
    for name in ["Google", "Cloudflare", "Quad9", "self-built", "a.root"] {
        if let Some(case) = outcome.resolver_case(name) {
            println!(
                "{:<11} shadowed {:>6} | HTTP(S)-probed {:>6}",
                case.destination,
                pct(case.shadowed_fraction()),
                pct(case.http_probed_fraction()),
            );
        }
    }
}
