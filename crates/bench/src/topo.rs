//! LPM-lookup fixture behind `BENCH_topo.json`: the standard world's geo
//! database driven through both lookup paths — the old sorted-vec backward
//! scan (kept as [`GeoScanIndex`], the correctness reference) and the
//! stride-4 treebitmap trie that now backs `GeoDb::lookup` — over the same
//! deterministic probe stream, with every answer cross-checked.
//!
//! The trajectory record also carries an end-to-end rate: the Phase II
//! router-graph pipeline (fold every Time-Exceeded observation, finalize
//! with a trie ASN lookup per router) replayed from the campaign's real
//! hop observations, in hops/sec.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::path::Path;
use std::time::Instant;
use traffic_shadowing::shadow_topo::{ProbePath, RouterGraphBuilder};

/// Deterministic probe seed — the same addresses every run, every machine.
const PROBE_SEED: u64 = 0x10C4_11A8_1E5E_ED01;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A probe stream biased toward covered address space: three in four
/// probes land inside a random registered prefix (the hot case — routed
/// addresses), the rest are uniform over the full 32-bit space (misses
/// and default-route territory).
pub fn gen_probes(db: &traffic_shadowing::shadow_geo::GeoDb, count: usize) -> Vec<Ipv4Addr> {
    let prefixes: Vec<(u32, u32)> = db
        .iter()
        .map(|r| (r.prefix.base_u32(), u32::from(r.prefix.len())))
        .collect();
    let mut state = PROBE_SEED;
    (0..count)
        .map(|_| {
            let roll = splitmix64(&mut state);
            let addr = if prefixes.is_empty() || roll.is_multiple_of(4) {
                roll as u32
            } else {
                let (base, len) = prefixes[(roll >> 32) as usize % prefixes.len()];
                let host_bits = 32 - len;
                let offset = if host_bits == 0 {
                    0
                } else {
                    (splitmix64(&mut state) as u32) & ((1u64 << host_bits) as u32).wrapping_sub(1)
                };
                base | offset
            };
            Ipv4Addr::from(addr)
        })
        .collect()
}

/// One trajectory measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoMetrics {
    pub prefixes: usize,
    pub probes: usize,
    pub scan_elapsed_ns: u64,
    pub trie_elapsed_ns: u64,
    pub scan_lookups_per_sec: f64,
    pub trie_lookups_per_sec: f64,
    pub trie_over_scan: f64,
    /// Router-graph pipeline rate: Time-Exceeded observations folded and
    /// finalized (with a trie ASN lookup per router) per second.
    pub hop_observations: u64,
    pub hops_per_sec: f64,
}

/// The committed perf-trajectory record (`BENCH_topo.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TopoRecord {
    pub bench: String,
    pub baseline: Option<TopoMetrics>,
    pub current: TopoMetrics,
    /// Current trie lookups/sec over the recorded baseline's.
    pub speedup_trie_per_sec: Option<f64>,
}

/// Run both lookup paths over the shared standard-campaign geo db,
/// cross-checking every answer, then replay the router-graph pipeline.
pub fn run_topo(probe_count: usize, fold_rounds: usize) -> TopoMetrics {
    let outcome = crate::study();
    let db = &outcome.world.geo;
    let probes = gen_probes(db, probe_count);
    let scan = db.scan_index();

    // Both paths fold their answers into a checksum so the loops cannot
    // be dead-code-eliminated; timing takes the fastest of three rounds
    // (the standard noise shield for one-shot measurements).
    let time_best = |f: &dyn Fn() -> u64| {
        let mut best = std::time::Duration::MAX;
        let mut sum = 0;
        for _ in 0..3 {
            let started = Instant::now();
            sum = f();
            best = best.min(started.elapsed());
        }
        (best, sum)
    };
    let (scan_elapsed, scan_sum) = time_best(&|| {
        let mut sum = 0u64;
        for &addr in &probes {
            if let Some(r) = scan.lookup(addr) {
                sum = sum.wrapping_add(u64::from(r.asn.0));
            }
        }
        sum
    });
    let (trie_elapsed, trie_sum) = time_best(&|| {
        let mut sum = 0u64;
        for &addr in &probes {
            if let Some(r) = db.lookup(addr) {
                sum = sum.wrapping_add(u64::from(r.asn.0));
            }
        }
        sum
    });
    assert_eq!(
        scan_sum, trie_sum,
        "trie must agree with the scan reference on every probe"
    );

    // End-to-end router-graph pipeline: replay the campaign's real hop
    // observations through fold + finalize, `fold_rounds` times.
    let observations: Vec<(ProbePath, u8, Ipv4Addr)> = outcome
        .phase2
        .as_ref()
        .map(|data| {
            data.router_graph
                .iter()
                .flat_map(|(path, hops)| {
                    hops.iter().map(move |(&ttl, &router)| (*path, ttl, router))
                })
                .collect()
        })
        .unwrap_or_default();
    let started = Instant::now();
    let mut folded = 0u64;
    for _ in 0..fold_rounds.max(1) {
        let mut builder = RouterGraphBuilder::new();
        for &(path, ttl, router) in &observations {
            builder.observe(path, ttl, router);
        }
        let graph = builder.finalize(|addr| db.asn_of(addr).map(|asn| asn.0));
        folded += graph.observations;
    }
    let fold_elapsed = started.elapsed();

    let per_sec = |n: f64, secs: f64| if secs > 0.0 { n / secs } else { 0.0 };
    let scan_lookups_per_sec = per_sec(probes.len() as f64, scan_elapsed.as_secs_f64());
    let trie_lookups_per_sec = per_sec(probes.len() as f64, trie_elapsed.as_secs_f64());
    TopoMetrics {
        prefixes: db.len(),
        probes: probes.len(),
        scan_elapsed_ns: scan_elapsed.as_nanos() as u64,
        trie_elapsed_ns: trie_elapsed.as_nanos() as u64,
        scan_lookups_per_sec,
        trie_lookups_per_sec,
        trie_over_scan: trie_lookups_per_sec / scan_lookups_per_sec.max(1e-9),
        hop_observations: folded,
        hops_per_sec: per_sec(folded as f64, fold_elapsed.as_secs_f64()),
    }
}

pub fn topo_json_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_topo.json")
}

/// Fold `current` into the committed record: keep the recorded baseline
/// (or seed it from `current` on first run) and derive the speedup.
pub fn record_topo_json(path: &Path, bench: &str, current: TopoMetrics) -> TopoRecord {
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<TopoRecord>(&text).ok())
        .and_then(|old| old.baseline)
        .or_else(|| Some(current.clone()));
    let speedup = baseline
        .as_ref()
        .map(|b| current.trie_lookups_per_sec / b.trie_lookups_per_sec.max(1e-9));
    let record = TopoRecord {
        bench: bench.to_string(),
        baseline,
        current,
        speedup_trie_per_sec: speedup,
    };
    let text = serde_json::to_string_pretty(&record).expect("bench record serializes");
    std::fs::write(path, text + "\n").expect("bench record written");
    record
}
