//! The engine hot-path fixture: a router chain with a DPI tap on every hop,
//! fed a stream of DNS/HTTP/TLS decoys. This isolates exactly the cost the
//! zero-copy fast path targets — per-hop event scheduling, payload handling
//! and tap-side protocol extraction — with no campaign logic, honeypots or
//! probe traffic on top (the replay policy triggers 0% of observations).
//!
//! [`run_hot_path`] returns wall-clock metrics; [`record_bench_json`]
//! folds them into a machine-readable JSON trajectory file so successive
//! PRs can compare hops/sec against the recorded baseline.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::path::Path;
use std::time::Instant;
use traffic_shadowing::shadow_geo::{Asn, Region};
use traffic_shadowing::shadow_netsim::engine::Engine;
use traffic_shadowing::shadow_netsim::time::{SimDuration, SimTime};
use traffic_shadowing::shadow_netsim::topology::TopologyBuilder;
use traffic_shadowing::shadow_observer::dpi::{DpiConfig, DpiTap};
use traffic_shadowing::shadow_observer::policy::{
    DelayBucket, ProbeKind, ReplayPolicy, WeightedChoice,
};
use traffic_shadowing::shadow_packet::dns::{DnsMessage, DnsName};
use traffic_shadowing::shadow_packet::http::HttpRequest;
use traffic_shadowing::shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use traffic_shadowing::shadow_packet::tcp::{TcpFlags, TcpSegment};
use traffic_shadowing::shadow_packet::tls::ClientHello;
use traffic_shadowing::shadow_packet::udp::UdpDatagram;

/// Chain length (ASes); each AS contributes two routers, so routes run
/// 8–16 router hops — the 5–15-hop regime the paper measures over.
const CHAIN_ASES: u32 = 8;

/// One measured hot-path run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotPathMetrics {
    /// Decoy packets injected.
    pub packets: u64,
    /// Router-hop arrivals processed (excludes endpoint deliveries).
    pub hops: u64,
    /// All engine events processed.
    pub events: u64,
    pub elapsed_ns: u64,
    pub hops_per_sec: f64,
    pub events_per_sec: f64,
    /// VmHWM at the end of the run (Linux); `None` elsewhere.
    pub peak_rss_bytes: Option<u64>,
}

/// The perf-trajectory record committed as `BENCH_pipeline.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchRecord {
    pub bench: String,
    /// The reference measurement this machine compares against; preserved
    /// across re-runs so the trajectory keeps its anchor.
    pub baseline: Option<HotPathMetrics>,
    pub current: HotPathMetrics,
    /// `current.hops_per_sec / baseline.hops_per_sec` when both exist.
    pub speedup_hops_per_sec: Option<f64>,
}

/// Build the tapped-chain world and drive `packets` decoys through it.
pub fn run_hot_path(packets: u64) -> HotPathMetrics {
    run_hot_path_with(packets, 1 << 16)
}

/// [`run_hot_path`] with an explicit per-tap retention capacity — the
/// memory-profile knob (`examples/rss_probe.rs` sweeps it to attribute
/// peak RSS between in-flight events and retained observations).
pub fn run_hot_path_with(packets: u64, retention_capacity: usize) -> HotPathMetrics {
    let mut tb = TopologyBuilder::new(11);
    for i in 0..CHAIN_ASES {
        let region = if i < CHAIN_ASES / 2 {
            Region::Europe
        } else {
            Region::EastAsia
        };
        tb.add_as(Asn(100 + i), region);
    }
    for i in 0..CHAIN_ASES - 1 {
        tb.link(Asn(100 + i), Asn(101 + i)).unwrap();
    }
    let mut routers = Vec::new();
    for i in 0..CHAIN_ASES {
        for r in 0..2u8 {
            routers.push(
                tb.add_router(Asn(100 + i), Ipv4Addr::new(10 + i as u8, 0, 0, r + 1), true)
                    .unwrap(),
            );
        }
    }
    let client_addr = Ipv4Addr::new(10, 1, 0, 1);
    let server_addr = Ipv4Addr::new(10 + CHAIN_ASES as u8 - 1, 1, 0, 1);
    let client = tb.add_host(Asn(100), client_addr).unwrap();
    let _server = tb.add_host(Asn(100 + CHAIN_ASES - 1), server_addr).unwrap();
    let origin = tb
        .add_host(
            Asn(100 + CHAIN_ASES - 1),
            Ipv4Addr::new(10 + CHAIN_ASES as u8 - 1, 1, 0, 99),
        )
        .unwrap();
    let mut engine = Engine::new(tb.build().unwrap());

    // Observe everything, probe nothing: extraction and retention run at
    // full cost on every hop without adding probe traffic to the event mix.
    let policy = ReplayPolicy {
        trigger_percent: 0,
        delays: vec![WeightedChoice::new(DelayBucket::Seconds(1, 5), 1)],
        protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
        reuse: vec![WeightedChoice::new(1, 1)],
    };
    for &router in &routers {
        engine.add_tap(
            router,
            Box::new(DpiTap::new(DpiConfig {
                label: format!("bench-{router}"),
                watch_dns: true,
                watch_http: true,
                watch_tls: true,
                zone_filter: Some(DnsName::parse("www.experiment.example").unwrap()),
                policy: policy.clone(),
                retention_capacity,
                retention_ttl: SimDuration::from_days(2),
                dst_filter: None,
                origins: vec![WeightedChoice::new(origin, 1)],
                seed: 99,
            })),
        );
    }

    for i in 0..packets {
        let label = format!("b{i}");
        let domain = format!("{label}.www.experiment.example");
        let pkt = match i % 3 {
            0 => {
                let query = DnsMessage::query(i as u16, DnsName::parse(&domain).unwrap());
                Ipv4Packet::new(
                    client_addr,
                    server_addr,
                    IpProtocol::Udp,
                    DEFAULT_TTL,
                    i as u16,
                    UdpDatagram::new(5000, 53, query.encode()).encode(),
                )
            }
            1 => {
                let req = HttpRequest::get(&domain, "/");
                let seg = TcpSegment::new(40_000, 80, 1, 1, TcpFlags::PSH_ACK, req.encode());
                Ipv4Packet::new(
                    client_addr,
                    server_addr,
                    IpProtocol::Tcp,
                    DEFAULT_TTL,
                    i as u16,
                    seg.encode(),
                )
            }
            _ => {
                let ch = ClientHello::with_sni(&domain, [3u8; 32]);
                let seg = TcpSegment::new(40_001, 443, 1, 1, TcpFlags::PSH_ACK, ch.encode_record());
                Ipv4Packet::new(
                    client_addr,
                    server_addr,
                    IpProtocol::Tcp,
                    DEFAULT_TTL,
                    i as u16,
                    seg.encode(),
                )
            }
        };
        engine.inject(SimTime(i), client, pkt);
    }

    let started = Instant::now();
    engine.run_to_completion();
    let elapsed = started.elapsed();

    let stats = engine.stats();
    let events = stats.events_processed;
    let hops = events - stats.packets_delivered;
    let secs = elapsed.as_secs_f64().max(1e-9);
    HotPathMetrics {
        packets,
        hops,
        events,
        elapsed_ns: elapsed.as_nanos() as u64,
        hops_per_sec: hops as f64 / secs,
        events_per_sec: events as f64 / secs,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// VmHWM (peak resident set) of this process, from `/proc/self/status`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Fold `current` into the JSON trajectory file at `path`. An existing
/// baseline is preserved; a fresh file records the measurement as current
/// with no baseline (promote it by hand or with the next PR's tooling).
pub fn record_bench_json(path: &Path, bench: &str, current: HotPathMetrics) -> BenchRecord {
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<BenchRecord>(&text).ok())
        .and_then(|old| old.baseline);
    let speedup = baseline
        .as_ref()
        .map(|b| current.hops_per_sec / b.hops_per_sec.max(1e-9));
    let record = BenchRecord {
        bench: bench.to_string(),
        baseline,
        current,
        speedup_hops_per_sec: speedup,
    };
    let text = serde_json::to_string_pretty(&record).expect("bench record serializes");
    std::fs::write(path, text + "\n").expect("bench record written");
    record
}

/// Workspace-root location of the pipeline trajectory file.
pub fn pipeline_json_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json")
}
