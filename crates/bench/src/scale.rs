//! Paper-scale campaign throughput behind `BENCH_scale.json`: Phase I at
//! the source paper's deployment scale (4,364 VPs × 2,325 Tranco sites,
//! ~20M decoys per round) and at 10× that volume, under both execution
//! shapes — the work-stealing scheduler at `K = num_cpus` and the fixed
//! 4-shard split it replaces.
//!
//! Full Phase I at these scales runs for minutes (paper) to hours (10×)
//! on one core, so each cell executes a bounded, documented **VP slice**:
//! the world, Appendix-E pre-flight and the full-campaign plan are built
//! at true scale (that setup is the serial tail the work-stealing path
//! amortizes — one scout plan shared via `Arc` versus one replan per
//! fixed shard), while only the first `vp_slice` VPs post their decoys.
//! `hops/sec` is therefore end-to-end throughput of the bounded campaign
//! including setup, which is exactly the regime where shared-plan
//! work-stealing beats the fixed split.
//!
//! Peak RSS is VmHWM, which is a process-lifetime high-water mark — so
//! every cell must run in its own process. `examples/scale_probe.rs`
//! measures one cell and prints it as one-line JSON;
//! `examples/scale_bench.rs` orchestrates the probe across cells and
//! folds the results into the trajectory record.

use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;
use traffic_shadowing::shadow_core::campaign::Phase1Config;
use traffic_shadowing::shadow_core::executor::{
    run_phase1_sharded_bounded, run_phase1_work_stealing_bounded, StealConfig, TelemetryOptions,
};
use traffic_shadowing::shadow_core::sink::SinkConfig;
use traffic_shadowing::shadow_core::world::{generate_spec, WorldConfig};

use crate::hotpath::peak_rss_bytes;

/// Deterministic world seed shared by every scale cell.
pub const SCALE_SEED: u64 = 0x5eed_2024;

/// One `(scale, execution shape)` measurement, produced in a dedicated
/// process so `peak_rss_bytes` attributes to this cell alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleCell {
    /// World scale: `smoke`, `paper` or `10x`.
    pub scale: String,
    /// Execution shape: `ws` (work-stealing) or `fixed` (K static shards).
    pub mode: String,
    /// Worker threads (`ws`) or shard count (`fixed`).
    pub workers: usize,
    pub vps: usize,
    pub sites: usize,
    /// VPs that actually posted decoys (`None` = all of them).
    pub vp_slice: Option<usize>,
    /// Spec generation wall (the incremental world builder's share).
    pub spec_ns: u64,
    /// Phase I wall: instantiation + pre-flight + plan + bounded execution.
    pub run_ns: u64,
    pub events: u64,
    /// Router-hop arrivals (events minus endpoint deliveries).
    pub hops: u64,
    pub packets_sent: u64,
    pub hops_per_sec: f64,
    /// VmHWM at cell end (Linux; `None` elsewhere).
    pub peak_rss_bytes: Option<u64>,
}

/// The trajectory record committed as `BENCH_scale.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleRecord {
    pub bench: String,
    /// Cores visible to the run (`ws` cells use this as K).
    pub host_cpus: usize,
    pub cells: Vec<ScaleCell>,
    /// Paper-scale `ws @ num_cpus` hops/sec over `fixed @ 4` hops/sec —
    /// the scheduler-versus-static-split headline.
    pub ws_over_fixed_paper: Option<f64>,
}

/// The world configuration behind a scale name.
pub fn world_for(scale: &str) -> WorldConfig {
    match scale {
        "paper" => WorldConfig::paper_scale(SCALE_SEED),
        "10x" => WorldConfig::paper_scale_10x(SCALE_SEED),
        "smoke" => WorldConfig::tiny(SCALE_SEED),
        other => panic!("unknown scale {other:?} (expected smoke|paper|10x)"),
    }
}

/// Measure one cell in-process: build the spec, run bounded Phase I under
/// the requested shape, and derive throughput from the merged engine
/// counters (hops = events − endpoint deliveries, as in the pipeline
/// bench).
pub fn run_scale_cell(
    scale: &str,
    mode: &str,
    workers: usize,
    vp_slice: Option<usize>,
) -> ScaleCell {
    let world = world_for(scale);
    let t0 = Instant::now();
    let spec = generate_spec(world);
    let spec_ns = t0.elapsed().as_nanos() as u64;

    let config = Phase1Config::default();
    let telemetry = TelemetryOptions::disabled();
    let sink = SinkConfig::streaming();
    let started = Instant::now();
    let sharded = match mode {
        "ws" => run_phase1_work_stealing_bounded(
            &spec,
            &config,
            StealConfig::with_workers(workers),
            telemetry,
            None,
            sink,
            vp_slice,
        ),
        "fixed" => {
            run_phase1_sharded_bounded(&spec, &config, workers, telemetry, None, sink, vp_slice)
        }
        other => panic!("unknown mode {other:?} (expected ws|fixed)"),
    };
    let run = started.elapsed();

    let stats = sharded.stats;
    let events = stats.events_processed;
    let hops = events - stats.packets_delivered;
    let secs = run.as_secs_f64().max(1e-9);
    ScaleCell {
        scale: scale.to_string(),
        mode: mode.to_string(),
        workers,
        vps: spec.platform.vps.len(),
        sites: spec.tranco.len(),
        vp_slice,
        spec_ns,
        run_ns: run.as_nanos() as u64,
        events,
        hops,
        packets_sent: stats.packets_sent,
        hops_per_sec: hops as f64 / secs,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

/// Write the assembled record to `path`. Unlike the trajectory writers
/// with a preserved baseline, the scale record is regenerated whole —
/// every cell was freshly measured by a probe process this run, so there
/// is no stale-`current` hazard to guard against.
pub fn record_scale_json(path: &Path, record: &ScaleRecord) {
    let text = serde_json::to_string_pretty(record).expect("scale record serializes");
    std::fs::write(path, text + "\n").expect("scale record written");
}

/// Workspace-root location of the scale trajectory file.
pub fn scale_json_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json")
}
