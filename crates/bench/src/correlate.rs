//! Correlation-throughput fixture behind `BENCH_correlate.json`: a
//! synthetic arrival stream over a registered decoy population, driven
//! through both correlation paths — the retained batch [`Correlator`]
//! (clone every arrival into a `CorrelatedRequest` sample vector) and the
//! capture-time [`CorrelationSink`] (classify and fold, retain nothing).
//!
//! The trajectory record also carries a peak-RSS probe at 10x the timed
//! scale: the streamed pass generates-and-drops each arrival, the batch
//! pass must buffer the whole stream first, and the VmHWM delta between
//! the two is the memory the streaming pipeline no longer pays.

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use traffic_shadowing::shadow_core::correlate::Correlator;
use traffic_shadowing::shadow_core::decoy::{DecoyProtocol, DecoyRecord, DecoyRegistry};
use traffic_shadowing::shadow_core::sink::{CorrelationAggregates, CorrelationSink, SinkConfig};
use traffic_shadowing::shadow_honeypot::capture::{Arrival, ArrivalProtocol, ArrivalSink, Label};
use traffic_shadowing::shadow_netsim::time::{SimDuration, SimTime};
use traffic_shadowing::shadow_packet::dns::DnsName;
use traffic_shadowing::shadow_vantage::platform::VpId;

use crate::hotpath::peak_rss_bytes;

/// Deterministic stream seed — the same arrivals every run, every machine.
const STREAM_SEED: u64 = 0x5EED_C0DE_0451;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The registered decoy population the stream resolves against.
pub struct CorrelateFixture {
    pub registry: Arc<DecoyRegistry>,
    pub records: Vec<DecoyRecord>,
}

/// Register `decoys` decoys cycling DNS/HTTP/TLS across a handful of VPs
/// and destinations — enough key diversity to make the aggregate folds'
/// map lookups realistic.
pub fn build_fixture(decoys: usize) -> CorrelateFixture {
    let zone = DnsName::parse("www.experiment.example").unwrap();
    let mut registry = DecoyRegistry::new(zone);
    let records: Vec<DecoyRecord> = (0..decoys)
        .map(|i| {
            let protocol = match i % 3 {
                0 => DecoyProtocol::Dns,
                1 => DecoyProtocol::Http,
                _ => DecoyProtocol::Tls,
            };
            registry.register(
                VpId(1 + (i as u32 % 7)),
                Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1),
                Ipv4Addr::new(77, 88, 8, (i % 11) as u8 + 1),
                protocol,
                64,
                SimTime((i as u64) * 500),
                None,
            )
        })
        .collect();
    CorrelateFixture {
        registry: Arc::new(registry),
        records,
    }
}

/// One synthetic arrival: random decoy, offset biased so every §3 rule
/// fires (solicited first-seen, replication noise inside the window,
/// repeats hours later), arrival protocol biased toward DNS.
pub fn gen_arrival(records: &[DecoyRecord], honeypot: &Label, state: &mut u64) -> Arrival {
    let r = splitmix64(state);
    let rec = &records[(r as usize) % records.len()];
    let offset_ms = match (r >> 32) % 4 {
        0 => (r >> 40) % 1_500,                    // inside the replication window
        1 => 1_500 + (r >> 40) % 120_000,          // minutes later
        2 => 3_600_000 + (r >> 40) % 86_400_000,   // hours-to-a-day later
        _ => 864_000_000 + (r >> 40) % 86_400_000, // ~10 days later
    };
    let protocol = match (r >> 16) % 4 {
        0 | 1 => ArrivalProtocol::Dns,
        2 => ArrivalProtocol::Http,
        _ => ArrivalProtocol::Https,
    };
    Arrival {
        at: rec.planned_at + SimDuration::from_millis(offset_ms),
        src: Ipv4Addr::new(9, (r >> 8) as u8, (r >> 16) as u8, (r >> 24) as u8),
        protocol,
        domain: rec.domain.clone(),
        http_path: None,
        honeypot: honeypot.clone(),
    }
}

/// Materialize a full stream (the batch path's buffer).
pub fn gen_stream(records: &[DecoyRecord], arrivals: u64) -> Vec<Arrival> {
    let honeypot = Label::from("AUTH");
    let mut state = STREAM_SEED;
    (0..arrivals)
        .map(|_| gen_arrival(records, &honeypot, &mut state))
        .collect()
}

/// One measured correlate-throughput run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelateMetrics {
    pub decoys: u64,
    pub arrivals: u64,
    pub batch_elapsed_ns: u64,
    pub streamed_elapsed_ns: u64,
    pub batch_arrivals_per_sec: f64,
    pub streamed_arrivals_per_sec: f64,
    /// `streamed_arrivals_per_sec / batch_arrivals_per_sec`.
    pub streamed_over_batch: f64,
    /// VmHWM after a generate-and-fold streamed pass at 10x the timed
    /// scale — no arrival vector ever exists (Linux; `None` elsewhere).
    pub rss_streamed_10x_bytes: Option<u64>,
    /// VmHWM after the batch pass at the same 10x scale buffered the
    /// whole stream and cloned it into `CorrelatedRequest`s.
    pub rss_batch_10x_bytes: Option<u64>,
}

/// The perf-trajectory record committed as `BENCH_correlate.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelateRecord {
    pub bench: String,
    /// The reference measurement this machine compares against; preserved
    /// across re-runs so the trajectory keeps its anchor.
    pub baseline: Option<CorrelateMetrics>,
    pub current: CorrelateMetrics,
    /// `current.streamed_arrivals_per_sec / baseline.streamed_arrivals_per_sec`.
    pub speedup_streamed_per_sec: Option<f64>,
}

/// Time both correlation paths over an identical pre-built stream, then
/// probe peak RSS at 10x scale. Streamed runs its RSS probe first —
/// VmHWM is monotone, so ordering it after the batch buffer would mask
/// the difference.
pub fn run_correlate(decoys: usize, arrivals: u64) -> CorrelateMetrics {
    let fixture = build_fixture(decoys);

    // Streamed RSS probe before any buffering happens in this process.
    let scale = arrivals * 10;
    let honeypot = Label::from("AUTH");
    let mut sink = CorrelationSink::new(fixture.registry.clone(), SinkConfig::streaming());
    let mut state = STREAM_SEED;
    for _ in 0..scale {
        let arrival = gen_arrival(&fixture.records, &honeypot, &mut state);
        sink.offer(&arrival);
    }
    std::hint::black_box(sink.take_aggregates().arrivals_seen);
    let rss_streamed_10x_bytes = peak_rss_bytes();

    // Timed passes over an identical buffered stream. Both sides end at
    // the same artifact — the analysis aggregates — so the comparison is
    // pipeline-to-pipeline: batch clones every arrival+decoy into a
    // `CorrelatedRequest` sample vector and folds afterwards; streamed
    // folds at offer time and retains nothing.
    let stream = gen_stream(&fixture.records, arrivals);
    let config = SinkConfig::streaming();
    let correlator = Correlator::new(&fixture.registry);
    let started = Instant::now();
    let correlated = correlator.correlate(&stream);
    let agg = CorrelationAggregates::from_correlated(&correlated, config.late_cutoff);
    let batch_elapsed = started.elapsed();
    std::hint::black_box(agg.arrivals_seen);
    drop(correlated);

    let mut sink = CorrelationSink::new(fixture.registry.clone(), SinkConfig::streaming());
    let started = Instant::now();
    for arrival in &stream {
        sink.offer(arrival);
    }
    let streamed_elapsed = started.elapsed();
    std::hint::black_box(sink.take_aggregates().arrivals_seen);
    drop(stream);

    // Batch RSS probe: buffer the 10x stream, clone it through the
    // correlator, fold to aggregates — the retained pipeline's resident
    // cost for the same end artifact.
    let buffered = gen_stream(&fixture.records, scale);
    let correlated = Correlator::new(&fixture.registry).correlate(&buffered);
    let agg = CorrelationAggregates::from_correlated(&correlated, config.late_cutoff);
    std::hint::black_box(agg.arrivals_seen);
    let rss_batch_10x_bytes = peak_rss_bytes();
    drop(correlated);
    drop(buffered);

    let batch_secs = batch_elapsed.as_secs_f64().max(1e-9);
    let streamed_secs = streamed_elapsed.as_secs_f64().max(1e-9);
    let batch_arrivals_per_sec = arrivals as f64 / batch_secs;
    let streamed_arrivals_per_sec = arrivals as f64 / streamed_secs;
    CorrelateMetrics {
        decoys: decoys as u64,
        arrivals,
        batch_elapsed_ns: batch_elapsed.as_nanos() as u64,
        streamed_elapsed_ns: streamed_elapsed.as_nanos() as u64,
        batch_arrivals_per_sec,
        streamed_arrivals_per_sec,
        streamed_over_batch: streamed_arrivals_per_sec / batch_arrivals_per_sec.max(1e-9),
        rss_streamed_10x_bytes,
        rss_batch_10x_bytes,
    }
}

/// Fold `current` into the JSON trajectory file at `path`, preserving an
/// existing baseline (same contract as `hotpath::record_bench_json`,
/// except a fresh file anchors the trajectory on its first measurement).
///
/// A wall-clock measurement never reproduces bit-for-bit, so a `current`
/// identical to the file's recorded baseline means the caller recycled a
/// stored record instead of re-running the bench — the writer refuses
/// rather than re-committing a stale `current` section (the failure mode
/// the first anchoring write of this file once shipped: `current ==
/// baseline`, speedup pinned at 1.0, long after the code had moved).
pub fn record_correlate_json(
    path: &Path,
    bench: &str,
    current: CorrelateMetrics,
) -> CorrelateRecord {
    let previous = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<CorrelateRecord>(&text).ok())
        .and_then(|old| old.baseline);
    if let Some(prev) = &previous {
        let same = serde_json::to_string(prev).expect("metrics serialize")
            == serde_json::to_string(&current).expect("metrics serialize");
        assert!(
            !same,
            "stale current: metrics are byte-identical to the recorded baseline in {} — \
             re-run the bench instead of recycling the stored record",
            path.display()
        );
    }
    let baseline = previous.or_else(|| Some(current.clone()));
    let speedup = baseline
        .as_ref()
        .map(|b| current.streamed_arrivals_per_sec / b.streamed_arrivals_per_sec.max(1e-9));
    let record = CorrelateRecord {
        bench: bench.to_string(),
        baseline,
        current,
        speedup_streamed_per_sec: speedup,
    };
    let text = serde_json::to_string_pretty(&record).expect("bench record serializes");
    std::fs::write(path, text + "\n").expect("bench record written");
    record
}

/// Workspace-root location of the correlate trajectory file.
pub fn correlate_json_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_correlate.json")
}
