//! Shared fixtures for the benchmark harnesses.
//!
//! Every table/figure bench needs a completed campaign; running one per
//! criterion iteration would be absurd, so the study is executed once per
//! process (a couple of seconds) and cached. Each bench then (a) prints the
//! regenerated table or series — the actual reproduction artifact — and
//! (b) times the analysis computation itself.
//!
//! The [`hotpath`] module holds the engine hot-path fixture behind the
//! `BENCH_pipeline.json` perf-trajectory record: a tapped router chain that
//! isolates per-hop forwarding + DPI inspection cost from campaign logic.

use std::sync::OnceLock;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

pub mod correlate;
pub mod hotpath;
pub mod scale;
pub mod serving;
pub mod topo;

/// The seed every bench harness uses, so printed tables match
/// EXPERIMENTS.md.
pub const BENCH_SEED: u64 = 7;

/// The cached full-campaign outcome.
pub fn study() -> &'static StudyOutcome {
    static STUDY: OnceLock<StudyOutcome> = OnceLock::new();
    STUDY.get_or_init(|| {
        eprintln!("[bench fixture] running the standard campaign (seed {BENCH_SEED})...");
        let started = std::time::Instant::now();
        // Retained: the figure benches time the batch (sample-level)
        // analysis passes against the streamed aggregates.
        let outcome = Study::run(StudyConfig::standard(BENCH_SEED).with_retained_arrivals());
        eprintln!("[bench fixture] campaign done in {:?}", started.elapsed());
        outcome
    })
}

/// Percentage formatting shared by harness printers.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Print this harness process's peak RSS (VmHWM) as a grep-friendly
/// tagged line. Every bench harness calls this at the end of its last
/// registered routine, so the CI smoke sweep (`cargo bench -- --test`)
/// reports the memory high-water mark of each harness alongside its
/// printed tables. `null` on platforms without `/proc`.
pub fn report_peak_rss(harness: &str) {
    match hotpath::peak_rss_bytes() {
        Some(bytes) => println!(
            "BENCH_RSS {{\"bench\":\"{harness}\",\"peak_rss_bytes\":{bytes},\"peak_rss_mb\":{:.1}}}",
            bytes as f64 / (1 << 20) as f64
        ),
        None => println!("BENCH_RSS {{\"bench\":\"{harness}\",\"peak_rss_bytes\":null}}"),
    }
}
