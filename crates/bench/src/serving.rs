//! The serving-surface measurement behind `BENCH_serve.json`: snapshot
//! read throughput and latency of the `shadow-serve` HTTP surface under
//! concurrent clients, plus the engine hot-path rate measured while an
//! idle server is up (the "reads never block the pipeline" guard).

use serde::{Deserialize, Serialize};
use std::path::Path;

/// One measured serving run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeMetrics {
    /// Concurrent loadgen clients.
    pub clients: u64,
    /// Measurement window in seconds.
    pub window_secs: f64,
    /// Successful `/api/aggregates` reads completed inside the window.
    pub reads: u64,
    pub reads_per_sec: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub errors: u64,
    /// Hot-path hops/sec measured with the (idle) server still bound —
    /// compare against `BENCH_pipeline.json` to confirm the serving
    /// surface costs the pipeline nothing when nobody is reading.
    pub idle_hotpath_hops_per_sec: f64,
}

/// The perf-trajectory record committed as `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchRecord {
    pub bench: String,
    /// The reference measurement this machine compares against; preserved
    /// across re-runs so the trajectory keeps its anchor.
    pub baseline: Option<ServeMetrics>,
    pub current: ServeMetrics,
    /// `current.reads_per_sec / baseline.reads_per_sec` when both exist.
    pub speedup_reads_per_sec: Option<f64>,
}

/// Latency percentile over an already-sorted sample, nearest-rank.
pub fn percentile_us(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((sorted_micros.len() - 1) as f64 * p).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

/// Fold `current` into the JSON trajectory file at `path`, preserving an
/// existing baseline (same contract as `hotpath::record_bench_json`).
pub fn record_serve_bench_json(
    path: &Path,
    bench: &str,
    current: ServeMetrics,
) -> ServeBenchRecord {
    let baseline = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<ServeBenchRecord>(&text).ok())
        .and_then(|old| old.baseline);
    let speedup = baseline
        .as_ref()
        .map(|b| current.reads_per_sec / b.reads_per_sec.max(1e-9));
    let record = ServeBenchRecord {
        bench: bench.to_string(),
        baseline,
        current,
        speedup_reads_per_sec: speedup,
    };
    let text = serde_json::to_string_pretty(&record).expect("serve bench record serializes");
    std::fs::write(path, text + "\n").expect("serve bench record written");
    record
}

/// Workspace-root location of the serving trajectory file.
pub fn serve_json_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [10, 20, 30, 40, 100];
        assert_eq!(percentile_us(&sorted, 0.0), 10);
        assert_eq!(percentile_us(&sorted, 0.5), 30);
        assert_eq!(percentile_us(&sorted, 1.0), 100);
        assert_eq!(percentile_us(&[], 0.5), 0);
    }

    #[test]
    fn record_preserves_existing_baseline() {
        let metrics = |rps: f64| ServeMetrics {
            clients: 32,
            window_secs: 5.0,
            reads: 1000,
            reads_per_sec: rps,
            p50_us: 50,
            p99_us: 200,
            errors: 0,
            idle_hotpath_hops_per_sec: 1e6,
        };
        let path = std::env::temp_dir().join("shadow-serve-bench-record-test.json");
        std::fs::remove_file(&path).ok();
        let first = record_serve_bench_json(&path, "serve/test", metrics(100.0));
        assert!(first.baseline.is_none());

        // Promote the first measurement to baseline by hand, as the
        // trajectory workflow does, then re-record.
        let promoted = ServeBenchRecord {
            baseline: Some(first.current.clone()),
            ..first
        };
        std::fs::write(&path, serde_json::to_string_pretty(&promoted).unwrap()).unwrap();
        let second = record_serve_bench_json(&path, "serve/test", metrics(200.0));
        std::fs::remove_file(&path).ok();
        assert_eq!(second.baseline.as_ref().map(|b| b.reads as i64), Some(1000));
        let speedup = second.speedup_reads_per_sec.expect("speedup computed");
        assert!((speedup - 2.0).abs() < 1e-9, "{speedup}");
    }
}
