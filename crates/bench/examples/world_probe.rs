//! One-line probe of world-construction cost at a given scale:
//! `world_probe <vps_global> <vps_cn> <tranco_sites>` prints spec
//! generation and instantiation wall times plus peak RSS as JSON.

use shadow_bench::hotpath::peak_rss_bytes;
use std::time::Instant;
use traffic_shadowing::shadow_core::world::{generate_spec, WorldConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let vps_global: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(2_182);
    let vps_cn: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(2_182);
    let tranco_sites: usize = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(2_325);

    let config = WorldConfig {
        vps_global,
        vps_cn,
        tranco_sites,
        ..WorldConfig::standard(0x5eed)
    };
    let t0 = Instant::now();
    let spec = generate_spec(config);
    let spec_ns = t0.elapsed().as_nanos();
    let t1 = Instant::now();
    let world = spec.instantiate();
    let inst_ns = t1.elapsed().as_nanos();
    println!(
        "{{\"vps\":{},\"sites\":{},\"spec_ns\":{},\"instantiate_ns\":{},\"hosts\":{},\"peak_rss_bytes\":{}}}",
        world.platform.vps.len(),
        world.tranco.len(),
        spec_ns,
        inst_ns,
        spec.hosts.len(),
        peak_rss_bytes().unwrap_or(0),
    );
}
