//! One scale-bench cell in its own process (VmHWM is a process-lifetime
//! high-water mark, so peak-RSS cells cannot share a process):
//! `scale_probe <smoke|paper|10x> <ws|fixed> <workers> <vp_slice>`
//! prints the measured [`shadow_bench::scale::ScaleCell`] as one-line
//! JSON on stdout. `vp_slice 0` means unbounded.

use shadow_bench::scale::run_scale_cell;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args.get(1).map(String::as_str).unwrap_or("smoke");
    let mode = args.get(2).map(String::as_str).unwrap_or("ws");
    let workers: usize = args
        .get(3)
        .map(|s| s.parse().expect("workers: usize"))
        .unwrap_or(1);
    let vp_slice: Option<usize> = args
        .get(4)
        .map(|s| s.parse().expect("vp_slice: usize"))
        .filter(|&n| n > 0);

    let cell = run_scale_cell(scale, mode, workers, vp_slice);
    println!("{}", serde_json::to_string(&cell).expect("cell serializes"));
}
