//! Paper-scale throughput bench orchestrator behind `BENCH_scale.json`.
//!
//! Runs `scale_probe` once per `(scale, execution shape)` cell — each in
//! its own process, because peak RSS (VmHWM) is a process-lifetime
//! high-water mark — and folds the cells into the trajectory record:
//!
//! * `paper / ws @ num_cpus` vs `paper / fixed @ 4` — the work-stealing
//!   scheduler against the fixed 4-shard split, same bounded VP slice;
//! * `10x / ws @ num_cpus` — ten times the paper's decoy volume.
//!
//! With `--test` only the tiny smoke cells run (full fidelity, every
//! subsystem, seconds of wall) and no record is written — the CI hook.
//!
//! The probe binary must be built first:
//! `cargo build --release -p shadow-bench --example scale_probe`.

use shadow_bench::scale::{record_scale_json, scale_json_path, ScaleCell, ScaleRecord};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Paper-scale cells execute this many VPs (both shapes, same slice, so
/// hops/sec compares like-for-like); setup — world, pre-flight, the full
/// ~20M-send plan — runs unbounded. See `shadow_bench::scale`.
const PAPER_SLICE: usize = 16;

/// The 10x world carries ~3.2x the sites (sends per VP), so a smaller
/// slice keeps the executed volume comparable.
const TENX_SLICE: usize = 8;

fn probe_bin() -> PathBuf {
    let me = std::env::current_exe().expect("current exe");
    let bin = me.parent().expect("exe dir").join("scale_probe");
    assert!(
        bin.exists(),
        "scale_probe not built — run `cargo build --release -p shadow-bench --example scale_probe` first"
    );
    bin
}

fn run_cell(bin: &Path, scale: &str, mode: &str, workers: usize, vp_slice: usize) -> ScaleCell {
    eprintln!("[scale] {scale}/{mode} workers={workers} vp_slice={vp_slice} ...");
    let out = Command::new(bin)
        .args([scale, mode, &workers.to_string(), &vp_slice.to_string()])
        .output()
        .expect("scale_probe runs");
    assert!(
        out.status.success(),
        "scale_probe {scale}/{mode} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("scale_probe output is UTF-8");
    let cell: ScaleCell =
        serde_json::from_str(stdout.trim()).expect("scale_probe prints one-line cell JSON");
    eprintln!(
        "[scale]   {:.0} hops/sec, {} hops, {:.1}s wall, peak RSS {:.1} MB",
        cell.hops_per_sec,
        cell.hops,
        cell.run_ns as f64 / 1e9,
        cell.peak_rss_bytes.unwrap_or(0) as f64 / (1 << 20) as f64,
    );
    cell
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let bin = probe_bin();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    if test_mode {
        // Smoke: the tiny world end-to-end under both shapes. The two
        // cells are byte-equivalent by the sharded-equivalence guarantee;
        // here we only need them to run and produce traffic.
        let ws = run_cell(&bin, "smoke", "ws", cpus, 0);
        let fixed = run_cell(&bin, "smoke", "fixed", 4, 0);
        assert!(
            ws.hops > 0 && fixed.hops > 0,
            "smoke cells produced no traffic"
        );
        assert!(
            ws.peak_rss_bytes.is_some() && fixed.peak_rss_bytes.is_some(),
            "peak-RSS capture missing from smoke cells"
        );
        println!(
            "scale bench smoke OK: ws {:.0} hops/sec (peak RSS {} MB), fixed@4 {:.0} hops/sec (peak RSS {} MB)",
            ws.hops_per_sec,
            ws.peak_rss_bytes.unwrap_or(0) / (1 << 20),
            fixed.hops_per_sec,
            fixed.peak_rss_bytes.unwrap_or(0) / (1 << 20),
        );
        return;
    }

    let paper_ws = run_cell(&bin, "paper", "ws", cpus, PAPER_SLICE);
    let paper_fixed = run_cell(&bin, "paper", "fixed", 4, PAPER_SLICE);
    let tenx_ws = run_cell(&bin, "10x", "ws", cpus, TENX_SLICE);

    let ws_over_fixed = paper_ws.hops_per_sec / paper_fixed.hops_per_sec.max(1e-9);
    let record = ScaleRecord {
        bench: "scale/phase1_paper".to_string(),
        host_cpus: cpus,
        cells: vec![paper_ws, paper_fixed, tenx_ws],
        ws_over_fixed_paper: Some(ws_over_fixed),
    };
    let path = scale_json_path();
    record_scale_json(&path, &record);
    println!(
        "wrote {} (ws@{} over fixed@4 at paper scale: {:.2}x)",
        path.display(),
        cpus,
        ws_over_fixed
    );
}
