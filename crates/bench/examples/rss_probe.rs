//! Peak-RSS attribution probe for the hot-path fixture.
//!
//! VmHWM is a process-lifetime high-water mark, so each configuration must
//! run in its own process: `rss_probe <packets> <retention_capacity>`.
//! Sweeping packets at fixed capacity gives the per-event slope; sweeping
//! capacity at fixed packets gives the retention-store share.

use shadow_bench::hotpath::{peak_rss_bytes, run_hot_path_with};

fn main() {
    let mut args = std::env::args().skip(1);
    let packets: u64 = args
        .next()
        .expect("usage: rss_probe <packets> <retention_capacity>")
        .parse()
        .expect("packets must be an integer");
    let capacity: usize = args
        .next()
        .expect("usage: rss_probe <packets> <retention_capacity>")
        .parse()
        .expect("retention_capacity must be an integer");
    let metrics = run_hot_path_with(packets, capacity);
    println!(
        "{{\"packets\":{},\"retention_capacity\":{},\"hops_per_sec\":{:.0},\"peak_rss_bytes\":{}}}",
        packets,
        capacity,
        metrics.hops_per_sec,
        peak_rss_bytes().unwrap_or(0)
    );
}
