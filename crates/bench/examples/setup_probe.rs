//! Throwaway setup-cost breakdown (not wired into any record):
//! `setup_probe <smoke|paper|10x>` times spec generation, instantiation,
//! pre-flight replay and Phase I plan compilation separately.

use shadow_bench::hotpath::peak_rss_bytes;
use shadow_bench::scale::world_for;
use std::time::Instant;
use traffic_shadowing::shadow_core::campaign::{CampaignRunner, Phase1Config};
use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::world::generate_spec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args.get(1).map(String::as_str).unwrap_or("paper");
    let t = Instant::now();
    let spec = generate_spec(world_for(scale));
    eprintln!("spec      {:?}", t.elapsed());
    let t = Instant::now();
    let mut world = spec.instantiate();
    eprintln!("instant   {:?}", t.elapsed());
    let t = Instant::now();
    let pf = NoiseFilter::run_and_apply(&mut world);
    eprintln!(
        "preflight {:?} (vetted {} )",
        t.elapsed(),
        pf.ttl_deltas.len()
    );
    let t = Instant::now();
    let plan = CampaignRunner::plan_phase1(&world, &Phase1Config::default());
    eprintln!(
        "plan      {:?} ({} sends, rss {} MB)",
        t.elapsed(),
        plan.sends.len(),
        peak_rss_bytes().unwrap_or(0) / (1 << 20)
    );
}
