//! Property test pinning the parse-once contract: for any payload bytes —
//! well-formed DNS/HTTP/TLS, truncated encodings, or pure garbage — the
//! memoized [`DecodedView`] extraction equals a direct re-parse, and stays
//! equal across the header mutations a packet undergoes in flight.
//!
//! `DESIGN.md` and `shadow_packet::view` both promise this equivalence; the
//! engine relies on it when later hops read the first hop's cached field.
//! No proptest crate is vendored, so the generator is a hand-rolled
//! deterministic xorshift sweep — failures print the seed of the offending
//! case.

use std::net::Ipv4Addr;
use traffic_shadowing::shadow_packet::dns::{DnsMessage, DnsName};
use traffic_shadowing::shadow_packet::http::HttpRequest;
use traffic_shadowing::shadow_packet::ipv4::{IpProtocol, Ipv4Packet};
use traffic_shadowing::shadow_packet::tcp::{TcpFlags, TcpSegment};
use traffic_shadowing::shadow_packet::tls::ClientHello;
use traffic_shadowing::shadow_packet::udp::UdpDatagram;
use traffic_shadowing::shadow_packet::{extract_app_field, DecodedView};

/// Deterministic PRNG (xorshift64*), same recipe as the engine's own
/// randomized tests.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

/// A random syntactically valid DNS name, one to four labels.
fn random_name(rng: &mut Rng) -> DnsName {
    let labels = 1 + rng.below(4);
    let mut s = String::new();
    for i in 0..labels {
        if i > 0 {
            s.push('.');
        }
        let len = 1 + rng.below(12);
        for _ in 0..len {
            let c = b'a' + (rng.below(26) as u8);
            s.push(c as char);
        }
    }
    DnsName::parse(&s).expect("generated name is valid")
}

/// One random application payload: sometimes a faithful encoding, sometimes
/// host-less/response-flagged variants that must extract to `None`.
fn random_app_payload(rng: &mut Rng) -> Vec<u8> {
    match rng.below(6) {
        0 => {
            let mut q = DnsMessage::query(rng.next() as u16, random_name(rng));
            if rng.below(3) == 0 {
                q.flags.response = true; // responses carry no shadowable field
            }
            q.encode()
        }
        1 => HttpRequest::get(random_name(rng).as_str(), "/probe").encode(),
        2 => b"GET / HTTP/1.1\r\nUser-Agent: none\r\n\r\n".to_vec(), // no Host
        3 => {
            let mut nonce = [0u8; 32];
            for b in nonce.iter_mut() {
                *b = rng.next() as u8;
            }
            ClientHello::with_sni(random_name(rng).as_str(), nonce).encode_record()
        }
        4 => {
            // A hello with its extensions stripped — valid TLS, no SNI.
            let mut hello = ClientHello::with_sni("strip.example", [7u8; 32]);
            hello.extensions.clear();
            hello.encode_record()
        }
        _ => {
            let len = rng.below(64) as usize;
            rng.bytes(len)
        }
    }
}

/// A random packet: random transport wrapping, random ports biased toward
/// the watched ones (53/80/443), with a chance of truncating the final
/// encoding mid-byte-stream.
fn random_packet(rng: &mut Rng) -> Ipv4Packet {
    let app = random_app_payload(rng);
    let port = match rng.below(5) {
        0 => 53,
        1 => 80,
        2 => 443,
        3 => 8080,
        _ => rng.below(65536) as u16,
    };
    let (proto, mut wire) = match rng.below(3) {
        0 => (
            IpProtocol::Udp,
            UdpDatagram::new(40_000 + rng.below(1000) as u16, port, app).encode(),
        ),
        1 => (
            IpProtocol::Tcp,
            TcpSegment::new(
                40_000 + rng.below(1000) as u16,
                port,
                rng.next() as u32,
                rng.next() as u32,
                TcpFlags::PSH_ACK,
                app,
            )
            .encode(),
        ),
        _ => (IpProtocol::Icmp, app),
    };
    // Truncation sweep: a quarter of cases cut the wire encoding short, so
    // every decoder sees partial headers and partial payloads.
    if rng.below(4) == 0 && !wire.is_empty() {
        wire.truncate(rng.below(wire.len() as u64) as usize);
    }
    Ipv4Packet::new(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        proto,
        32,
        rng.next() as u16,
        wire,
    )
}

#[test]
fn memoized_extraction_equals_direct_reparse() {
    let mut rng = Rng(0x5eed_cafe_f00d_0001);
    for case in 0..4_000u32 {
        let pkt = random_packet(&mut rng);
        let view = DecodedView::new();
        let memoized = view.app_field(&pkt).cloned();
        let direct = extract_app_field(&pkt);
        assert_eq!(
            memoized,
            direct,
            "case {case}: memoized view diverged from direct re-parse \
             (proto {:?}, {} payload bytes)",
            pkt.header.protocol,
            pkt.payload.len()
        );
        // The cached answer must not drift on repeated reads.
        assert_eq!(view.app_field(&pkt).cloned(), memoized, "case {case}");
    }
}

#[test]
fn cached_view_survives_per_hop_header_mutation() {
    // In flight the engine decrements TTL at every hop while the payload
    // (and therefore the view) is shared. A re-parse of the mutated packet
    // must agree with the view cached at the first hop.
    let mut rng = Rng(0xdead_beef_0000_0002);
    for case in 0..1_000u32 {
        let mut pkt = random_packet(&mut rng);
        let view = DecodedView::new();
        let at_first_hop = view.app_field(&pkt).cloned();
        for _ in 0..(1 + rng.below(14)) {
            pkt.header.ttl = pkt.header.ttl.saturating_sub(1);
            assert_eq!(
                extract_app_field(&pkt),
                at_first_hop,
                "case {case}: TTL mutation changed the extraction"
            );
            assert_eq!(view.app_field(&pkt).cloned(), at_first_hop, "case {case}");
        }
    }
}

#[test]
fn duplicated_packets_share_one_decode() {
    // Fault-layer duplicates clone the packet and the Arc'd view; the
    // duplicate must see the original's cached field without re-decoding.
    use std::sync::Arc;
    let mut rng = Rng(0x0bad_cafe_0000_0003);
    for _ in 0..500u32 {
        let pkt = random_packet(&mut rng);
        let view = Arc::new(DecodedView::new());
        let original = view.app_field(&pkt).cloned();
        let (dup_pkt, dup_view) = (pkt.clone(), Arc::clone(&view));
        assert!(dup_view.is_decoded(), "duplicate arrived pre-decoded");
        assert_eq!(dup_view.app_field(&dup_pkt).cloned(), original);
    }
}
