//! LPM lookup throughput: the stride-4 treebitmap trie behind
//! `GeoDb::lookup` against the old sorted-vec backward scan (kept as
//! `GeoScanIndex`), over the standard world's prefix table and a shared
//! deterministic probe stream. Records `BENCH_topo.json` so the trie/scan
//! ratio and the end-to-end router-graph hops/sec are part of the repo's
//! perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shadow_bench::topo::{gen_probes, record_topo_json, run_topo, topo_json_path};

const PROBES: usize = 200_000;
const FOLD_ROUNDS: usize = 50;

/// One-shot trajectory measurement, recorded into `BENCH_topo.json`
/// (skipped in `cargo test` smoke mode so a tiny debug run never
/// overwrites the committed numbers).
fn trajectory(_c: &mut Criterion) {
    if criterion::test_mode() {
        let metrics = run_topo(5_000, 2);
        println!(
            "Testing topo/lpm_lookup ... ok ({:.2}x trie vs scan, {} prefixes)",
            metrics.trie_over_scan, metrics.prefixes
        );
        return;
    }
    run_topo(PROBES / 10, 5); // warm-up
    let metrics = run_topo(PROBES, FOLD_ROUNDS);
    println!(
        "BENCH {{\"name\":\"topo/lpm_lookup\",\"iters\":1,\"scan_lookups_per_sec\":{:.0},\"trie_lookups_per_sec\":{:.0},\"trie_over_scan\":{:.2},\"hops_per_sec\":{:.0}}}",
        metrics.scan_lookups_per_sec,
        metrics.trie_lookups_per_sec,
        metrics.trie_over_scan,
        metrics.hops_per_sec
    );
    let record = record_topo_json(&topo_json_path(), "topo/lpm_lookup", metrics);
    if let Some(speedup) = record.speedup_trie_per_sec {
        println!("trie throughput vs recorded baseline: {speedup:.2}x lookups/sec");
    }
}

/// Criterion comparison over a shared probe stream: identical addresses,
/// identical answers (the fixture cross-checks), the difference is the
/// index structure walking them.
fn bench(c: &mut Criterion) {
    let outcome = shadow_bench::study();
    let db = &outcome.world.geo;
    let probes = gen_probes(db, PROBES / 4);
    let scan = db.scan_index();
    let mut group = c.benchmark_group("lpm_lookup");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("scan", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for &addr in &probes {
                if let Some(r) = scan.lookup(addr) {
                    sum = sum.wrapping_add(u64::from(r.asn.0));
                }
            }
            sum
        })
    });
    group.bench_function("trie", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for &addr in &probes {
                if let Some(r) = db.lookup(addr) {
                    sum = sum.wrapping_add(u64::from(r.asn.0));
                }
            }
            sum
        })
    });
    group.finish();

    shadow_bench::report_peak_rss("lpm_lookup");
}

criterion_group!(benches, trajectory, bench);
criterion_main!(benches);
