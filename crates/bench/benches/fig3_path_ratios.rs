//! Figure 3 — ratio of client-server paths subject to traffic shadowing.
//!
//! Paper: DNS decoys most susceptible (Yandex/114DNS/OneDNS > 70%);
//! HTTP/TLS < 10% of paths; roots/control clean. The harness prints the
//! per-destination ratios and times the landscape computation.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::report::render_table;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let landscape = outcome.landscape();

    println!("\n=== Figure 3 (reproduced): problematic-path ratios ===");
    let mut rows = Vec::new();
    for dest in [
        "Yandex",
        "114DNS",
        "One DNS",
        "DNS PAI",
        "VERCARA",
        "Google",
        "Cloudflare",
        "Quad9",
        "OpenDNS",
        "self-built",
        "a.root",
        ".com",
    ] {
        rows.push(vec![
            dest.to_string(),
            pct(landscape.destination_ratio(dest, DecoyProtocol::Dns)),
        ]);
    }
    println!("{}", render_table(&["DNS destination", "ratio"], &rows));
    println!(
        "protocol totals: DNS {} | HTTP {} | TLS {}",
        pct(landscape.protocol_ratio(DecoyProtocol::Dns)),
        pct(landscape.protocol_ratio(DecoyProtocol::Http)),
        pct(landscape.protocol_ratio(DecoyProtocol::Tls)),
    );
    println!("paper: Resolver_h > 70%, HTTP/TLS < 10%, roots/control 0%\n");

    c.bench_function("fig3/landscape_compute", |b| b.iter(|| outcome.landscape()));

    shadow_bench::report_peak_rss("fig3_path_ratios");
}

criterion_group!(benches, bench);
criterion_main!(benches);
