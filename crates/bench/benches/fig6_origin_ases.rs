//! Figure 6 — origin ASes of unsolicited requests triggered by DNS decoys
//! to Resolver_h.
//!
//! Paper: Google (AS15169) is a dominant origin of unsolicited DNS
//! re-queries; 114DNS fans out to 4 ASes; 5.2% of origin IPs blocklisted.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::report::render_table;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let origins = outcome.fig6_origins();

    println!("\n=== Figure 6 (reproduced): origins of unsolicited requests ===");
    println!(
        "Google (AS15169) share of DNS re-queries: {} (paper: dominant origin)",
        pct(origins.as_share(15169))
    );
    for dest in ["Yandex", "114DNS", "One DNS"] {
        let rows: Vec<Vec<String>> = origins
            .named_rows(dest, &outcome.world.catalog)
            .into_iter()
            .take(4)
            .map(|(name, count)| vec![name, count.to_string()])
            .collect();
        println!("\n{dest} (fan-out {} ASes):", origins.origin_as_count(dest));
        println!("{}", render_table(&["Origin AS", "requests"], &rows));
    }
    println!(
        "origin-IP blocklist rates: {}",
        origins
            .blocklist_rates
            .iter()
            .map(|(k, v)| format!("{k} {}", pct(*v)))
            .collect::<Vec<_>>()
            .join(" · ")
    );
    println!("paper: DNS 5.2% blocklisted; 114DNS → 4 origin ASes\n");

    c.bench_function("fig6/origins_compute", |b| {
        b.iter(|| outcome.fig6_origins())
    });

    shadow_bench::report_peak_rss("fig6_origin_ases");
}

criterion_group!(benches, bench);
criterion_main!(benches);
