//! Pipeline-scale benchmarks: how fast the simulator executes campaigns and
//! the correlator digests capture streams — the numbers a user sizing a
//! larger simulated world cares about.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use shadow_bench::hotpath::{pipeline_json_path, record_bench_json, run_hot_path};
use shadow_bench::study;
use traffic_shadowing::shadow_core::campaign::{CampaignRunner, Phase1Config};
use traffic_shadowing::shadow_core::correlate::Correlator;
use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::world::{World, WorldConfig};
use traffic_shadowing::shadow_netsim::time::SimDuration;

/// Engine hot path: per-hop forwarding + DPI inspection over a tapped
/// router chain, recorded into `BENCH_pipeline.json` so the repo's perf
/// trajectory is machine-readable (hops/sec, events/sec, peak RSS).
fn hot_path(_c: &mut Criterion) {
    if criterion::test_mode() {
        // Smoke mode: prove the fixture still runs, but never overwrite
        // the committed trajectory with a one-shot tiny measurement.
        let metrics = run_hot_path(500);
        println!("Testing pipeline/hot_path ... ok ({} hops)", metrics.hops);
        return;
    }
    run_hot_path(2_000); // warm-up: route cache, allocator, branch predictors
    let metrics = run_hot_path(60_000);
    println!(
        "BENCH {{\"name\":\"pipeline/hot_path\",\"iters\":1,\"mean_ns\":{},\"hops_per_sec\":{:.0},\"events_per_sec\":{:.0}}}",
        metrics.elapsed_ns, metrics.hops_per_sec, metrics.events_per_sec
    );
    let record = record_bench_json(&pipeline_json_path(), "pipeline/hot_path", metrics);
    if let Some(speedup) = record.speedup_hops_per_sec {
        println!("hot_path speedup vs recorded baseline: {speedup:.2}x hops/sec");
    }
}

fn bench(c: &mut Criterion) {
    // Correlation throughput over the cached standard campaign.
    let outcome = study();
    println!(
        "\ncorrelating {} arrivals against {} decoys",
        outcome.phase1.arrivals.len(),
        outcome.phase1.registry.len()
    );
    c.bench_function("pipeline/correlate_standard_campaign", |b| {
        b.iter(|| {
            let correlator = Correlator::new(&outcome.phase1.registry);
            correlator.correlate(&outcome.phase1.arrivals)
        })
    });
    c.bench_function("pipeline/problematic_paths", |b| {
        let correlator = Correlator::new(&outcome.phase1.registry);
        b.iter(|| correlator.problematic_paths(&outcome.correlated))
    });

    // World construction.
    c.bench_function("pipeline/world_build_tiny", |b| {
        b.iter(|| World::build(WorldConfig::tiny(3)))
    });

    // A full tiny Phase I campaign per iteration (world build + preflight +
    // spread + capture): the end-to-end simulator cost.
    let mut group = c.benchmark_group("pipeline_e2e");
    group.sample_size(10);
    group.bench_function("tiny_phase1_campaign", |b| {
        b.iter_batched(
            || {
                let mut world = World::build(WorldConfig::tiny(3));
                NoiseFilter::run_and_apply(&mut world);
                world
            },
            |mut world| {
                CampaignRunner::run_phase1(
                    &mut world,
                    &Phase1Config {
                        grace: SimDuration::from_days(35),
                        ..Phase1Config::default()
                    },
                )
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();

    shadow_bench::report_peak_rss("pipeline_throughput");
}

criterion_group!(benches, hot_path, bench);
criterion_main!(benches);
