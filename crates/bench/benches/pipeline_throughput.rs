//! Pipeline-scale benchmarks: how fast the simulator executes campaigns and
//! the correlator digests capture streams — the numbers a user sizing a
//! larger simulated world cares about.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use shadow_bench::study;
use traffic_shadowing::shadow_core::campaign::{CampaignRunner, Phase1Config};
use traffic_shadowing::shadow_core::correlate::Correlator;
use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::world::{World, WorldConfig};
use traffic_shadowing::shadow_netsim::time::SimDuration;

fn bench(c: &mut Criterion) {
    // Correlation throughput over the cached standard campaign.
    let outcome = study();
    println!(
        "\ncorrelating {} arrivals against {} decoys",
        outcome.phase1.arrivals.len(),
        outcome.phase1.registry.len()
    );
    c.bench_function("pipeline/correlate_standard_campaign", |b| {
        b.iter(|| {
            let correlator = Correlator::new(&outcome.phase1.registry);
            correlator.correlate(&outcome.phase1.arrivals)
        })
    });
    c.bench_function("pipeline/problematic_paths", |b| {
        let correlator = Correlator::new(&outcome.phase1.registry);
        b.iter(|| correlator.problematic_paths(&outcome.correlated))
    });

    // World construction.
    c.bench_function("pipeline/world_build_tiny", |b| {
        b.iter(|| World::build(WorldConfig::tiny(3)))
    });

    // A full tiny Phase I campaign per iteration (world build + preflight +
    // spread + capture): the end-to-end simulator cost.
    let mut group = c.benchmark_group("pipeline_e2e");
    group.sample_size(10);
    group.bench_function("tiny_phase1_campaign", |b| {
        b.iter_batched(
            || {
                let mut world = World::build(WorldConfig::tiny(3));
                NoiseFilter::run_and_apply(&mut world);
                world
            },
            |mut world| {
                CampaignRunner::run_phase1(
                    &mut world,
                    &Phase1Config {
                        grace: SimDuration::from_days(35),
                        ..Phase1Config::default()
                    },
                )
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
