//! Table 3 — top networks of on-path traffic observers, plus the
//! observer-IP country split.
//!
//! Paper: 572 observer IPs, 79% in CN; HTTP top AS4134 (44%), TLS top
//! AS4134 (54%); DNS wire observers HostRoyale/China Unicom Beijing/
//! Zenlayer.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::location::ObserverIpSummary;
use traffic_shadowing::shadow_analysis::report::render_table;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let summary = outcome.observer_ips();

    println!("\n=== Table 3 (reproduced): top observer ASes ===");
    println!(
        "observer IPs: {} total, {} in CN (paper: 572, 79%)",
        summary.total_ips,
        pct(summary.country_fraction("CN"))
    );
    for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
        if let Some(rows) = summary.top_ases.get(protocol.as_str()) {
            let table: Vec<Vec<String>> = rows
                .iter()
                .take(3)
                .map(|r| {
                    vec![
                        format!("AS{}", r.asn),
                        r.name.clone(),
                        r.country.clone(),
                        r.paths.to_string(),
                        pct(r.share),
                    ]
                })
                .collect();
            println!("\n{} decoys:", protocol.as_str());
            println!(
                "{}",
                render_table(&["AS", "Name", "CC", "Paths", "Share"], &table)
            );
        }
    }
    println!("paper: HTTP AS4134 44% / AS58563 10% / AS137697 6.1%; TLS AS4134 54%\n");

    c.bench_function("table3/observer_ip_summary", |b| {
        b.iter(|| {
            ObserverIpSummary::compute(
                &outcome.traceroutes,
                &outcome.world.geo,
                &outcome.world.catalog,
            )
        })
    });

    shadow_bench::report_peak_rss("table3_observer_ases");
}

criterion_group!(benches, bench);
criterion_main!(benches);
