//! Figure 7 — CDF of time between unsolicited requests and the initial
//! HTTP (/TLS) decoy.
//!
//! Paper: data observed from HTTP/TLS decoys is retained shorter than from
//! DNS decoys (fewer multi-day arrivals); mid-path observers correlate
//! with shorter intervals (storage-bounded routing devices), destination
//! observers with longer ones.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::report::render_series;
use traffic_shadowing::shadow_analysis::temporal::interval_cdf;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_netsim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let (http, tls) = outcome.fig7_cdfs();
    let dns = outcome.fig4_cdf();

    println!("\n=== Figure 7 (reproduced): HTTP/TLS interval CDFs ===");
    println!(
        "{}",
        render_series(
            &format!("HTTP decoys (n={})", http.len()),
            &http.paper_grid()
        )
    );
    println!(
        "{}",
        render_series(&format!("TLS decoys (n={})", tls.len()), &tls.paper_grid())
    );
    let day10 = SimDuration::from_days(10);
    println!(
        "≥10-day tail: HTTP {} | TLS {} | DNS (Resolver_h) {}",
        pct(1.0 - http.fraction_at(day10)),
        pct(1.0 - tls.fraction_at(day10)),
        pct(1.0 - dns.fraction_at(day10)),
    );
    println!("paper: HTTP/TLS retained shorter than DNS (smaller multi-day tail)\n");

    c.bench_function("fig7/interval_cdfs", |b| {
        b.iter(|| {
            (
                interval_cdf(&outcome.correlated, DecoyProtocol::Http, None),
                interval_cdf(&outcome.correlated, DecoyProtocol::Tls, None),
            )
        })
    });

    shadow_bench::report_peak_rss("fig7_http_tls_temporal_cdf");
}

criterion_group!(benches, bench);
criterion_main!(benches);
