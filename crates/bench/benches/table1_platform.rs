//! Table 1 — capabilities of the VPN measurement platform.
//!
//! Paper: 19 providers, 4,364 VPs, 121 ASes, 82 countries (global
//! 6/2,179/74/81; CN 13/2,185/47/30 provinces). The harness prints our
//! (scaled-down) equivalent and times the summary computation.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::study;
use traffic_shadowing::shadow_analysis::report::render_table;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let rows = outcome.world.platform.table1(&outcome.world.geo);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.market.to_string(),
                r.providers.to_string(),
                r.vps.to_string(),
                r.ases.to_string(),
                r.countries.to_string(),
            ]
        })
        .collect();
    println!("\n=== Table 1 (reproduced) ===");
    println!(
        "{}",
        render_table(&["Market", "Providers", "VPs", "ASes", "Countries"], &table)
    );
    println!("paper: Global 6/2179/74/81 · CN 13/2185/47/30 · Total 19/4364/121/82\n");

    c.bench_function("table1/platform_summary", |b| {
        b.iter(|| outcome.world.platform.table1(&outcome.world.geo))
    });

    shadow_bench::report_peak_rss("table1_platform");
}

criterion_group!(benches, bench);
criterion_main!(benches);
