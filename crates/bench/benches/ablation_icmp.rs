//! Ablation: traceroute reliability vs. silent routers.
//!
//! The paper acknowledges "hops and addresses reported by traceroute are
//! not always complete or reliable, when devices refuse to respond". This
//! ablation sweeps the fraction of ICMP-responsive routers and reports how
//! Phase II's observer localization degrades — quantifying the limitation.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::pct;
use traffic_shadowing::shadow_core::world::WorldConfig;
use traffic_shadowing::study::{Study, StudyConfig};

fn localization_at(icmp_percent: u8) -> (usize, usize, usize) {
    let outcome = Study::run(StudyConfig {
        world: WorldConfig {
            icmp_response_percent: icmp_percent,
            ..WorldConfig::tiny(51)
        },
        ..StudyConfig::tiny(51)
    });
    let traced = outcome.traceroutes.len();
    let localized = outcome
        .traceroutes
        .iter()
        .filter(|r| r.normalized_hop.is_some())
        .count();
    let with_addr = outcome
        .traceroutes
        .iter()
        .filter(|r| r.observer_addr.is_some())
        .count();
    (traced, localized, with_addr)
}

fn bench(c: &mut Criterion) {
    println!("\n=== Ablation: ICMP responsiveness vs Phase II accuracy ===");
    println!(
        "{:>14} {:>8} {:>11} {:>14}",
        "icmp-responsive", "traced", "localized", "addr revealed"
    );
    for percent in [100u8, 85, 50, 20] {
        let (traced, localized, with_addr) = localization_at(percent);
        println!(
            "{:>13}% {:>8} {:>11} {:>14}",
            percent,
            traced,
            format!(
                "{} ({})",
                localized,
                pct(localized as f64 / traced.max(1) as f64)
            ),
            format!(
                "{} ({})",
                with_addr,
                pct(with_addr as f64 / traced.max(1) as f64)
            ),
        );
    }
    println!("expected: localization survives silent hops (the triggering TTL is");
    println!("observed at the honeypot), but observer-address revelation degrades\n");

    let mut group = c.benchmark_group("ablation_icmp");
    group.sample_size(10);
    group.bench_function("tiny_campaign_icmp_50", |b| b.iter(|| localization_at(50)));
    group.finish();

    shadow_bench::report_peak_rss("ablation_icmp");
}

criterion_group!(benches, bench);
criterion_main!(benches);
