//! Substrate micro-benchmarks: the wire codecs and identifier machinery
//! every packet of the campaign passes through.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv4Addr;
use traffic_shadowing::shadow_core::ident::DecoyIdent;
use traffic_shadowing::shadow_packet::dns::{DnsMessage, DnsName};
use traffic_shadowing::shadow_packet::http::HttpRequest;
use traffic_shadowing::shadow_packet::ipv4::{IpProtocol, Ipv4Packet};
use traffic_shadowing::shadow_packet::tls::{sniff_sni, ClientHello};

fn bench(c: &mut Criterion) {
    let name = DnsName::parse("g6d8jjkut5obc4ags2bkdi-9982.www.experiment.example").unwrap();
    let query = DnsMessage::query(0xbeef, name.clone());
    let query_bytes = query.encode();

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(query_bytes.len() as u64));
    group.bench_function("dns_encode", |b| b.iter(|| black_box(&query).encode()));
    group.bench_function("dns_decode", |b| {
        b.iter(|| DnsMessage::decode(black_box(&query_bytes)).unwrap())
    });

    let pkt = Ipv4Packet::new(
        Ipv4Addr::new(203, 0, 113, 7),
        Ipv4Addr::new(77, 88, 8, 8),
        IpProtocol::Udp,
        64,
        0x1234,
        query_bytes.clone(),
    );
    let pkt_bytes = pkt.encode();
    group.throughput(Throughput::Bytes(pkt_bytes.len() as u64));
    group.bench_function("ipv4_encode", |b| b.iter(|| black_box(&pkt).encode()));
    group.bench_function("ipv4_decode", |b| {
        b.iter(|| Ipv4Packet::decode(black_box(&pkt_bytes)).unwrap())
    });

    let req = HttpRequest::get(name.as_str(), "/");
    let req_bytes = req.encode();
    group.throughput(Throughput::Bytes(req_bytes.len() as u64));
    group.bench_function("http_decode", |b| {
        b.iter(|| HttpRequest::decode(black_box(&req_bytes)).unwrap())
    });

    let hello = ClientHello::with_sni(name.as_str(), [7u8; 32]).encode_record();
    group.throughput(Throughput::Bytes(hello.len() as u64));
    group.bench_function("tls_sniff_sni", |b| {
        b.iter(|| sniff_sni(black_box(&hello)).unwrap())
    });
    group.finish();

    let ident = DecoyIdent::new(
        1_234_567,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(8, 8, 8, 8),
        64,
    );
    let label = ident.encode();
    let mut group = c.benchmark_group("ident");
    group.bench_function("encode", |b| b.iter(|| black_box(&ident).encode()));
    group.bench_function("decode", |b| {
        b.iter(|| DecoyIdent::decode(black_box(&label)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
