//! Substrate micro-benchmarks: the wire codecs and identifier machinery
//! every packet of the campaign passes through. Measurements are also
//! persisted to `BENCH_substrate.json` at the workspace root, the codec
//! half of the perf trajectory next to `BENCH_pipeline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use serde::Serialize;
use shadow_bench::hotpath::peak_rss_bytes;
use std::net::Ipv4Addr;
use std::path::Path;
use traffic_shadowing::shadow_core::ident::DecoyIdent;
use traffic_shadowing::shadow_packet::dns::{DnsMessage, DnsName};
use traffic_shadowing::shadow_packet::http::HttpRequest;
use traffic_shadowing::shadow_packet::ipv4::{IpProtocol, Ipv4Packet};
use traffic_shadowing::shadow_packet::tls::{sniff_sni, ClientHello};

fn bench(c: &mut Criterion) {
    let name = DnsName::parse("g6d8jjkut5obc4ags2bkdi-9982.www.experiment.example").unwrap();
    let query = DnsMessage::query(0xbeef, name.clone());
    let query_bytes = query.encode();

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Bytes(query_bytes.len() as u64));
    group.bench_function("dns_encode", |b| b.iter(|| black_box(&query).encode()));
    group.bench_function("dns_decode", |b| {
        b.iter(|| DnsMessage::decode(black_box(&query_bytes)).unwrap())
    });

    let pkt = Ipv4Packet::new(
        Ipv4Addr::new(203, 0, 113, 7),
        Ipv4Addr::new(77, 88, 8, 8),
        IpProtocol::Udp,
        64,
        0x1234,
        query_bytes.clone(),
    );
    let pkt_bytes = pkt.encode();
    group.throughput(Throughput::Bytes(pkt_bytes.len() as u64));
    group.bench_function("ipv4_encode", |b| b.iter(|| black_box(&pkt).encode()));
    group.bench_function("ipv4_decode", |b| {
        b.iter(|| Ipv4Packet::decode(black_box(&pkt_bytes)).unwrap())
    });

    let req = HttpRequest::get(name.as_str(), "/");
    let req_bytes = req.encode();
    group.throughput(Throughput::Bytes(req_bytes.len() as u64));
    group.bench_function("http_decode", |b| {
        b.iter(|| HttpRequest::decode(black_box(&req_bytes)).unwrap())
    });

    let hello = ClientHello::with_sni(name.as_str(), [7u8; 32]).encode_record();
    group.throughput(Throughput::Bytes(hello.len() as u64));
    group.bench_function("tls_sniff_sni", |b| {
        b.iter(|| sniff_sni(black_box(&hello)).unwrap())
    });
    group.finish();

    let ident = DecoyIdent::new(
        1_234_567,
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(8, 8, 8, 8),
        64,
    );
    let label = ident.encode();
    let mut group = c.benchmark_group("ident");
    group.bench_function("encode", |b| b.iter(|| black_box(&ident).encode()));
    group.bench_function("decode", |b| {
        b.iter(|| DecoyIdent::decode(black_box(&label)).unwrap())
    });
    group.finish();
}

/// The machine-readable codec trajectory committed as
/// `BENCH_substrate.json`.
#[derive(Serialize)]
struct SubstrateRecord {
    bench: String,
    entries: Vec<SubstrateEntry>,
    peak_rss_bytes: Option<u64>,
}

#[derive(Serialize)]
struct SubstrateEntry {
    name: String,
    iters: u64,
    mean_ns: u64,
}

/// Runs after the measurement groups: drain the criterion reports and
/// persist them. Skipped in `--test` smoke mode so a one-iteration run
/// never overwrites real numbers.
fn save_json(_c: &mut Criterion) {
    if criterion::test_mode() {
        shadow_bench::report_peak_rss("substrate_throughput");
        return;
    }
    let entries: Vec<SubstrateEntry> = criterion::take_reports()
        .into_iter()
        .map(|r| SubstrateEntry {
            name: r.name,
            iters: r.iters,
            mean_ns: r.mean_ns,
        })
        .collect();
    let record = SubstrateRecord {
        bench: "substrate".to_string(),
        entries,
        peak_rss_bytes: peak_rss_bytes(),
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_substrate.json");
    let text = serde_json::to_string_pretty(&record).expect("substrate record serializes");
    std::fs::write(&path, text + "\n").expect("substrate record written");
    println!("substrate trajectory written to {}", path.display());

    shadow_bench::report_peak_rss("substrate_throughput");
}

criterion_group!(benches, bench, save_json);
criterion_main!(benches);
