//! Figure 5 — breakdown of DNS decoys per destination resolver, by outcome
//! class (protocol combination × delay bucket).
//!
//! Paper: >99% of Yandex decoys shadowed; ~50% of Yandex/114DNS decoys
//! yield HTTP(S) probes after hours/days; resolvers beyond Resolver_h show
//! only within-the-hour DNS repeats.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::breakdown::DecoyOutcome;
use traffic_shadowing::shadow_analysis::report::render_table;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let breakdown = outcome.fig5_breakdown();

    println!("\n=== Figure 5 (reproduced): DNS decoy outcomes per destination ===");
    let mut rows = Vec::new();
    for dest in [
        "Yandex",
        "114DNS",
        "One DNS",
        "DNS PAI",
        "VERCARA",
        "Google",
        "OpenDNS",
        "self-built",
    ] {
        if let Some(b) = breakdown.iter().find(|b| b.destination == dest) {
            rows.push(vec![
                dest.to_string(),
                b.decoys.to_string(),
                pct(b.fraction(DecoyOutcome::Silent)),
                pct(b.fraction(DecoyOutcome::DnsRepeatsWithinHour)),
                pct(b.fraction(DecoyOutcome::DnsRepeatsLater)),
                pct(b.fraction(DecoyOutcome::HttpWithinHour)),
                pct(b.fraction(DecoyOutcome::HttpLater)),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "Destination",
                "decoys",
                "silent",
                "DNS<1h",
                "DNS>1h",
                "HTTP(S)<1h",
                "HTTP(S)>1h"
            ],
            &rows
        )
    );
    println!("paper: Yandex >99% shadowed, ~50% → HTTP(S) after hours/days\n");

    c.bench_function("fig5/breakdown_compute", |b| {
        b.iter(|| outcome.fig5_breakdown())
    });

    shadow_bench::report_peak_rss("fig5_decoy_breakdown");
}

criterion_group!(benches, bench);
criterion_main!(benches);
