//! Section 5.2 — open ports of on-wire observers.
//!
//! Paper: 92% of ICMP-revealed observers expose no open ports; the most
//! common open port among the rest is 179 (BGP) — routing devices between
//! networks.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};

fn bench(c: &mut Criterion) {
    let outcome = study();
    let report = outcome.observer_port_scan();

    println!("\n=== §5.2 (reproduced): observer open ports ===");
    println!("observers scanned: {}", report.targets);
    println!(
        "no open ports: {} (paper 92%)",
        pct(report.closed_fraction())
    );
    println!(
        "most common open port: {:?} (paper: 179/BGP)",
        report.top_port()
    );
    println!("per-port counts: {:?}\n", report.port_counts);

    c.bench_function("s52/port_scan", |b| b.iter(|| outcome.observer_port_scan()));

    shadow_bench::report_peak_rss("s52_open_ports");
}

criterion_group!(benches, bench);
criterion_main!(benches);
