//! Serving-surface benchmark: start the `shadow-serve` daemon, run its
//! campaign to completion, then hammer the pre-rendered snapshot
//! endpoint from many concurrent clients. Records snapshot reads/sec and
//! p50/p99 request latency into `BENCH_serve.json`, plus the engine
//! hot-path rate measured while the idle server is still bound — the
//! guard that snapshot serving costs the pipeline nothing.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::hotpath::run_hot_path;
use shadow_bench::serving::{
    percentile_us, record_serve_bench_json, serve_json_path, ServeMetrics,
};
use shadow_serve::client::http_get;
use shadow_serve::{serve, CampaignDriver, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 7;

/// Run the daemon campaign to completion, then measure `clients`
/// concurrent readers against `/api/aggregates` for `window`, and the
/// hot path with the idle server still up.
fn measure(clients: usize, window: Duration, hotpath_packets: u64) -> ServeMetrics {
    let config = ServeConfig {
        waves: 1,
        ..ServeConfig::tiny(SEED)
    };
    let mut handle = serve(CampaignDriver::new(config), "127.0.0.1:0").expect("daemon starts");
    handle.join_campaign().expect("campaign finishes");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut latencies_us = Vec::new();
                let mut errors = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let begun = Instant::now();
                    match http_get(addr, "/api/aggregates") {
                        Ok((200, _)) => latencies_us.push(begun.elapsed().as_micros() as u64),
                        _ => errors += 1,
                    }
                }
                (latencies_us, errors)
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Release);

    let mut all_us = Vec::new();
    let mut errors = 0u64;
    for worker in workers {
        let (latencies, errs) = worker.join().expect("loadgen client");
        all_us.extend(latencies);
        errors += errs;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    all_us.sort_unstable();

    // The idle-server guard: nobody is reading now, so the hot path
    // should run at its BENCH_pipeline.json rate.
    let idle_hotpath = run_hot_path(hotpath_packets);
    handle.shutdown();

    ServeMetrics {
        clients: clients as u64,
        window_secs: elapsed,
        reads: all_us.len() as u64,
        reads_per_sec: all_us.len() as f64 / elapsed,
        p50_us: percentile_us(&all_us, 0.50),
        p99_us: percentile_us(&all_us, 0.99),
        errors,
        idle_hotpath_hops_per_sec: idle_hotpath.hops_per_sec,
    }
}

fn serve_surface(_c: &mut Criterion) {
    if criterion::test_mode() {
        // Smoke mode: prove the daemon + loadgen fixture runs, but never
        // overwrite the committed trajectory with a tiny measurement.
        let metrics = measure(4, Duration::from_millis(300), 500);
        println!(
            "Testing serve/snapshot_reads ... ok ({} reads, {} errors)",
            metrics.reads, metrics.errors
        );
        assert_eq!(metrics.errors, 0, "loadgen saw failed reads");
        shadow_bench::report_peak_rss("serve_throughput");
        return;
    }
    let metrics = measure(32, Duration::from_secs(5), 60_000);
    println!(
        "BENCH {{\"name\":\"serve/snapshot_reads\",\"iters\":1,\"reads_per_sec\":{:.0},\"p50_us\":{},\"p99_us\":{},\"idle_hotpath_hops_per_sec\":{:.0}}}",
        metrics.reads_per_sec, metrics.p50_us, metrics.p99_us, metrics.idle_hotpath_hops_per_sec
    );
    let record = record_serve_bench_json(&serve_json_path(), "serve/snapshot_reads", metrics);
    if let Some(speedup) = record.speedup_reads_per_sec {
        println!("snapshot reads vs recorded baseline: {speedup:.2}x reads/sec");
    }

    shadow_bench::report_peak_rss("serve_throughput");
}

criterion_group!(benches, serve_surface);
criterion_main!(benches);
