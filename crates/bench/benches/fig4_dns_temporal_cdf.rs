//! Figure 4 — CDF of time between unsolicited requests and the initial DNS
//! decoy, for the Resolver_h destinations.
//!
//! Paper: sizable mass within 1 minute (DNS-DNS retries) and after days;
//! 40% of Yandex names re-appear ≥10 days later; no spike near the 1 h
//! wildcard-TTL mark; the other 15 resolvers see 95% within a minute.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::report::render_series;
use traffic_shadowing::shadow_analysis::temporal::interval_cdf;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_netsim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let cdf = outcome.fig4_cdf();
    println!(
        "\n=== Figure 4 (reproduced): Resolver_h interval CDF (n={}) ===",
        cdf.len()
    );
    println!("{}", render_series("CDF", &cdf.paper_grid()));
    println!(
        "mass within ±5min of the 1h mark: {} (cache-refresh check: no spike)",
        pct(cdf.mass_near(SimDuration::from_hours(1), SimDuration::from_mins(5)))
    );
    let others = outcome.fig4_other_resolvers_cdf();
    println!(
        "other 15 resolvers within 1 minute: {} (paper 95%)\n",
        pct(others.fraction_at(SimDuration::from_mins(1)))
    );

    c.bench_function("fig4/interval_cdf", |b| {
        b.iter(|| interval_cdf(&outcome.correlated, DecoyProtocol::Dns, None))
    });

    shadow_bench::report_peak_rss("fig4_dns_temporal_cdf");
}

criterion_group!(benches, bench);
criterion_main!(benches);
