//! Correlation throughput: the batch `Correlator` (clone every arrival
//! into a sample vector) against the capture-time `CorrelationSink`
//! (classify and fold, retain nothing), over the same synthetic stream.
//! Records `BENCH_correlate.json` so the streamed-vs-batch ratio and the
//! 10x-scale peak-RSS gap are part of the repo's perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use shadow_bench::correlate::{
    build_fixture, correlate_json_path, gen_stream, record_correlate_json, run_correlate,
};
use traffic_shadowing::shadow_core::correlate::Correlator;
use traffic_shadowing::shadow_core::sink::{CorrelationAggregates, CorrelationSink, SinkConfig};
use traffic_shadowing::shadow_honeypot::capture::ArrivalSink;

const DECOYS: usize = 1_200;
const ARRIVALS: u64 = 120_000;

/// One-shot trajectory measurement, recorded into `BENCH_correlate.json`
/// (skipped in `cargo test` smoke mode so a tiny debug run never
/// overwrites the committed numbers).
fn trajectory(_c: &mut Criterion) {
    if criterion::test_mode() {
        let metrics = run_correlate(60, 2_000);
        println!(
            "Testing correlate/trajectory ... ok ({:.2}x streamed vs batch)",
            metrics.streamed_over_batch
        );
        return;
    }
    run_correlate(DECOYS, ARRIVALS / 10); // warm-up
    let metrics = run_correlate(DECOYS, ARRIVALS);
    println!(
        "BENCH {{\"name\":\"correlate/throughput\",\"iters\":1,\"batch_arrivals_per_sec\":{:.0},\"streamed_arrivals_per_sec\":{:.0},\"streamed_over_batch\":{:.2}}}",
        metrics.batch_arrivals_per_sec,
        metrics.streamed_arrivals_per_sec,
        metrics.streamed_over_batch
    );
    if let (Some(streamed), Some(batch)) =
        (metrics.rss_streamed_10x_bytes, metrics.rss_batch_10x_bytes)
    {
        println!(
            "peak RSS at 10x scale ({} arrivals): streamed {:.1} MiB, after batch buffering {:.1} MiB",
            metrics.arrivals * 10,
            streamed as f64 / (1 << 20) as f64,
            batch as f64 / (1 << 20) as f64,
        );
    }
    let record = record_correlate_json(&correlate_json_path(), "correlate/throughput", metrics);
    if let Some(speedup) = record.speedup_streamed_per_sec {
        println!("streamed throughput vs recorded baseline: {speedup:.2}x arrivals/sec");
    }
}

/// Criterion comparison over a shared pre-built stream: identical input,
/// identical classifier state machine, identical end artifact (the
/// analysis aggregates) — the difference is retention. A correlate-only
/// line shows what the sample vector alone costs.
fn bench(c: &mut Criterion) {
    let fixture = build_fixture(DECOYS);
    let stream = gen_stream(&fixture.records, ARRIVALS / 4);
    let config = SinkConfig::streaming();
    let mut group = c.benchmark_group("correlate");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("batch_to_aggregates", |b| {
        let correlator = Correlator::new(&fixture.registry);
        b.iter(|| {
            let correlated = correlator.correlate(&stream);
            CorrelationAggregates::from_correlated(&correlated, config.late_cutoff).arrivals_seen
        })
    });
    group.bench_function("streamed_sink", |b| {
        b.iter(|| {
            let mut sink = CorrelationSink::new(fixture.registry.clone(), SinkConfig::streaming());
            for arrival in &stream {
                sink.offer(arrival);
            }
            sink.take_aggregates().arrivals_seen
        })
    });
    group.bench_function("batch_correlate_only", |b| {
        let correlator = Correlator::new(&fixture.registry);
        b.iter(|| correlator.correlate(&stream).len())
    });
    group.finish();

    shadow_bench::report_peak_rss("correlate_throughput");
}

criterion_group!(benches, trajectory, bench);
criterion_main!(benches);
