//! Ablation (§6): clear-text vs encrypted decoys.
//!
//! Regenerates the discussion section's predictions as a table —
//! resolver-side DNS shadowing survives encryption, TLS shadowing dies with
//! ECH — and times the encrypted campaign end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::pct;
use traffic_shadowing::shadow_core::campaign::Phase1Config;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_core::phase2::Phase2Config;
use traffic_shadowing::shadow_core::world::WorldConfig;
use traffic_shadowing::study::{Study, StudyConfig, StudyOutcome};

fn run(seed: u64, encrypted: bool) -> StudyOutcome {
    Study::run(StudyConfig {
        world: WorldConfig::tiny(seed),
        phase1: Phase1Config {
            encrypted_dns: encrypted,
            ech_tls: encrypted,
            ..Phase1Config::default()
        },
        phase2: Phase2Config::default(),
        trace_cap_per_protocol: 0,
        run_phase2: false,
        telemetry: traffic_shadowing::shadow_core::executor::TelemetryOptions::disabled(),
        faults: None,
        retain_arrivals: false,
    })
}

fn bench(c: &mut Criterion) {
    let clear = run(41, false);
    let encrypted = run(41, true);
    let clear_ls = clear.landscape();
    let enc_ls = encrypted.landscape();

    println!("\n=== Ablation: encryption (§6) ===");
    println!("{:<26} {:>11} {:>11}", "metric", "clear", "encrypted");
    println!(
        "{:<26} {:>11} {:>11}",
        "Yandex DNS ratio",
        pct(clear_ls.destination_ratio("Yandex", DecoyProtocol::Dns)),
        pct(enc_ls.destination_ratio("Yandex", DecoyProtocol::Dns)),
    );
    println!(
        "{:<26} {:>11} {:>11}",
        "TLS path ratio",
        pct(clear_ls.protocol_ratio(DecoyProtocol::Tls)),
        pct(enc_ls.protocol_ratio(DecoyProtocol::Tls)),
    );
    println!(
        "{:<26} {:>11} {:>11}",
        "HTTP path ratio",
        pct(clear_ls.protocol_ratio(DecoyProtocol::Http)),
        pct(enc_ls.protocol_ratio(DecoyProtocol::Http)),
    );
    println!("expected: DNS unchanged (resolver decrypts), TLS → 0 (ECH), HTTP unchanged\n");

    let mut group = c.benchmark_group("ablation_encryption");
    group.sample_size(10);
    group.bench_function("tiny_encrypted_campaign", |b| b.iter(|| run(41, true)));
    group.finish();

    shadow_bench::report_peak_rss("ablation_encryption");
}

criterion_group!(benches, bench);
criterion_main!(benches);
