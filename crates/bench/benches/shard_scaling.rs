//! Shard-scaling benchmark: Phase I cost as the campaign is split across
//! 1/2/4/8 shards (one private world per shard, merged with the
//! order-stable absorb). The output is byte-identical for every shard
//! count — see `tests/sharded_equivalence.rs` — so this axis measures pure
//! speedup.
//!
//! Two metrics per thread count:
//!
//! * `BENCH shard_scaling/phase1_threads_K` — wall-clock of the threaded
//!   executor on *this* host. On a single-core box (most CI runners) this
//!   cannot improve with K: the shards time-slice one core and each one
//!   replays the pre-flight, so wall-clock *grows* with K.
//! * `SHARD_SPEEDUP {"threads":K,...}` — the critical path: the slowest
//!   single shard's full pipeline (instantiate + pre-flight + owned Phase
//!   I slice), measured with shards run one at a time so they never
//!   contend. This is the wall-clock a host with >= K idle cores gets, and
//!   the number the >=2x-at-4-threads acceptance point reads.
//!
//! A third line, `SHARD_EVENTS {"threads":K,...}`, reports per-shard
//! simulator event counts from a metrics-enabled run (taken outside the
//! timed loop; the criterion measurements keep telemetry disabled) so load
//! imbalance across the round-robin VP split is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use traffic_shadowing::shadow_core::campaign::{CampaignRunner, Phase1Config};
use traffic_shadowing::shadow_core::executor::{
    run_phase1_sharded, run_phase1_sharded_with, shard_vps, TelemetryOptions,
};
use traffic_shadowing::shadow_core::noise::NoiseFilter;
use traffic_shadowing::shadow_core::sink::SinkConfig;
use traffic_shadowing::shadow_core::world::{generate_spec, WorldConfig};
use traffic_shadowing::shadow_vantage::platform::VpId;

fn bench(c: &mut Criterion) {
    let spec = generate_spec(WorldConfig::standard(7));
    let config = Phase1Config::default();
    println!(
        "\nsharding {} VPs across worker threads (standard world)",
        spec.platform.vps.len()
    );

    // Critical-path measurement: run each shard's pipeline alone and take
    // the slowest — the ideal-parallel wall-clock.
    let vp_ids: Vec<VpId> = spec.platform.vps.iter().map(|vp| vp.id).collect();
    let mut sequential_ns: Option<u128> = None;
    for threads in [1usize, 2, 4, 8] {
        let assignment = shard_vps(&vp_ids, threads);
        let mut critical_ns: u128 = 0;
        for owned in &assignment {
            let start = Instant::now();
            let mut world = spec.instantiate();
            NoiseFilter::run_and_apply(&mut world);
            let plan = CampaignRunner::plan_phase1(&world, &config);
            let data = CampaignRunner::execute_phase1(
                &mut world,
                &plan,
                &config,
                SinkConfig::retained(),
                |vp| owned.contains(&vp),
            );
            criterion::black_box(data);
            critical_ns = critical_ns.max(start.elapsed().as_nanos());
        }
        let baseline = *sequential_ns.get_or_insert(critical_ns);
        println!(
            "SHARD_SPEEDUP {{\"threads\":{},\"sequential_ns\":{},\"critical_path_ns\":{},\"speedup\":{:.2}}}",
            threads,
            baseline,
            critical_ns,
            baseline as f64 / critical_ns as f64
        );
    }

    // One metrics-enabled run per thread count (outside the timed group —
    // the criterion loop below stays telemetry-disabled) to report how
    // evenly the event load splits across shards.
    for threads in [1usize, 2, 4, 8] {
        let sharded =
            run_phase1_sharded_with(&spec, &config, threads, TelemetryOptions::enabled(false));
        let drained = &sharded.data.metrics.run.events_drained_per_shard;
        let total: u64 = drained.values().sum();
        let per_shard: Vec<String> = drained
            .iter()
            .map(|(shard, n)| format!("\"{shard}\":{n}"))
            .collect();
        println!(
            "SHARD_EVENTS {{\"threads\":{},\"total\":{},\"per_shard\":{{{}}}}}",
            threads,
            total,
            per_shard.join(",")
        );
    }

    // Wall-clock of the real threaded executor on this host.
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(&format!("phase1_threads_{threads}"), |b| {
            b.iter(|| run_phase1_sharded(&spec, &config, threads))
        });
    }
    group.finish();

    shadow_bench::report_peak_rss("shard_scaling");
}

criterion_group!(benches, bench);
criterion_main!(benches);
