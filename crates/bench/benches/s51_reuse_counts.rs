//! Section 5.1 — data leveraged multiple times.
//!
//! Paper: over 1 hour after emission, 51% of DNS decoys still produce more
//! than 3 unsolicited requests, 2.4% more than 10.

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::reuse::ReuseReport;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;
use traffic_shadowing::shadow_netsim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let reuse = outcome.reuse();

    println!("\n=== §5.1 (reproduced): reuse of retained data (cutoff 1h) ===");
    println!(
        "decoys still producing after 1h: {} (of {} triggered)",
        reuse.late_active_decoys(),
        reuse.triggered_decoys
    );
    println!(
        ">3 unsolicited requests: {} (paper 51%)",
        pct(reuse.fraction_exceeding(3))
    );
    println!(
        ">10 unsolicited requests: {} (paper 2.4%)",
        pct(reuse.fraction_exceeding(10))
    );
    println!("max reuse observed: {}\n", reuse.max_reuse());

    c.bench_function("s51/reuse_compute", |b| {
        b.iter(|| {
            ReuseReport::compute(
                &outcome.correlated,
                DecoyProtocol::Dns,
                SimDuration::from_hours(1),
            )
        })
    });

    shadow_bench::report_peak_rss("s51_reuse_counts");
}

criterion_group!(benches, bench);
criterion_main!(benches);
