//! Sections 5.1/5.2 — HTTP and HTTPS probing incentives.
//!
//! Paper: ≥90–95% of unsolicited HTTP requests perform path enumeration;
//! no exploit payloads found; origin-IP blocklist rates 57%/72% (HTTP/
//! HTTPS, DNS-decoy-triggered) and 45%/55% (HTTP/TLS-decoy-triggered).

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::{pct, study};
use traffic_shadowing::shadow_analysis::probing::ProbingReport;
use traffic_shadowing::shadow_analysis::report::render_table;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;

fn bench(c: &mut Criterion) {
    let outcome = study();

    println!("\n=== §5 (reproduced): probing incentives ===");
    let mut rows = Vec::new();
    for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
        let report = outcome.probing(protocol);
        rows.push(vec![
            protocol.as_str().to_string(),
            report.http_requests.to_string(),
            pct(report.enumeration_fraction()),
            report.exploits.to_string(),
            pct(report.blocklist_rate("HTTP")),
            pct(report.blocklist_rate("HTTPS")),
            pct(report.blocklist_rate("DNS")),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "decoy",
                "HTTP reqs",
                "enum",
                "exploits",
                "BL HTTP",
                "BL HTTPS",
                "BL DNS"
            ],
            &rows
        )
    );
    let dns_probing = outcome.probing(DecoyProtocol::Dns);
    let top: Vec<String> = dns_probing
        .top_paths
        .iter()
        .map(|(p, c)| format!("{p} ({c})"))
        .take(6)
        .collect();
    println!("sample probed paths: {}", top.join(", "));
    println!("paper: ~95% enumeration, zero exploit payloads\n");

    c.bench_function("s5/probing_compute", |b| {
        b.iter(|| {
            ProbingReport::compute(&outcome.correlated, DecoyProtocol::Dns, &outcome.blocklist)
        })
    });

    shadow_bench::report_peak_rss("s5_probing_incentives");
}

criterion_group!(benches, bench);
criterion_main!(benches);
