//! Table 2 — normalized location of traffic observers (1–10; 10 = dest).
//!
//! Paper: DNS 99.7% at 10; HTTP mid-path (hops 4–6 ≈ 79%); TLS bimodal
//! (26% at 6, 65% at 10).

use criterion::{criterion_group, criterion_main, Criterion};
use shadow_bench::study;
use traffic_shadowing::shadow_analysis::location::ObserverHopTable;
use traffic_shadowing::shadow_analysis::report::render_table;
use traffic_shadowing::shadow_core::decoy::DecoyProtocol;

fn bench(c: &mut Criterion) {
    let outcome = study();
    let table = outcome.hop_table();

    println!("\n=== Table 2 (reproduced): observer location, % of localized paths ===");
    let mut rows = Vec::new();
    for protocol in [DecoyProtocol::Dns, DecoyProtocol::Http, DecoyProtocol::Tls] {
        let mut row = vec![format!(
            "{} (n={})",
            protocol.as_str(),
            table.localized_paths(protocol)
        )];
        for hop in 1..=10u8 {
            row.push(format!("{:.1}", table.percent(protocol, hop)));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &["proto", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10=dst"],
            &rows
        )
    );
    println!("paper: DNS 99.7 @10 · HTTP 31/30/18 @4/5/6 · TLS 26 @6, 65 @10\n");

    c.bench_function("table2/hop_table_compute", |b| {
        b.iter(|| ObserverHopTable::compute(&outcome.traceroutes))
    });

    shadow_bench::report_peak_rss("table2_observer_location");
}

criterion_group!(benches, bench);
criterion_main!(benches);
