//! Tap-side extraction microbench: isolates the parse-once win.
//!
//! An on-path packet crosses ~12 tapped router hops. Before the
//! `DecodedView` memo, every hop re-decoded the application payload from
//! raw bytes; now the first hop decodes and the rest read the cache. The
//! two variants here measure exactly that difference per protocol —
//! `reparse_per_hop` is the old per-hop cost × hops, `view_cached` is one
//! decode plus (hops − 1) cache reads.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::net::Ipv4Addr;
use traffic_shadowing::shadow_packet::dns::{DnsMessage, DnsName};
use traffic_shadowing::shadow_packet::http::HttpRequest;
use traffic_shadowing::shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use traffic_shadowing::shadow_packet::tcp::{TcpFlags, TcpSegment};
use traffic_shadowing::shadow_packet::tls::ClientHello;
use traffic_shadowing::shadow_packet::udp::UdpDatagram;
use traffic_shadowing::shadow_packet::{extract_app_field, DecodedView};

/// Router hops a decoy typically crosses in the paper's 5–15-hop regime.
const HOPS: u64 = 12;

fn fixture_packets() -> Vec<(&'static str, Ipv4Packet)> {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 7, 0, 1);
    let domain = "g6d8jjkut5obc4ags2bkdi-9982.www.experiment.example";
    let name = DnsName::parse(domain).unwrap();

    let dns = Ipv4Packet::new(
        src,
        dst,
        IpProtocol::Udp,
        DEFAULT_TTL,
        1,
        UdpDatagram::new(5000, 53, DnsMessage::query(7, name).encode()).encode(),
    );
    let http = Ipv4Packet::new(
        src,
        dst,
        IpProtocol::Tcp,
        DEFAULT_TTL,
        2,
        TcpSegment::new(
            40_000,
            80,
            1,
            1,
            TcpFlags::PSH_ACK,
            HttpRequest::get(domain, "/").encode(),
        )
        .encode(),
    );
    let tls = Ipv4Packet::new(
        src,
        dst,
        IpProtocol::Tcp,
        DEFAULT_TTL,
        3,
        TcpSegment::new(
            40_001,
            443,
            1,
            1,
            TcpFlags::PSH_ACK,
            ClientHello::with_sni(domain, [3u8; 32]).encode_record(),
        )
        .encode(),
    );
    vec![("dns", dns), ("http", http), ("tls", tls)]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tap_parse");
    group.throughput(Throughput::Elements(HOPS));
    for (label, pkt) in fixture_packets() {
        group.bench_function(&format!("{label}/reparse_per_hop"), |b| {
            b.iter(|| {
                let mut extracted = 0u64;
                for _ in 0..HOPS {
                    if extract_app_field(black_box(&pkt)).is_some() {
                        extracted += 1;
                    }
                }
                extracted
            })
        });
        group.bench_function(&format!("{label}/view_cached"), |b| {
            b.iter(|| {
                let view = DecodedView::new();
                let mut extracted = 0u64;
                for _ in 0..HOPS {
                    if view.app_field(black_box(&pkt)).is_some() {
                        extracted += 1;
                    }
                }
                extracted
            })
        });
    }
    group.finish();

    shadow_bench::report_peak_rss("tap_parse");
}

criterion_group!(benches, bench);
criterion_main!(benches);
