//! Fault-injection overhead benchmark: what does arming the link
//! conditioner cost the Phase I hot path?
//!
//! Three configurations over the same tiny world:
//!
//! * `none` — no conditioner installed. The engine's per-hop check is a
//!   single `Option` test that branch-predicts away; this is the
//!   pre-chaos baseline every fault-free run must match byte-for-byte.
//! * `clean` — a compiled conditioner with zero impairments. Isolates
//!   the fixed cost of consulting the conditioner (outage lookups plus
//!   the value-derived draws) from the cost of acting on its verdicts.
//! * `faulty` — 1% loss + duplication + jitter + a scheduled router
//!   outage, the profile shape `chaos_sweep` exercises at scale.
//!
//! The acceptance posture: `none` vs `clean` is the overhead a user pays
//! for linking the chaos crate without using it, and it should be noise.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use traffic_shadowing::robustness::fault_targets;
use traffic_shadowing::shadow_chaos::{FaultProfile, OutageSpec, Window};
use traffic_shadowing::shadow_core::campaign::Phase1Config;
use traffic_shadowing::shadow_core::executor::{run_phase1_sharded_conditioned, TelemetryOptions};
use traffic_shadowing::shadow_core::world::{generate_spec, WorldConfig};
use traffic_shadowing::shadow_netsim::fault::LinkConditioner;

fn faulty_profile() -> FaultProfile {
    FaultProfile {
        duplication: 0.002,
        jitter_ms: 2,
        router_outage: Some(OutageSpec {
            fraction: 0.1,
            window: Window::new(60_000, 600_000),
        }),
        ..FaultProfile::with_loss("faulty", 0.01, 0xC0FFEE)
    }
}

fn bench(c: &mut Criterion) {
    let spec = generate_spec(WorldConfig::tiny(7));
    let config = Phase1Config::default();
    let targets = fault_targets(&spec);
    let clean = Arc::new(FaultProfile::baseline("clean").compile(&targets));
    let faulty = Arc::new(faulty_profile().compile(&targets));

    let cases: [(&str, Option<Arc<LinkConditioner>>); 3] = [
        ("none", None),
        ("clean", Some(clean)),
        ("faulty", Some(faulty)),
    ];

    let mut group = c.benchmark_group("chaos_overhead");
    group.sample_size(10);
    for (label, conditioner) in &cases {
        group.bench_function(&format!("phase1_{label}"), |b| {
            b.iter(|| {
                run_phase1_sharded_conditioned(
                    &spec,
                    &config,
                    1,
                    TelemetryOptions::disabled(),
                    conditioner.clone(),
                )
            })
        });
    }
    group.finish();

    shadow_bench::report_peak_rss("chaos_overhead");
}

criterion_group!(benches, bench);
criterion_main!(benches);
