//! Table 4 — the DNS servers decoys are sent to (20 public resolvers, one
//! self-built resolver, 13 roots, 2 TLDs), plus the pair-resolver address
//! derivation of Appendix E.

use criterion::{criterion_group, criterion_main, Criterion};
use traffic_shadowing::shadow_analysis::report::render_table;
use traffic_shadowing::shadow_dns::catalog::{pair_address, DnsDestinationKind, DNS_DESTINATIONS};

fn bench(c: &mut Criterion) {
    println!("\n=== Table 4 (reproduced): DNS destinations ===");
    let rows: Vec<Vec<String>> = DNS_DESTINATIONS
        .iter()
        .map(|d| {
            vec![
                format!("{:?}", d.kind),
                d.name.to_string(),
                d.addr.to_string(),
                pair_address(d.addr).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["Kind", "Name", "IP", "Pair (App. E)"], &rows)
    );
    let publics = DNS_DESTINATIONS
        .iter()
        .filter(|d| d.kind == DnsDestinationKind::PublicResolver)
        .count();
    println!(
        "counts: {publics} public + 1 self-built + 13 roots + 2 TLDs = {}\n",
        DNS_DESTINATIONS.len()
    );

    c.bench_function("table4/pair_address_derivation", |b| {
        b.iter(|| {
            DNS_DESTINATIONS
                .iter()
                .map(|d| pair_address(d.addr))
                .collect::<Vec<_>>()
        })
    });

    shadow_bench::report_peak_rss("table4_dns_catalog");
}

criterion_group!(benches, bench);
criterion_main!(benches);
