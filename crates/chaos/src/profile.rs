//! Declarative fault profiles, compiled to engine-side conditioners.
//!
//! A [`FaultProfile`] is plain serializable data: probabilities as
//! fractions, outage windows in simulated milliseconds, churn as a
//! fraction of the VP fleet. [`FaultProfile::compile`] turns it into a
//! [`LinkConditioner`] given the [`FaultTargets`] of a concrete world
//! (which nodes are routers, resolvers, VPs, honeypots). Compilation is a
//! pure function — hash-based member selection, no RNG stream — so every
//! shard of a campaign can compile the same profile and get the identical
//! conditioner.

use serde::{Deserialize, Serialize};
use shadow_netsim::fault::{fraction_to_ppm, LinkConditioner, OutageWindow};
use shadow_netsim::topology::{mix3, NodeId};

// Selection lanes for hash-picking outage victims, distinct from the
// engine-side per-packet decision lanes.
const LANE_ROUTER_PICK: u64 = 0x7274_7270_6963_6b01;
const LANE_VP_PICK: u64 = 0x7670_7069_636b_0002;

/// A half-open window of simulated time, `[start_ms, end_ms)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Window {
    pub start_ms: u64,
    pub end_ms: u64,
}

impl Window {
    pub fn new(start_ms: u64, end_ms: u64) -> Self {
        Self { start_ms, end_ms }
    }

    fn to_outage(self) -> OutageWindow {
        OutageWindow::new(self.start_ms, self.end_ms)
    }
}

/// Down a hash-selected `fraction` of a target population during `window`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageSpec {
    pub fraction: f64,
    pub window: Window,
}

/// VP churn: a fraction of the fleet disconnects for a window mid-campaign
/// (the provider-side instability the paper's vetting cannot prevent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    pub fraction: f64,
    pub window: Window,
}

/// DNS decoy retry policy (mirrors `shadow_vantage::vp::DnsRetry`, kept
/// here as plain data so this crate stays independent of the vantage
/// layer; the study glue converts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrySpec {
    /// Extra transmissions after the first (0 = one-shot).
    pub attempts: u8,
    pub timeout_ms: u64,
}

impl RetrySpec {
    /// Stub-resolver realism: two retries, 15 s apart — comfortably above
    /// any simulated answer RTT, so fault-free runs never retransmit.
    pub const STANDARD: RetrySpec = RetrySpec {
        attempts: 2,
        timeout_ms: 15_000,
    };
}

/// Everything that can go wrong, declaratively. All probabilities are
/// fractions in `[0, 1]`; `fault_seed` keys every value-derived decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Cell label in sweeps and reports.
    pub name: String,
    /// Seed for all value-derived fault decisions. Two profiles with the
    /// same impairments but different seeds impair *different* packets.
    pub fault_seed: u64,
    /// Per-link packet loss probability.
    pub loss: f64,
    /// Per-link packet duplication probability.
    pub duplication: f64,
    /// Uniform extra per-link delay in `0..=jitter_ms`.
    pub jitter_ms: u64,
    /// Probability a router rate-limits (drops) an ICMP Time Exceeded.
    pub icmp_rate_limit: f64,
    /// A fraction of routers go dark for a window.
    pub router_outage: Option<OutageSpec>,
    /// A fraction of links go dark for a window.
    pub link_outage: Option<OutageSpec>,
    /// Every recursive resolver is unreachable for the window.
    pub resolver_outage: Option<Window>,
    /// A fraction of VPs disconnects for the window.
    pub vp_churn: Option<ChurnSpec>,
    /// The experiment honeypots (authoritative DNS + web) are down.
    pub honeypot_downtime: Option<Window>,
    /// Retry policy for clear-text DNS decoys (None = one-shot).
    pub dns_retry: Option<RetrySpec>,
}

impl FaultProfile {
    /// The fault-free profile — compiling it yields a conditioner that
    /// never impairs anything, and studies treat it as the baseline.
    pub fn baseline(name: &str) -> Self {
        Self {
            name: name.to_string(),
            fault_seed: 0,
            loss: 0.0,
            duplication: 0.0,
            jitter_ms: 0,
            icmp_rate_limit: 0.0,
            router_outage: None,
            link_outage: None,
            resolver_outage: None,
            vp_churn: None,
            honeypot_downtime: None,
            dns_retry: None,
        }
    }

    /// A uniformly lossy profile — the workhorse of robustness sweeps.
    pub fn with_loss(name: &str, loss: f64, fault_seed: u64) -> Self {
        Self {
            name: name.to_string(),
            loss,
            fault_seed,
            ..Self::baseline(name)
        }
    }

    /// True when compiling this profile yields a conditioner that cannot
    /// affect any packet.
    pub fn is_fault_free(&self) -> bool {
        self.loss == 0.0
            && self.duplication == 0.0
            && self.jitter_ms == 0
            && self.icmp_rate_limit == 0.0
            && self.router_outage.is_none()
            && self.link_outage.is_none()
            && self.resolver_outage.is_none()
            && self.vp_churn.is_none()
            && self.honeypot_downtime.is_none()
    }

    /// Compile to the engine-side conditioner for a world with `targets`.
    /// Pure: same profile + same targets ⇒ identical conditioner, in every
    /// shard and on every host.
    pub fn compile(&self, targets: &FaultTargets) -> LinkConditioner {
        let mut cond = LinkConditioner::new(self.fault_seed)
            .with_loss_ppm(fraction_to_ppm(self.loss))
            .with_duplication_ppm(fraction_to_ppm(self.duplication))
            .with_jitter_ms(self.jitter_ms)
            .with_icmp_drop_ppm(fraction_to_ppm(self.icmp_rate_limit));
        if let Some(spec) = self.link_outage {
            cond = cond.with_link_outage(fraction_to_ppm(spec.fraction), spec.window.to_outage());
        }
        if let Some(spec) = self.router_outage {
            let ppm = u64::from(fraction_to_ppm(spec.fraction));
            for &router in &targets.routers {
                if mix3(self.fault_seed ^ LANE_ROUTER_PICK, u64::from(router.0), 0) % 1_000_000
                    < ppm
                {
                    cond.add_node_outage(router, spec.window.to_outage());
                }
            }
        }
        if let Some(window) = self.resolver_outage {
            for &resolver in &targets.resolvers {
                cond.add_node_outage(resolver, window.to_outage());
            }
        }
        if let Some(spec) = self.vp_churn {
            let ppm = u64::from(fraction_to_ppm(spec.fraction));
            for &vp in &targets.vps {
                if mix3(self.fault_seed ^ LANE_VP_PICK, u64::from(vp.0), 0) % 1_000_000 < ppm {
                    cond.add_node_outage(vp, spec.window.to_outage());
                }
            }
        }
        if let Some(window) = self.honeypot_downtime {
            for &honeypot in &targets.honeypots {
                cond.add_node_outage(honeypot, window.to_outage());
            }
        }
        cond
    }
}

/// The node populations a profile's scheduled outages act on — extracted
/// from a concrete world by the study glue (this crate never sees worlds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTargets {
    pub routers: Vec<NodeId>,
    pub resolvers: Vec<NodeId>,
    pub vps: Vec<NodeId>,
    pub honeypots: Vec<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets() -> FaultTargets {
        FaultTargets {
            routers: (0..100).map(NodeId).collect(),
            resolvers: vec![NodeId(200), NodeId(201)],
            vps: (300..320).map(NodeId).collect(),
            honeypots: vec![NodeId(400)],
        }
    }

    #[test]
    fn baseline_is_fault_free() {
        assert!(FaultProfile::baseline("base").is_fault_free());
        assert!(!FaultProfile::with_loss("l", 0.01, 1).is_fault_free());
    }

    #[test]
    fn compile_is_deterministic() {
        let profile = FaultProfile {
            router_outage: Some(OutageSpec {
                fraction: 0.3,
                window: Window::new(1_000, 5_000),
            }),
            vp_churn: Some(ChurnSpec {
                fraction: 0.5,
                window: Window::new(0, 10_000),
            }),
            ..FaultProfile::with_loss("mix", 0.02, 42)
        };
        let t = targets();
        let a = profile.compile(&t);
        let b = profile.compile(&t);
        for node in t.routers.iter().chain(&t.vps) {
            assert_eq!(a.node_down(*node, 2_000), b.node_down(*node, 2_000));
        }
    }

    #[test]
    fn router_outage_selects_a_fraction() {
        let profile = FaultProfile {
            router_outage: Some(OutageSpec {
                fraction: 0.3,
                window: Window::new(1_000, 5_000),
            }),
            ..FaultProfile::baseline("r")
        };
        let t = targets();
        let cond = profile.compile(&t);
        let down = t
            .routers
            .iter()
            .filter(|r| cond.node_down(**r, 2_000))
            .count();
        assert!(down > 10 && down < 50, "got {down} of 100");
        // Outside the window everyone is up.
        assert!(t.routers.iter().all(|r| !cond.node_down(*r, 5_000)));
    }

    #[test]
    fn resolver_outage_downs_every_resolver() {
        let profile = FaultProfile {
            resolver_outage: Some(Window::new(10, 20)),
            ..FaultProfile::baseline("res")
        };
        let t = targets();
        let cond = profile.compile(&t);
        assert!(t.resolvers.iter().all(|r| cond.node_down(*r, 15)));
        assert!(t.resolvers.iter().all(|r| !cond.node_down(*r, 25)));
        assert!(t.routers.iter().all(|r| !cond.node_down(*r, 15)));
    }

    #[test]
    fn churn_seed_changes_victims() {
        let spec = ChurnSpec {
            fraction: 0.5,
            window: Window::new(0, 100),
        };
        let t = targets();
        let pick = |seed: u64| {
            let profile = FaultProfile {
                vp_churn: Some(spec),
                fault_seed: seed,
                ..FaultProfile::baseline("c")
            };
            let cond = profile.compile(&t);
            t.vps
                .iter()
                .filter(|v| cond.node_down(**v, 50))
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(pick(1), pick(1));
        assert_ne!(pick(1), pick(2));
    }

    #[test]
    fn profile_serializes_round_trip() {
        let profile = FaultProfile {
            dns_retry: Some(RetrySpec::STANDARD),
            honeypot_downtime: Some(Window::new(5, 6)),
            ..FaultProfile::with_loss("json", 0.05, 9)
        };
        let json = serde_json::to_string(&profile);
        // The vendored serde stand-in may not support full enum coverage;
        // equality via Debug is the portable check here.
        if let Ok(json) = json {
            assert!(json.contains("json"));
        }
    }
}
