//! Scenario matrix: a grid of fault profiles, executed concurrently.
//!
//! Each cell of the matrix is a named [`FaultProfile`]; the runner calls a
//! caller-supplied closure per cell (typically "run the full sharded
//! campaign under this profile") on a bounded pool of worker threads and
//! returns results in declaration order, so the sweep output is
//! deterministic regardless of which cell finishes first.

use crate::profile::FaultProfile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One grid cell: a label and the profile to run under.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    pub name: String,
    pub profile: FaultProfile,
}

impl ScenarioCell {
    pub fn new(profile: FaultProfile) -> Self {
        Self {
            name: profile.name.clone(),
            profile,
        }
    }
}

/// A grid of fault profiles to sweep.
#[derive(Debug, Clone, Default)]
pub struct ScenarioMatrix {
    cells: Vec<ScenarioCell>,
}

impl ScenarioMatrix {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one cell.
    pub fn push(&mut self, profile: FaultProfile) -> &mut Self {
        self.cells.push(ScenarioCell::new(profile));
        self
    }

    /// The classic robustness grid: a sweep of loss levels crossed with
    /// ICMP Time-Exceeded rate limiting on/off. Every cell derives its
    /// name from its coordinates ("loss1.0%", "loss1.0%+icmplimit") and
    /// shares `fault_seed` so cells differ only in the impairment level.
    pub fn loss_grid(
        loss_levels: &[f64],
        icmp_rate_limit: &[f64],
        fault_seed: u64,
        template: &FaultProfile,
    ) -> Self {
        let mut matrix = Self::new();
        for &icmp in icmp_rate_limit {
            for &loss in loss_levels {
                let mut name = format!("loss{:.1}%", loss * 100.0);
                if icmp > 0.0 {
                    name.push_str("+icmplimit");
                }
                matrix.push(FaultProfile {
                    name,
                    loss,
                    icmp_rate_limit: icmp,
                    fault_seed,
                    ..template.clone()
                });
            }
        }
        matrix
    }

    /// The topology cross-validation axis: a pure sweep of ICMP
    /// Time-Exceeded rate-limiting levels (no loss), one cell per level.
    /// Cell names encode the suppression percentage ("icmp0%", "icmp90%");
    /// all cells share `fault_seed` so they differ only in ICMP coverage.
    pub fn icmp_grid(levels: &[f64], fault_seed: u64, template: &FaultProfile) -> Self {
        let mut matrix = Self::new();
        for &icmp in levels {
            matrix.push(FaultProfile {
                name: format!("icmp{:.0}%", icmp * 100.0),
                icmp_rate_limit: icmp,
                fault_seed,
                ..template.clone()
            });
        }
        matrix
    }

    pub fn cells(&self) -> &[ScenarioCell] {
        &self.cells
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Run `f` once per cell on up to `parallelism` worker threads.
    /// Results come back in cell-declaration order. Cells are handed out
    /// through a shared work index, so a slow cell never blocks the other
    /// workers from draining the rest of the grid.
    ///
    /// Panics in `f` propagate (the scope join re-raises them) — a cell
    /// failure aborts the sweep rather than silently dropping the cell.
    pub fn run_with<R, F>(&self, parallelism: usize, f: F) -> Vec<(ScenarioCell, R)>
    where
        R: Send,
        F: Fn(&ScenarioCell) -> R + Sync,
    {
        let workers = parallelism.max(1).min(self.cells.len().max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = self.cells.iter().map(|_| Mutex::new(None)).collect();
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = self.cells.get(idx) else {
                        break;
                    };
                    let result = f(cell);
                    *slots[idx].lock().unwrap() = Some(result);
                });
            }
        });
        self.cells
            .iter()
            .cloned()
            .zip(slots.into_iter().map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every cell ran to completion")
            }))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn loss_grid_shape_and_names() {
        let grid = ScenarioMatrix::loss_grid(
            &[0.0, 0.01, 0.05],
            &[0.0, 0.9],
            7,
            &FaultProfile::baseline("template"),
        );
        assert_eq!(grid.len(), 6);
        let names: Vec<&str> = grid.cells().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "loss0.0%",
                "loss1.0%",
                "loss5.0%",
                "loss0.0%+icmplimit",
                "loss1.0%+icmplimit",
                "loss5.0%+icmplimit",
            ]
        );
        assert!(grid.cells().iter().all(|c| c.profile.fault_seed == 7));
    }

    #[test]
    fn icmp_grid_names_levels() {
        let grid =
            ScenarioMatrix::icmp_grid(&[0.0, 0.5, 0.9, 0.99], 11, &FaultProfile::baseline("t"));
        assert_eq!(grid.len(), 4);
        let names: Vec<&str> = grid.cells().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["icmp0%", "icmp50%", "icmp90%", "icmp99%"]);
        assert!(grid.cells().iter().all(|c| c.profile.loss == 0.0));
        assert!(grid.cells().iter().all(|c| c.profile.fault_seed == 11));
    }

    #[test]
    fn run_with_preserves_declaration_order() {
        let mut matrix = ScenarioMatrix::new();
        for i in 0..10 {
            matrix.push(FaultProfile::with_loss(&format!("cell{i}"), 0.0, i));
        }
        let ran = AtomicU64::new(0);
        let results = matrix.run_with(4, |cell| {
            ran.fetch_add(1, Ordering::Relaxed);
            cell.profile.fault_seed * 10
        });
        assert_eq!(ran.load(Ordering::Relaxed), 10);
        assert_eq!(results.len(), 10);
        for (i, (cell, value)) in results.iter().enumerate() {
            assert_eq!(cell.name, format!("cell{i}"));
            assert_eq!(*value, i as u64 * 10);
        }
    }

    #[test]
    fn run_with_single_worker_matches_parallel() {
        let matrix =
            ScenarioMatrix::loss_grid(&[0.0, 0.02], &[0.0, 0.5], 3, &FaultProfile::baseline("t"));
        let serial: Vec<String> = matrix
            .run_with(1, |c| c.name.clone())
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let parallel: Vec<String> = matrix
            .run_with(8, |c| c.name.clone())
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_matrix_runs_nothing() {
        let matrix = ScenarioMatrix::new();
        let results = matrix.run_with(4, |_| 1u32);
        assert!(results.is_empty());
    }
}
