//! # shadow-chaos
//!
//! Deterministic fault injection + scenario sweeps. The simulator's
//! default network is perfectly reliable; the paper's substrate is the
//! lossy real Internet. This crate quantifies how much of the measurement
//! methodology survives impairment:
//!
//! * [`profile`] — [`FaultProfile`]: a declarative, serializable bundle of
//!   impairments (per-link loss/duplication/jitter, router and link outage
//!   windows, resolver outages, VP churn, honeypot downtime, ICMP
//!   Time-Exceeded rate limiting, DNS retry policy). Compiled against
//!   [`FaultTargets`] into the engine-side
//!   [`LinkConditioner`](shadow_netsim::fault::LinkConditioner), whose
//!   decisions are value-derived — byte-identical at any shard count.
//! * [`matrix`] — [`ScenarioMatrix`]: a grid of named fault profiles
//!   executed concurrently on worker threads; each cell runs a full study
//!   and the caller folds the per-cell outcomes into a robustness report.

pub mod matrix;
pub mod profile;

pub use matrix::{ScenarioCell, ScenarioMatrix};
pub use profile::{ChurnSpec, FaultProfile, FaultTargets, OutageSpec, RetrySpec, Window};
