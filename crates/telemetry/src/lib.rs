//! `shadow-telemetry`: run-wide observability for the simulator.
//!
//! The campaign pipeline is fundamentally about *observing* silent on-path
//! behavior, and this crate gives the pipeline the same property about
//! itself. Two pillars:
//!
//! * **Metrics** ([`metrics`]): a lock-free registry of atomic counters and
//!   fixed-bucket histograms. Every shard of a sharded run owns a private
//!   registry; snapshots are merged (commutatively) when shard outputs are
//!   absorbed, and the merged [`metrics::MetricsSnapshot`] is exported
//!   alongside the analysis bundle. The snapshot separates *world* counters
//!   (deterministic facts about simulated traffic — identical for any shard
//!   count, and checked to be so) from *run* diagnostics (per-shard queue
//!   depths, events drained, wall-clock — legitimately run-dependent).
//!
//! * **Event journal** ([`journal`]): an opt-in stream of typed events
//!   ([`journal::EventKind`]) stamped with sim-time, shard id, and node id.
//!   Events carry a shard-independent total key order ([`journal::diff`]
//!   aligns two journals on it), so "the sharded run differs from the
//!   sequential run" stops being a byte-diff mystery and becomes "the first
//!   divergent event is …".
//!
//! The whole crate is **zero-cost when disabled**: the [`Telemetry`] handle
//! is an `Option<Arc<…>>`, every emit path starts with an inlined `None`
//! check, and event payloads are built inside closures that never run for a
//! disabled handle — no allocation, no atomics, no formatting on the hot
//! path.

pub mod diff;
pub mod journal;
pub mod metrics;
pub mod tail;

pub use diff::{diff, DiffReport, Divergence};
pub use journal::{from_jsonl, sort_records, to_jsonl, EventKind, JournalRecord, Telemetry};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use tail::{JournalTailHub, TailSubscriber};
