//! `journal diff`: align two journals on the total event key order and
//! report the first divergence.
//!
//! Both inputs are filtered to world events (meta events describe run
//! structure, which legitimately differs between shard counts), sorted by
//! [`JournalRecord::diff_key`], and walked in lockstep. The first position
//! where the keys disagree is reported with both sides' records — turning
//! "the sharded run differs" into "at sim-time T, the left journal has
//! this event and the right journal has that one".

use crate::journal::JournalRecord;

/// One side of a divergence (or its absence, when a journal ran out).
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index into the sorted, meta-filtered event stream.
    pub index: usize,
    /// The left journal's record at that index, if any.
    pub left: Option<JournalRecord>,
    /// The right journal's record at that index, if any.
    pub right: Option<JournalRecord>,
}

/// The outcome of diffing two journals.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// World events compared on each side.
    pub left_events: usize,
    pub right_events: usize,
    /// The first key mismatch, if any.
    pub first_divergence: Option<Divergence>,
}

impl DiffReport {
    pub fn identical(&self) -> bool {
        self.first_divergence.is_none()
    }

    /// Human-readable one-paragraph verdict.
    pub fn render(&self) -> String {
        match &self.first_divergence {
            None => format!(
                "journals identical: {} world events align on the total key order",
                self.left_events
            ),
            Some(d) => {
                let describe = |r: &Option<JournalRecord>| match r {
                    Some(r) => format!(
                        "t={}ms shard={} node={:?} {:?}",
                        r.at_ms, r.shard, r.node, r.event
                    ),
                    None => "<journal exhausted>".to_string(),
                };
                format!(
                    "journals diverge at world-event #{} ({} vs {} events)\n  left:  {}\n  right: {}",
                    d.index,
                    self.left_events,
                    self.right_events,
                    describe(&d.left),
                    describe(&d.right),
                )
            }
        }
    }
}

fn world_events_sorted(records: &[JournalRecord]) -> Vec<&JournalRecord> {
    let mut events: Vec<&JournalRecord> = records.iter().filter(|r| !r.event.is_meta()).collect();
    events.sort_by_cached_key(|r| r.diff_key());
    events
}

/// Diff two journals on the total event key order.
pub fn diff(left: &[JournalRecord], right: &[JournalRecord]) -> DiffReport {
    let l = world_events_sorted(left);
    let r = world_events_sorted(right);
    let mut first_divergence = None;
    for i in 0..l.len().max(r.len()) {
        let lk = l.get(i).map(|e| e.diff_key());
        let rk = r.get(i).map(|e| e.diff_key());
        if lk != rk {
            first_divergence = Some(Divergence {
                index: i,
                left: l.get(i).map(|e| (*e).clone()),
                right: r.get(i).map(|e| (*e).clone()),
            });
            break;
        }
    }
    DiffReport {
        left_events: l.len(),
        right_events: r.len(),
        first_divergence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventKind;
    use std::net::Ipv4Addr;

    fn tap(at: u64, shard: u32, last_octet: u8) -> JournalRecord {
        JournalRecord {
            at_ms: at,
            shard,
            node: Some(1),
            seq: 0,
            event: EventKind::TapObserved {
                src: Ipv4Addr::new(10, 0, 0, last_octet),
                dst: Ipv4Addr::new(8, 8, 8, 8),
                protocol: "UDP".to_string(),
            },
        }
    }

    fn meta(shard: u32) -> JournalRecord {
        JournalRecord {
            at_ms: 0,
            shard,
            node: None,
            seq: 0,
            event: EventKind::ShardMerged {
                shard,
                arrivals: 1,
                decoys: 2,
            },
        }
    }

    #[test]
    fn identical_up_to_shard_and_order() {
        let left = vec![tap(5, 0, 1), tap(1, 0, 2), meta(0)];
        let right = vec![tap(1, 3, 2), meta(0), meta(1), tap(5, 7, 1)];
        let report = diff(&left, &right);
        assert!(report.identical(), "{}", report.render());
        assert_eq!(report.left_events, 2);
        assert_eq!(report.right_events, 2);
    }

    #[test]
    fn first_divergence_is_pinpointed() {
        let left = vec![tap(1, 0, 1), tap(2, 0, 2)];
        let right = vec![tap(1, 0, 1), tap(2, 0, 3)];
        let report = diff(&left, &right);
        let d = report.first_divergence.clone().expect("diverges");
        assert_eq!(d.index, 1);
        assert_eq!(d.left.unwrap().at_ms, 2);
        assert!(report.render().contains("world-event #1"));
    }

    #[test]
    fn missing_tail_reports_exhaustion() {
        let left = vec![tap(1, 0, 1), tap(2, 0, 2)];
        let right = vec![tap(1, 0, 1)];
        let report = diff(&left, &right);
        let d = report.first_divergence.clone().expect("diverges");
        assert_eq!(d.index, 1);
        assert!(d.right.is_none());
        assert!(report.render().contains("<journal exhausted>"));
    }
}
