//! Live journal tailing for the measurement daemon.
//!
//! A [`JournalTailHub`] fans the structured event journal out to any number
//! of concurrent subscribers (the `/api/journal/tail` SSE readers in
//! `shadow-serve`). The design goals, in order:
//!
//! 1. **The publisher never blocks.** Campaign threads call
//!    [`JournalTailHub::publish_records`] between waves; a slow or stalled
//!    HTTP reader must not be able to stall the measurement.
//! 2. **Bounded memory per subscriber.** Each subscriber owns a fixed-size
//!    ring of pre-rendered JSON lines. When a ring is full the *oldest*
//!    line is dropped and a hub-wide `events_dropped` counter is bumped —
//!    an explicit, observable backpressure story instead of unbounded
//!    buffering.
//! 3. **No reader polling.** Subscribers park on a `Condvar` and are woken
//!    on publish or hub close.
//!
//! Lines are rendered to JSON once, by the publisher, and shared as
//! `Arc<str>` — N subscribers cost N pointer clones per event, not N
//! serializations.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::Duration;

use crate::journal::JournalRecord;

/// Shared ring state for one subscriber.
struct Ring {
    lines: Mutex<RingState>,
    wake: Condvar,
}

struct RingState {
    buf: VecDeque<Arc<str>>,
    capacity: usize,
    closed: bool,
}

/// A bounded, live view of the journal stream. Obtained from
/// [`JournalTailHub::subscribe`]; dropped subscribers are pruned by the hub
/// on the next publish.
pub struct TailSubscriber {
    ring: Arc<Ring>,
}

impl TailSubscriber {
    /// Pop the next journal line, waiting up to `timeout` for one to
    /// arrive. Returns `None` when the hub has been closed *and* the ring
    /// is drained, or when the timeout elapses with nothing buffered.
    pub fn next_line(&self, timeout: Duration) -> Option<Arc<str>> {
        let mut state = self.ring.lines.lock().expect("tail ring poisoned");
        loop {
            if let Some(line) = state.buf.pop_front() {
                return Some(line);
            }
            if state.closed {
                return None;
            }
            let (next, wait) = self
                .ring
                .wake
                .wait_timeout(state, timeout)
                .expect("tail ring poisoned");
            state = next;
            if wait.timed_out() {
                return state.buf.pop_front();
            }
        }
    }

    /// True once the hub is closed and every buffered line has been read.
    pub fn is_drained(&self) -> bool {
        let state = self.ring.lines.lock().expect("tail ring poisoned");
        state.closed && state.buf.is_empty()
    }
}

/// Fan-out point between the campaign driver (publisher) and the SSE
/// readers (subscribers).
pub struct JournalTailHub {
    subscribers: Mutex<Vec<Weak<Ring>>>,
    dropped: AtomicU64,
    capacity: usize,
    closed: Mutex<bool>,
}

impl JournalTailHub {
    /// `capacity` is the per-subscriber ring size; it is clamped to at
    /// least 1 so a full ring always holds the most recent line.
    pub fn new(capacity: usize) -> Self {
        JournalTailHub {
            subscribers: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
            closed: Mutex::new(false),
        }
    }

    /// Register a new tail reader. A subscriber that connects after
    /// [`close`](Self::close) observes an immediately-drained stream.
    pub fn subscribe(&self) -> TailSubscriber {
        let ring = Arc::new(Ring {
            lines: Mutex::new(RingState {
                buf: VecDeque::with_capacity(self.capacity),
                capacity: self.capacity,
                closed: *self.closed.lock().expect("tail hub poisoned"),
            }),
            wake: Condvar::new(),
        });
        self.subscribers
            .lock()
            .expect("tail hub poisoned")
            .push(Arc::downgrade(&ring));
        TailSubscriber { ring }
    }

    /// Number of currently-live subscribers (dead ones are pruned lazily).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers
            .lock()
            .expect("tail hub poisoned")
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// Total journal lines dropped across all subscribers because their
    /// ring was full. Monotonic; surfaced in `/api/status`.
    pub fn events_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Render `records` to JSON lines once and push them into every live
    /// subscriber ring, dropping the oldest buffered line of any ring that
    /// is full. Never blocks on readers.
    pub fn publish_records(&self, records: &[JournalRecord]) {
        if records.is_empty() {
            return;
        }
        let lines: Vec<Arc<str>> = records
            .iter()
            .filter_map(|r| serde_json::to_string(r).ok())
            .map(Arc::from)
            .collect();
        let mut subs = self.subscribers.lock().expect("tail hub poisoned");
        subs.retain(|weak| {
            let Some(ring) = weak.upgrade() else {
                return false;
            };
            {
                let mut state = ring.lines.lock().expect("tail ring poisoned");
                for line in &lines {
                    if state.buf.len() >= state.capacity {
                        state.buf.pop_front();
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                    state.buf.push_back(Arc::clone(line));
                }
            }
            ring.wake.notify_all();
            true
        });
    }

    /// Mark the stream finished: subscribers drain what they have buffered
    /// and then see end-of-stream.
    pub fn close(&self) {
        *self.closed.lock().expect("tail hub poisoned") = true;
        let mut subs = self.subscribers.lock().expect("tail hub poisoned");
        subs.retain(|weak| {
            let Some(ring) = weak.upgrade() else {
                return false;
            };
            ring.lines.lock().expect("tail ring poisoned").closed = true;
            ring.wake.notify_all();
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::EventKind;

    fn record(seq: u64) -> JournalRecord {
        JournalRecord {
            at_ms: seq,
            shard: 0,
            node: Some(1),
            seq,
            event: EventKind::PhaseEnded {
                phase: "p".into(),
                shard: 0,
            },
        }
    }

    #[test]
    fn subscriber_sees_published_lines_in_order() {
        let hub = JournalTailHub::new(16);
        let sub = hub.subscribe();
        hub.publish_records(&[record(1), record(2)]);
        let a = sub.next_line(Duration::from_millis(50)).unwrap();
        let b = sub.next_line(Duration::from_millis(50)).unwrap();
        assert!(a.contains("\"seq\": 1") || a.contains("\"seq\":1"), "{a}");
        assert!(b.contains("\"seq\": 2") || b.contains("\"seq\":2"), "{b}");
        hub.close();
        assert_eq!(sub.next_line(Duration::from_millis(50)), None);
        assert!(sub.is_drained());
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let hub = JournalTailHub::new(2);
        let sub = hub.subscribe();
        hub.publish_records(&[record(1), record(2), record(3)]);
        assert_eq!(hub.events_dropped(), 1);
        let first = sub.next_line(Duration::from_millis(50)).unwrap();
        assert!(first.contains("\"seq\": 2") || first.contains("\"seq\":2"));
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let hub = JournalTailHub::new(4);
        let sub = hub.subscribe();
        drop(sub);
        hub.publish_records(&[record(1)]);
        assert_eq!(hub.subscriber_count(), 0);
    }

    #[test]
    fn close_wakes_waiting_subscriber() {
        let hub = Arc::new(JournalTailHub::new(4));
        let sub = hub.subscribe();
        let hub2 = Arc::clone(&hub);
        let closer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            hub2.close();
        });
        assert_eq!(sub.next_line(Duration::from_secs(5)), None);
        closer.join().unwrap();
    }

    #[test]
    fn late_subscriber_after_close_is_drained() {
        let hub = JournalTailHub::new(4);
        hub.close();
        let sub = hub.subscribe();
        assert!(sub.is_drained());
        assert_eq!(sub.next_line(Duration::from_millis(10)), None);
    }
}
