//! Lock-free metrics: atomic counters, labeled counter banks, and
//! fixed-bucket histograms, plus the serializable snapshots the campaign
//! merges and exports.
//!
//! The live side ([`MetricsRegistry`]) is all `AtomicU64` — safe to bump
//! from any host/tap callback without locks. The frozen side
//! ([`MetricsSnapshot`]) is plain data with a commutative [`merge`]
//! (`MetricsSnapshot::merge`): merging K per-shard snapshots in any order
//! yields the same result, and the *world* section equals the sequential
//! run's (enforced by `tests/metrics_merge.rs`).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Read and reset (snapshotting between phases must not double-count).
    pub fn take(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A small bank of counters keyed by a fixed label set (e.g. one per decoy
/// protocol). Lookup is a linear scan over a handful of labels — the banks
/// are only touched on send/capture paths, never per simulated hop.
#[derive(Debug)]
pub struct CounterBank {
    labels: &'static [&'static str],
    counters: Box<[Counter]>,
}

impl CounterBank {
    pub fn new(labels: &'static [&'static str]) -> Self {
        let counters = labels.iter().map(|_| Counter::default()).collect();
        Self { labels, counters }
    }

    /// Bump the counter for `label`. Unknown labels are ignored rather than
    /// panicking — a metrics bug must never take down a campaign.
    #[inline]
    pub fn inc(&self, label: &str) {
        if let Some(i) = self.labels.iter().position(|l| *l == label) {
            self.counters[i].inc();
        }
    }

    pub fn take(&self) -> BTreeMap<String, u64> {
        self.labels
            .iter()
            .zip(self.counters.iter())
            .map(|(l, c)| (l.to_string(), c.take()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper edge of
/// bucket `i`; one extra overflow bucket catches everything larger.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Box<[AtomicU64]>,
}

impl Histogram {
    pub fn new(bounds: Vec<u64>) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self { bounds, buckets }
    }

    /// Power-of-two buckets up to 2^20 — the queue-depth shape.
    pub fn pow2() -> Self {
        Self::new((0..=20).map(|i| 1u64 << i).collect())
    }

    /// Retention-interval buckets (milliseconds): 1s, 1m, 10m, 1h, 12h,
    /// 1d, 10d — the paper's Figure 4/7 time scales.
    pub const INTERVAL_BOUNDS_MS: [u64; 7] = [
        1_000,
        60_000,
        600_000,
        3_600_000,
        43_200_000,
        86_400_000,
        864_000_000,
    ];

    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub fn take(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.swap(0, Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Frozen histogram: parallel `bounds`/`counts` vectors (one extra count
/// for overflow).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn with_bounds(bounds: &[u64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        if self.counts.is_empty() {
            *self = Self::with_bounds(&Histogram::INTERVAL_BOUNDS_MS);
        }
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
    }

    /// Sum another snapshot in. An empty side is the identity; mismatched
    /// bucket layouts merge into the overflow bucket rather than panicking.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            *self = other.clone();
            return;
        }
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
                *a += b;
            }
        } else if let Some(last) = self.counts.last_mut() {
            *last += other.total();
        }
    }
}

/// The live, lock-free registry — one per shard engine.
#[derive(Debug)]
pub struct MetricsRegistry {
    // -- world counters: deterministic simulated-traffic facts -----------
    /// Packets a router forwarded onward (post-tap, pre-TTL-expiry).
    pub packets_forwarded: Counter,
    /// Packets delivered to an endpoint host.
    pub packets_delivered: Counter,
    /// TTL decrements that hit zero at a router.
    pub ttl_expirations: Counter,
    /// ICMP Time Exceeded messages routers emitted.
    pub icmp_time_exceeded: Counter,
    /// Packets seen by on-path wire taps (one count per tap per packet).
    pub tap_observations: Counter,
    /// Packets swallowed by a tap (interception noise).
    pub tap_drops: Counter,
    /// Decoys sent, per decoy protocol.
    pub decoys_sent: CounterBank,
    /// Honeypot arrivals captured, per arrival protocol.
    pub arrivals_captured: CounterBank,
    /// Client queries recursive resolvers answered.
    pub resolver_queries: Counter,
    /// Resolver answers served from cache.
    pub resolver_cache_hits: Counter,
    /// Resolver recursions to an authoritative server.
    pub resolver_upstream_queries: Counter,
    /// Shadowing probes the on-path/exhibitor pipeline scheduled.
    pub shadow_probes_scheduled: Counter,
    /// Fault injection: packets lost to value-derived link loss.
    pub fault_packets_lost: Counter,
    /// Fault injection: duplicate copies scheduled.
    pub fault_packets_duplicated: Counter,
    /// Fault injection: transmissions given extra jitter delay.
    pub fault_packets_delayed: Counter,
    /// Fault injection: packets dropped by node/link outage windows.
    pub fault_outage_drops: Counter,
    /// Fault injection: ICMP Time Exceeded suppressed by rate limiting.
    pub fault_icmp_rate_limited: Counter,
    /// DNS decoy retransmissions VPs issued (retry-protected decoys only).
    pub dns_retries: Counter,
    /// Arrivals the streaming correlation sink resolved to a decoy at
    /// capture time (solicited or not). Unknown-domain noise is excluded,
    /// so this equals the batch correlator's output length.
    pub arrivals_classified: Counter,

    // -- run diagnostics: legitimately run/shard-dependent ---------------
    /// Engine event-queue depth, sampled every few thousand events.
    pub queue_depth: Histogram,
    /// Events the engine drained (this shard).
    pub events_drained: Counter,
    /// Retention-store capacity (FIFO) evictions. Run-section on purpose:
    /// sharded stores see per-shard traffic subsets, so eviction counts
    /// legitimately differ from the sequential run (DESIGN.md §5 caveat —
    /// nonzero here means that caveat is live, not silent).
    pub retention_capacity_evictions: Counter,
    /// Decoy states the streaming correlation sink held at drain time —
    /// the sink's memory footprint proxy. Run-section: each shard's sink
    /// only tracks the decoys its own traffic touched.
    pub sink_tracked_decoys: Counter,
    /// LPM table resolutions the engine performed on route-cache misses.
    /// Run-section: cache hit rates depend on per-shard traffic order.
    pub topo_lookups: Counter,
    /// Time-Exceeded observations folded into the router-graph builder.
    /// Run-section: per-shard folds sum to at least the merged graph's
    /// dedup'd edge count, not exactly it.
    pub router_graph_edges: Counter,
    /// Wall-clock nanoseconds per named phase (this shard).
    phase_wall_ns: Mutex<BTreeMap<String, u64>>,
}

pub const DECOY_LABELS: &[&str] = &["DNS", "HTTP", "TLS"];
pub const ARRIVAL_LABELS: &[&str] = &["DNS", "HTTP", "HTTPS"];

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            packets_forwarded: Counter::default(),
            packets_delivered: Counter::default(),
            ttl_expirations: Counter::default(),
            icmp_time_exceeded: Counter::default(),
            tap_observations: Counter::default(),
            tap_drops: Counter::default(),
            decoys_sent: CounterBank::new(DECOY_LABELS),
            arrivals_captured: CounterBank::new(ARRIVAL_LABELS),
            resolver_queries: Counter::default(),
            resolver_cache_hits: Counter::default(),
            resolver_upstream_queries: Counter::default(),
            shadow_probes_scheduled: Counter::default(),
            fault_packets_lost: Counter::default(),
            fault_packets_duplicated: Counter::default(),
            fault_packets_delayed: Counter::default(),
            fault_outage_drops: Counter::default(),
            fault_icmp_rate_limited: Counter::default(),
            dns_retries: Counter::default(),
            arrivals_classified: Counter::default(),
            queue_depth: Histogram::pow2(),
            events_drained: Counter::default(),
            retention_capacity_evictions: Counter::default(),
            sink_tracked_decoys: Counter::default(),
            topo_lookups: Counter::default(),
            router_graph_edges: Counter::default(),
            phase_wall_ns: Mutex::new(BTreeMap::new()),
        }
    }
}

impl MetricsRegistry {
    /// Record wall-clock for a named phase (added to any prior value).
    pub fn record_phase_ns(&self, phase: &str, ns: u64) {
        *self
            .phase_wall_ns
            .lock()
            .entry(phase.to_string())
            .or_insert(0) += ns;
    }

    /// Freeze-and-reset into a snapshot attributed to `shard`. Resetting
    /// means phase-level snapshots never double-count: Phase II's snapshot
    /// starts from zero even though the engine (and registry) persist.
    pub fn take_snapshot(&self, shard: u32) -> MetricsSnapshot {
        let mut events_per_shard = BTreeMap::new();
        let drained = self.events_drained.take();
        if drained > 0 {
            events_per_shard.insert(shard, drained);
        }
        MetricsSnapshot {
            world: WorldMetrics {
                packets_forwarded: self.packets_forwarded.take(),
                packets_delivered: self.packets_delivered.take(),
                ttl_expirations: self.ttl_expirations.take(),
                icmp_time_exceeded: self.icmp_time_exceeded.take(),
                tap_observations: self.tap_observations.take(),
                tap_drops: self.tap_drops.take(),
                decoys_sent: self.decoys_sent.take(),
                arrivals_captured: self.arrivals_captured.take(),
                resolver_queries: self.resolver_queries.take(),
                resolver_cache_hits: self.resolver_cache_hits.take(),
                resolver_upstream_queries: self.resolver_upstream_queries.take(),
                shadow_probes_scheduled: self.shadow_probes_scheduled.take(),
                fault_packets_lost: self.fault_packets_lost.take(),
                fault_packets_duplicated: self.fault_packets_duplicated.take(),
                fault_packets_delayed: self.fault_packets_delayed.take(),
                fault_outage_drops: self.fault_outage_drops.take(),
                fault_icmp_rate_limited: self.fault_icmp_rate_limited.take(),
                dns_retries: self.dns_retries.take(),
                arrivals_classified: self.arrivals_classified.take(),
                unsolicited_by_rule: BTreeMap::new(),
                retention_intervals_ms: HistogramSnapshot::default(),
            },
            run: RunMetrics {
                shards: 1,
                events_drained_per_shard: events_per_shard,
                queue_depth: self.queue_depth.take(),
                retention_capacity_evictions: self.retention_capacity_evictions.take(),
                sink_tracked_decoys: self.sink_tracked_decoys.take(),
                topo_lookups: self.topo_lookups.take(),
                router_graph_edges: self.router_graph_edges.take(),
                phase_wall_ns: std::mem::take(&mut self.phase_wall_ns.lock()),
            },
        }
    }
}

/// Deterministic simulated-traffic counters. For a fixed seed these are
/// identical for **any** shard count once per-shard snapshots are merged —
/// the telemetry analogue of the byte-identical analysis bundle.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorldMetrics {
    pub packets_forwarded: u64,
    pub packets_delivered: u64,
    pub ttl_expirations: u64,
    pub icmp_time_exceeded: u64,
    pub tap_observations: u64,
    pub tap_drops: u64,
    pub decoys_sent: BTreeMap<String, u64>,
    pub arrivals_captured: BTreeMap<String, u64>,
    pub resolver_queries: u64,
    pub resolver_cache_hits: u64,
    pub resolver_upstream_queries: u64,
    pub shadow_probes_scheduled: u64,
    /// Fault-injection world counters. Value-derived per-packet decisions
    /// make these deterministic and shard-invariant like everything else
    /// in this section; all zero when no fault profile is installed.
    pub fault_packets_lost: u64,
    pub fault_packets_duplicated: u64,
    pub fault_packets_delayed: u64,
    pub fault_outage_drops: u64,
    pub fault_icmp_rate_limited: u64,
    /// DNS decoy retransmissions (a VP lives in exactly one shard, so the
    /// sum across shards matches the sequential run).
    pub dns_retries: u64,
    /// Arrivals the streaming sink resolved to a decoy at capture time.
    pub arrivals_classified: u64,
    /// Unsolicited arrivals per classification rule (filled after
    /// correlation via [`MetricsSnapshot::record_classification`]).
    pub unsolicited_by_rule: BTreeMap<String, u64>,
    /// Decoy-emission → arrival intervals (retention proxy), fixed buckets.
    pub retention_intervals_ms: HistogramSnapshot,
}

impl WorldMetrics {
    fn merge(&mut self, other: &WorldMetrics) {
        self.packets_forwarded += other.packets_forwarded;
        self.packets_delivered += other.packets_delivered;
        self.ttl_expirations += other.ttl_expirations;
        self.icmp_time_exceeded += other.icmp_time_exceeded;
        self.tap_observations += other.tap_observations;
        self.tap_drops += other.tap_drops;
        merge_map(&mut self.decoys_sent, &other.decoys_sent);
        merge_map(&mut self.arrivals_captured, &other.arrivals_captured);
        self.resolver_queries += other.resolver_queries;
        self.resolver_cache_hits += other.resolver_cache_hits;
        self.resolver_upstream_queries += other.resolver_upstream_queries;
        self.shadow_probes_scheduled += other.shadow_probes_scheduled;
        self.fault_packets_lost += other.fault_packets_lost;
        self.fault_packets_duplicated += other.fault_packets_duplicated;
        self.fault_packets_delayed += other.fault_packets_delayed;
        self.fault_outage_drops += other.fault_outage_drops;
        self.fault_icmp_rate_limited += other.fault_icmp_rate_limited;
        self.dns_retries += other.dns_retries;
        self.arrivals_classified += other.arrivals_classified;
        merge_map(&mut self.unsolicited_by_rule, &other.unsolicited_by_rule);
        self.retention_intervals_ms
            .merge(&other.retention_intervals_ms);
    }
}

/// Run-shape diagnostics — per-shard and wall-clock data that is *expected*
/// to differ between a sequential and a sharded run (and between hosts).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of per-shard registries merged into this snapshot.
    pub shards: u64,
    pub events_drained_per_shard: BTreeMap<u32, u64>,
    pub queue_depth: HistogramSnapshot,
    /// Retention-store capacity (FIFO) evictions — run-section because
    /// per-shard stores see traffic subsets (DESIGN.md §5).
    pub retention_capacity_evictions: u64,
    /// Streaming-sink decoy states held at drain time, summed over shards.
    pub sink_tracked_decoys: u64,
    /// LPM resolutions on route-cache misses, summed over shards.
    pub topo_lookups: u64,
    /// Time-Exceeded observations folded into router-graph builders,
    /// summed over shards (pre-dedup, so ≥ the merged graph's hop count).
    pub router_graph_edges: u64,
    pub phase_wall_ns: BTreeMap<String, u64>,
}

impl RunMetrics {
    fn merge(&mut self, other: &RunMetrics) {
        self.shards += other.shards;
        for (shard, n) in &other.events_drained_per_shard {
            *self.events_drained_per_shard.entry(*shard).or_insert(0) += n;
        }
        self.queue_depth.merge(&other.queue_depth);
        self.retention_capacity_evictions += other.retention_capacity_evictions;
        self.sink_tracked_decoys += other.sink_tracked_decoys;
        self.topo_lookups += other.topo_lookups;
        self.router_graph_edges += other.router_graph_edges;
        for (phase, ns) in &other.phase_wall_ns {
            *self.phase_wall_ns.entry(phase.clone()).or_insert(0) += ns;
        }
    }
}

/// The exported artifact: world counters + run diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub world: WorldMetrics,
    pub run: RunMetrics,
}

impl MetricsSnapshot {
    /// Commutative, associative merge: both sections sum field-wise, so
    /// absorbing per-shard snapshots in any completion order is safe.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.world.merge(&other.world);
        self.run.merge(&other.run);
    }

    /// True when nothing was recorded (telemetry was disabled).
    pub fn is_empty(&self) -> bool {
        self == &MetricsSnapshot::default()
    }

    /// Fold one post-correlation classification into the world section.
    pub fn record_classification(&mut self, rule: &str, unsolicited: bool, interval_ms: u64) {
        if unsolicited {
            *self
                .world
                .unsolicited_by_rule
                .entry(rule.to_string())
                .or_insert(0) += 1;
        }
        self.world.retention_intervals_ms.record(interval_ms);
    }

    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Rows for a human summary table: (metric, value) over the world
    /// section, in a stable order.
    pub fn summary_rows(&self) -> Vec<(String, String)> {
        let w = &self.world;
        let mut rows = vec![
            (
                "packets forwarded".to_string(),
                w.packets_forwarded.to_string(),
            ),
            (
                "packets delivered".to_string(),
                w.packets_delivered.to_string(),
            ),
            ("TTL expirations".to_string(), w.ttl_expirations.to_string()),
            (
                "ICMP Time Exceeded".to_string(),
                w.icmp_time_exceeded.to_string(),
            ),
            (
                "tap observations".to_string(),
                w.tap_observations.to_string(),
            ),
            ("tap drops".to_string(), w.tap_drops.to_string()),
        ];
        for (label, n) in &w.decoys_sent {
            rows.push((format!("decoys sent ({label})"), n.to_string()));
        }
        for (label, n) in &w.arrivals_captured {
            rows.push((format!("arrivals captured ({label})"), n.to_string()));
        }
        if w.arrivals_classified > 0 {
            rows.push((
                "arrivals classified (sink)".to_string(),
                w.arrivals_classified.to_string(),
            ));
        }
        rows.push((
            "resolver queries".to_string(),
            w.resolver_queries.to_string(),
        ));
        rows.push((
            "resolver cache hits".to_string(),
            w.resolver_cache_hits.to_string(),
        ));
        rows.push((
            "resolver upstream queries".to_string(),
            w.resolver_upstream_queries.to_string(),
        ));
        rows.push((
            "shadow probes scheduled".to_string(),
            w.shadow_probes_scheduled.to_string(),
        ));
        for (rule, n) in &w.unsolicited_by_rule {
            rows.push((format!("unsolicited ({rule})"), n.to_string()));
        }
        // Fault rows appear only when a fault profile actually fired, so
        // fault-free summaries keep their pre-chaos shape.
        for (label, n) in [
            ("fault packets lost", w.fault_packets_lost),
            ("fault packets duplicated", w.fault_packets_duplicated),
            ("fault packets delayed", w.fault_packets_delayed),
            ("fault outage drops", w.fault_outage_drops),
            ("fault ICMP rate-limited", w.fault_icmp_rate_limited),
            ("DNS decoy retries", w.dns_retries),
        ] {
            if n > 0 {
                rows.push((label.to_string(), n.to_string()));
            }
        }
        if self.run.retention_capacity_evictions > 0 {
            rows.push((
                "retention capacity evictions".to_string(),
                self.run.retention_capacity_evictions.to_string(),
            ));
        }
        if self.run.sink_tracked_decoys > 0 {
            rows.push((
                "sink tracked decoys".to_string(),
                self.run.sink_tracked_decoys.to_string(),
            ));
        }
        if self.run.topo_lookups > 0 {
            rows.push((
                "topo LPM lookups".to_string(),
                self.run.topo_lookups.to_string(),
            ));
        }
        if self.run.router_graph_edges > 0 {
            rows.push((
                "router graph edges folded".to_string(),
                self.run.router_graph_edges.to_string(),
            ));
        }
        rows.push(("shards merged".to_string(), self.run.shards.to_string()));
        for (shard, n) in &self.run.events_drained_per_shard {
            rows.push((format!("events drained (shard {shard})"), n.to_string()));
        }
        rows
    }
}

fn merge_map(into: &mut BTreeMap<String, u64>, from: &BTreeMap<String, u64>) {
    for (k, v) in from {
        *into.entry(k.clone()).or_insert(0) += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_take_resets() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_buckets_by_inclusive_bound() {
        let h = Histogram::new(vec![10, 100]);
        h.record(0);
        h.record(10); // inclusive upper edge
        h.record(11);
        h.record(1_000); // overflow
        let snap = h.take();
        assert_eq!(snap.counts, vec![2, 1, 1]);
        assert_eq!(snap.total(), 4);
    }

    #[test]
    fn bank_ignores_unknown_labels() {
        let bank = CounterBank::new(&["A", "B"]);
        bank.inc("A");
        bank.inc("ZZZ");
        let taken = bank.take();
        assert_eq!(taken.get("A"), Some(&1));
        assert!(!taken.contains_key("ZZZ"));
    }

    #[test]
    fn snapshot_merge_is_commutative() {
        let make = |n: u64, shard: u32| {
            let reg = MetricsRegistry::default();
            reg.packets_forwarded.add(n);
            reg.decoys_sent.inc("DNS");
            reg.events_drained.add(n * 10);
            reg.take_snapshot(shard)
        };
        let (a, b, c) = (make(1, 0), make(2, 1), make(3, 2));
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut cb = c.clone();
        cb.merge(&b);
        cb.merge(&a);
        assert_eq!(ab, cb);
        assert_eq!(ab.world.packets_forwarded, 6);
        assert_eq!(ab.world.decoys_sent.get("DNS"), Some(&3));
        assert_eq!(ab.run.shards, 3);
        assert_eq!(ab.run.events_drained_per_shard.len(), 3);
    }

    #[test]
    fn take_snapshot_resets_registry() {
        let reg = MetricsRegistry::default();
        reg.tap_observations.inc();
        reg.record_phase_ns("phase1", 42);
        let first = reg.take_snapshot(0);
        assert_eq!(first.world.tap_observations, 1);
        assert_eq!(first.run.phase_wall_ns.get("phase1"), Some(&42));
        let second = reg.take_snapshot(0);
        assert_eq!(second.world.tap_observations, 0);
        assert!(second.run.phase_wall_ns.is_empty());
    }

    #[test]
    fn classification_records_rule_and_interval() {
        let mut snap = MetricsSnapshot::default();
        snap.record_classification("RepeatedDnsQuery", true, 90_000);
        snap.record_classification("SolicitedResolution", false, 500);
        assert_eq!(snap.world.unsolicited_by_rule.len(), 1);
        assert_eq!(snap.world.retention_intervals_ms.total(), 2);
    }
}
