//! The structured event journal and the [`Telemetry`] handle that feeds it.
//!
//! Every record is a typed event ([`EventKind`]) stamped with sim-time,
//! shard id, and (when the event happened *at* a node) a node id. Events
//! split into two classes:
//!
//! * **world events** — facts about simulated traffic (a decoy left a VP, a
//!   tap saw a packet, a TTL expired, a honeypot captured an arrival …).
//!   Their [`JournalRecord::diff_key`] deliberately excludes the shard id
//!   and emission sequence, so the sorted world-event stream of a sharded
//!   run is identical to the sequential run's for the same seed.
//! * **meta events** ([`EventKind::is_meta`]) — run-structure markers
//!   (shard merges, phase boundaries). They stay in the journal for
//!   auditing but are skipped by [`crate::diff`].
//!
//! Records buffer in memory behind a mutex (one journal per shard — no
//! cross-thread contention) and are drained, sorted into the total key
//! order, and written as JSONL after the run.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A typed journal event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A decoy was posted from a vantage point.
    DecoySent {
        protocol: String,
        domain: String,
        vp: u32,
        dst: Ipv4Addr,
        ttl: u8,
    },
    /// An on-path wire tap observed a packet at a router.
    TapObserved {
        src: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: String,
    },
    /// A TTL hit zero at a router that answers with ICMP Time Exceeded.
    IcmpTimeExceeded {
        expired_src: Ipv4Addr,
        expired_dst: Ipv4Addr,
    },
    /// A honeypot captured a request bearing an experiment domain.
    ArrivalCaptured {
        honeypot: String,
        protocol: String,
        domain: String,
        src: Ipv4Addr,
    },
    /// A shadowing pipeline scheduled a future probe for a retained name.
    ShadowProbeScheduled { domain: String },
    /// Post-correlation: an arrival was classified unsolicited.
    UnsolicitedArrival {
        rule: String,
        domain: String,
        src: Ipv4Addr,
        protocol: String,
    },
    /// The streaming correlation sink classified an arrival at capture
    /// time. `rule` is only present for unsolicited arrivals: attributing
    /// solicited-vs-replication is a same-millisecond tie-break whose
    /// winner depends on engine event order, so naming it would make
    /// journals shard-sensitive; the unsolicited rules are order-invariant.
    ArrivalClassified {
        honeypot: String,
        protocol: String,
        domain: String,
        src: Ipv4Addr,
        unsolicited: bool,
        rule: Option<String>,
    },
    /// Meta: one shard's campaign data was absorbed into the merge.
    ShardMerged {
        shard: u32,
        arrivals: u64,
        decoys: u64,
    },
    /// Meta: a named phase finished on one shard.
    PhaseEnded { phase: String, shard: u32 },
    /// Meta: one shard finished folding its router-graph contribution
    /// from Phase II Time-Exceeded evidence.
    RouterGraphBuilt {
        shard: u32,
        /// Distinct probe paths with at least one revealed hop.
        paths: u64,
        /// Raw Time-Exceeded observations folded (pre-dedup).
        observations: u64,
    },
}

impl EventKind {
    /// Meta events describe the *run*, not the simulated world; journal
    /// diffs skip them (a 4-shard run legitimately has more merges than a
    /// sequential one).
    pub fn is_meta(&self) -> bool {
        matches!(
            self,
            EventKind::ShardMerged { .. }
                | EventKind::PhaseEnded { .. }
                | EventKind::RouterGraphBuilt { .. }
        )
    }

    /// Stable rank for the total key order (ties on sim-time break on
    /// event type first, payload second).
    pub fn rank(&self) -> u8 {
        match self {
            EventKind::DecoySent { .. } => 0,
            EventKind::TapObserved { .. } => 1,
            EventKind::IcmpTimeExceeded { .. } => 2,
            EventKind::ArrivalCaptured { .. } => 3,
            EventKind::ShadowProbeScheduled { .. } => 4,
            EventKind::UnsolicitedArrival { .. } => 5,
            EventKind::ShardMerged { .. } => 6,
            EventKind::PhaseEnded { .. } => 7,
            EventKind::ArrivalClassified { .. } => 8,
            EventKind::RouterGraphBuilt { .. } => 9,
        }
    }
}

/// One journal line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// Simulated milliseconds since campaign start.
    pub at_ms: u64,
    /// Shard that emitted the record (0 for a sequential run).
    pub shard: u32,
    /// Topology node the event happened at, if any.
    pub node: Option<u32>,
    /// Per-shard emission sequence (tiebreaker for in-shard ordering).
    pub seq: u64,
    pub event: EventKind,
}

impl JournalRecord {
    /// The shard-independent total key [`crate::diff`] aligns on:
    /// (sim-time, event rank, node, canonical payload). Two world events
    /// from different shard counts compare equal iff they describe the
    /// same simulated fact.
    pub fn diff_key(&self) -> (u64, u8, u32, String) {
        (
            self.at_ms,
            self.event.rank(),
            self.node.map(|n| n + 1).unwrap_or(0),
            serde_json::to_string(&self.event).unwrap_or_default(),
        )
    }

    /// The full deterministic sort key: diff key, then shard, then
    /// emission order — a total order over any record set.
    pub fn sort_key(&self) -> (u64, u8, u32, String, u32, u64) {
        let (at, rank, node, payload) = self.diff_key();
        (at, rank, node, payload, self.shard, self.seq)
    }
}

/// Sort records into the canonical total order (deterministic for a fixed
/// seed and shard count; world-event prefix identical across shard counts).
pub fn sort_records(records: &mut [JournalRecord]) {
    records.sort_by_cached_key(|r| r.sort_key());
}

/// Serialize records as JSONL, one record per line, in the given order.
pub fn to_jsonl(records: &[JournalRecord]) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for record in records {
        out.push_str(&serde_json::to_string(record)?);
        out.push('\n');
    }
    Ok(out)
}

/// Parse a JSONL journal. Blank lines are skipped; any malformed line is an
/// error naming its line number.
pub fn from_jsonl(input: &str) -> Result<Vec<JournalRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: JournalRecord =
            serde_json::from_str(line).map_err(|e| format!("journal line {}: {e:?}", i + 1))?;
        out.push(record);
    }
    Ok(out)
}

struct JournalBuf {
    seq: u64,
    records: Vec<JournalRecord>,
}

struct TelemetryInner {
    shard: u32,
    metrics: MetricsRegistry,
    journal: Option<Mutex<JournalBuf>>,
}

/// The cloneable telemetry handle an engine (and its hosts/taps) write
/// through. `Telemetry::disabled()` is the default everywhere: a `None`
/// that every emit path checks first, so disabled instrumentation costs a
/// predicted branch and nothing else — no allocation, no atomics.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<TelemetryInner>>);

impl Telemetry {
    /// The no-op handle.
    pub fn disabled() -> Self {
        Telemetry(None)
    }

    /// Metrics-only telemetry for one shard.
    pub fn metrics_only(shard: u32) -> Self {
        Self::new(shard, false)
    }

    /// Telemetry for one shard; `journal` additionally buffers events.
    pub fn new(shard: u32, journal: bool) -> Self {
        Telemetry(Some(Arc::new(TelemetryInner {
            shard,
            metrics: MetricsRegistry::default(),
            journal: journal.then(|| {
                Mutex::new(JournalBuf {
                    seq: 0,
                    records: Vec::new(),
                })
            }),
        })))
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn journal_enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|i| i.journal.is_some())
    }

    pub fn shard(&self) -> u32 {
        self.0.as_ref().map(|i| i.shard).unwrap_or(0)
    }

    /// The live metrics registry, when enabled. Hot paths gate on this:
    /// `if let Some(m) = telemetry.metrics() { m.counter.inc() }`.
    #[inline]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.0.as_ref().map(|i| &i.metrics)
    }

    /// Append an event. The payload closure only runs when a journal is
    /// attached — disabled or metrics-only handles never allocate here.
    #[inline]
    pub fn event(&self, at_ms: u64, node: Option<u32>, build: impl FnOnce() -> EventKind) {
        let Some(inner) = &self.0 else { return };
        let Some(journal) = &inner.journal else {
            return;
        };
        let mut buf = journal.lock();
        let seq = buf.seq;
        buf.seq += 1;
        buf.records.push(JournalRecord {
            at_ms,
            shard: inner.shard,
            node,
            seq,
            event: build(),
        });
    }

    /// Record wall-clock for a named phase (no-op when disabled).
    pub fn record_phase_ns(&self, phase: &str, ns: u64) {
        if let Some(inner) = &self.0 {
            inner.metrics.record_phase_ns(phase, ns);
        }
    }

    /// Freeze-and-reset the metrics into a snapshot attributed to this
    /// shard. Disabled handles return the empty snapshot.
    pub fn take_snapshot(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(inner) => inner.metrics.take_snapshot(inner.shard),
            None => MetricsSnapshot::default(),
        }
    }

    /// Drain buffered journal records (unsorted emission order).
    pub fn drain_journal(&self) -> Vec<JournalRecord> {
        match &self.0 {
            Some(inner) => match &inner.journal {
                Some(journal) => std::mem::take(&mut journal.lock().records),
                None => Vec::new(),
            },
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decoy(at: u64, shard: u32, domain: &str) -> JournalRecord {
        JournalRecord {
            at_ms: at,
            shard,
            node: Some(3),
            seq: 0,
            event: EventKind::DecoySent {
                protocol: "DNS".to_string(),
                domain: domain.to_string(),
                vp: 1,
                dst: Ipv4Addr::new(77, 88, 8, 8),
                ttl: 64,
            },
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.event(1, None, || unreachable!("closure must not run"));
        assert!(t.take_snapshot().is_empty());
        assert!(t.drain_journal().is_empty());
    }

    #[test]
    fn metrics_only_skips_journal_payloads() {
        let t = Telemetry::metrics_only(0);
        assert!(t.is_enabled());
        assert!(!t.journal_enabled());
        t.event(1, None, || unreachable!("no journal attached"));
        t.metrics().unwrap().tap_observations.inc();
        assert_eq!(t.take_snapshot().world.tap_observations, 1);
    }

    #[test]
    fn events_stamp_shard_node_and_sequence() {
        let t = Telemetry::new(5, true);
        t.event(10, Some(2), || EventKind::PhaseEnded {
            phase: "phase1".to_string(),
            shard: 5,
        });
        t.event(10, Some(2), || EventKind::PhaseEnded {
            phase: "phase2".to_string(),
            shard: 5,
        });
        let records = t.drain_journal();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].shard, 5);
        assert_eq!(records[0].node, Some(2));
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert!(t.drain_journal().is_empty(), "drain resets the buffer");
    }

    #[test]
    fn diff_key_ignores_shard_but_sort_key_is_total() {
        let a = decoy(100, 0, "x.example");
        let mut b = decoy(100, 7, "x.example");
        b.seq = 9;
        assert_eq!(a.diff_key(), b.diff_key());
        assert_ne!(a.sort_key(), b.sort_key());
    }

    #[test]
    fn jsonl_roundtrips_and_sorts() {
        let mut records = vec![
            decoy(200, 1, "b.example"),
            decoy(100, 0, "a.example"),
            decoy(100, 0, "c.example"),
        ];
        sort_records(&mut records);
        assert_eq!(records[0].at_ms, 100);
        let text = to_jsonl(&records).unwrap();
        assert_eq!(text.lines().count(), 3);
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn meta_classification() {
        assert!(EventKind::ShardMerged {
            shard: 0,
            arrivals: 0,
            decoys: 0
        }
        .is_meta());
        assert!(!decoy(0, 0, "d").event.is_meta());
    }
}
