//! World-builder consistency: the generated world must be internally
//! coherent (addresses geolocate to their ASes, destinations resolve to the
//! right operators, taps sit on routers, ground truth matches deployment).

use shadow_core::world::{World, WorldConfig};
use shadow_dns::catalog::{DnsDestinationKind, DNS_DESTINATIONS};
use shadow_geo::country::cc;

fn world() -> World {
    World::build(WorldConfig::tiny(321))
}

#[test]
fn vp_addresses_geolocate_to_their_recorded_country_and_as() {
    let world = world();
    for vp in &world.platform.vps {
        let record = world
            .geo
            .lookup(vp.addr)
            .unwrap_or_else(|| panic!("VP {} has no geo record", vp.addr));
        assert_eq!(
            record.country, vp.country,
            "VP {} country mismatch",
            vp.addr
        );
        let node_as = world.engine.topology().node(vp.node).asn;
        assert_eq!(record.asn, node_as, "VP {} AS mismatch", vp.addr);
        // Appendix C: recruited VPs live in hosting-labeled networks.
        assert_eq!(
            world.geo.hosting_of(vp.addr),
            Some(shadow_geo::HostingLabel::Hosting),
            "VP {} not in a hosting network",
            vp.addr
        );
    }
}

#[test]
fn every_table4_destination_is_deployed_and_routed() {
    let world = world();
    assert_eq!(world.dns_destinations.len(), DNS_DESTINATIONS.len());
    for deployed in &world.dns_destinations {
        assert!(
            !deployed.nodes.is_empty(),
            "{} has no nodes",
            deployed.dest.name
        );
        // The destination address resolves to at least one host node.
        let nodes = world.engine.topology().nodes_at(deployed.addr);
        assert!(!nodes.is_empty(), "{} unrouted", deployed.dest.name);
        // The pair address is registered too, in the same /24.
        let pair_nodes = world.engine.topology().nodes_at(deployed.pair_addr);
        assert!(
            !pair_nodes.is_empty(),
            "{} pair unrouted",
            deployed.dest.name
        );
        let a = deployed.addr.octets();
        let p = deployed.pair_addr.octets();
        assert_eq!(&a[..3], &p[..3]);
        // Geo lookup puts the address in the operator's network.
        let record = world.geo.lookup(deployed.addr).expect("dest geolocates");
        if deployed.dest.operator_asn != 0 {
            assert_eq!(
                record.asn.0, deployed.dest.operator_asn,
                "{}",
                deployed.dest.name
            );
        }
    }
}

#[test]
fn anycast_destinations_have_multiple_instances() {
    let world = world();
    let d114 = world.dns_destination("114DNS").unwrap();
    assert_eq!(d114.nodes.len(), 2, "CN + US instances");
    let countries: Vec<_> = d114
        .nodes
        .iter()
        .map(|&n| {
            let asn = world.engine.topology().node(n).asn;
            world.catalog.get(asn).unwrap().country
        })
        .collect();
    assert!(countries.contains(&cc("CN")));
    assert!(countries.contains(&cc("US")));
    // Every other public resolver has exactly one instance.
    for deployed in &world.dns_destinations {
        if deployed.dest.name != "114DNS"
            && deployed.dest.kind == DnsDestinationKind::PublicResolver
        {
            assert_eq!(deployed.nodes.len(), 1, "{}", deployed.dest.name);
        }
    }
}

#[test]
fn dpi_taps_sit_on_routers_of_the_right_ases() {
    let world = world();
    assert!(!world.ground_truth.dpi_taps.is_empty());
    for (node, label) in &world.ground_truth.dpi_taps {
        let n = world.engine.topology().node(*node);
        assert!(n.is_router(), "tap {label} not on a router");
        if let Some(asn_str) = label.strip_prefix("AS") {
            let asn: u32 = asn_str.parse().expect("label is an AS number");
            assert_eq!(n.asn.0, asn, "tap {label} on the wrong AS");
        }
    }
}

#[test]
fn origin_addresses_are_routable_and_blocklist_is_a_subset() {
    let world = world();
    assert!(!world.ground_truth.origin_addrs.is_empty());
    for addr in &world.ground_truth.origin_addrs {
        assert!(
            !world.engine.topology().nodes_at(*addr).is_empty(),
            "origin {addr} unrouted"
        );
    }
    for addr in &world.ground_truth.blocklisted_addrs {
        assert!(
            world.ground_truth.origin_addrs.contains(addr),
            "blocklisted {addr} is not an origin"
        );
    }
    // Both dirty and clean origins exist (the blocklist analyses need
    // contrast).
    assert!(world.ground_truth.blocklisted_addrs.len() < world.ground_truth.origin_addrs.len());
}

#[test]
fn honeypots_span_three_regions_and_control_server_exists() {
    let world = world();
    let regions: Vec<_> = world.honey_web.iter().map(|(_, _, r)| r.clone()).collect();
    assert_eq!(regions, vec!["US", "DE", "SG"]);
    assert!(!world.engine.topology().nodes_at(world.auth_addr).is_empty());
    assert!(!world
        .engine
        .topology()
        .nodes_at(world.control_addr)
        .is_empty());
}

#[test]
fn tranco_sites_cover_the_headline_countries() {
    // Figure 3 highlights destinations in CN, AD, US, CA. With enough
    // sites, the palette must cover CN and US at least; AD/CA appear at
    // larger site counts.
    let world = World::build(WorldConfig {
        tranco_sites: 60,
        ..WorldConfig::tiny(322)
    });
    let countries: std::collections::BTreeSet<_> = world.tranco.iter().map(|s| s.country).collect();
    assert!(countries.contains(&cc("CN")));
    assert!(countries.contains(&cc("US")));
    assert!(countries.contains(&cc("CA")));
    assert!(countries.contains(&cc("AD")));
}
