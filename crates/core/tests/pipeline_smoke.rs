//! End-to-end smoke test of the whole measurement pipeline on a tiny world:
//! world build → pre-flight noise filtering → Phase I → correlation →
//! Phase II localization. Each stage's invariants are checked against the
//! world's ground truth.

use shadow_core::campaign::{CampaignRunner, Phase1Config};
use shadow_core::correlate::Correlator;
use shadow_core::decoy::DecoyProtocol;
use shadow_core::noise::NoiseFilter;
use shadow_core::phase2::{paths_to_trace, Phase2Config, Phase2Runner};
use shadow_core::world::{World, WorldConfig};
use shadow_netsim::time::SimDuration;

fn tiny_world(seed: u64) -> World {
    World::build(WorldConfig::tiny(seed))
}

#[test]
fn world_builds_and_is_consistent() {
    let world = tiny_world(1);
    assert_eq!(world.dns_destinations.len(), 36, "Table 4 deployed in full");
    assert_eq!(world.honey_web.len(), 3, "US/DE/SG honeypots");
    assert_eq!(world.tranco.len(), world.config.tranco_sites);
    assert!(
        world.platform.vps.len() <= world.config.vps_global + world.config.vps_cn,
        "vetting can only shrink the platform"
    );
    assert!(!world.platform.vps.is_empty());
    // Ground truth sanity: the expected exhibitors are present.
    assert!(world
        .ground_truth
        .shadowing_resolvers
        .iter()
        .any(|n| n.contains("Yandex")));
    assert!(world
        .ground_truth
        .shadowing_resolvers
        .iter()
        .any(|n| n.contains("114DNS (CN)")));
    assert!(!world.ground_truth.dpi_taps.is_empty());
    assert!(!world.ground_truth.blocklisted_addrs.is_empty());
    // 114DNS deploys two anycast instances.
    let d114 = world.dns_destination("114DNS").unwrap();
    assert_eq!(d114.nodes.len(), 2);
}

#[test]
fn world_build_is_deterministic() {
    let a = tiny_world(7);
    let b = tiny_world(7);
    assert_eq!(a.platform.vps.len(), b.platform.vps.len());
    let addrs_a: Vec<_> = a.platform.vps.iter().map(|vp| vp.addr).collect();
    let addrs_b: Vec<_> = b.platform.vps.iter().map(|vp| vp.addr).collect();
    assert_eq!(addrs_a, addrs_b);
    assert_eq!(
        a.ground_truth.blocklisted_addrs,
        b.ground_truth.blocklisted_addrs
    );
    assert_eq!(
        a.engine.topology().node_count(),
        b.engine.topology().node_count()
    );
}

#[test]
fn preflight_filters_run_clean_platform() {
    let mut world = tiny_world(2);
    let before = world.platform.vps.len();
    let outcome = NoiseFilter::run_and_apply(&mut world);
    // Integrated providers are clean, so TTL deltas all match.
    assert_eq!(outcome.ttl_deltas.len(), before, "every VP measured");
    assert!(outcome
        .ttl_deltas
        .iter()
        .all(|&(_, d)| d == NoiseFilter::expected_delta()));
    // Interceptors exist in the tiny world, so some VPs may be excluded —
    // and those excluded must be CN-side (that is where interceptors sit).
    for id in &outcome.intercepted {
        assert!(
            world.platform.get(*id).is_none(),
            "intercepted VPs are removed from the platform"
        );
    }
    assert_eq!(world.platform.vps.len() + outcome.intercepted.len(), before);
}

#[test]
fn full_pipeline_recovers_shadowing_landscape() {
    let mut world = tiny_world(3);
    NoiseFilter::run_and_apply(&mut world);

    let config = Phase1Config {
        rounds: 1,
        grace: SimDuration::from_days(35),
        ..Phase1Config::default()
    };
    let data = CampaignRunner::run_phase1(&mut world, &config);
    assert!(!data.registry.is_empty());
    let counts = data.registry.counts();
    let vps = world.platform.vps.len();
    assert_eq!(counts[&DecoyProtocol::Dns], vps * 36);
    assert_eq!(counts[&DecoyProtocol::Http], vps * world.tranco.len());
    assert_eq!(counts[&DecoyProtocol::Tls], vps * world.tranco.len());
    assert!(!data.arrivals.is_empty(), "honeypots captured traffic");

    let correlator = Correlator::new(&data.registry);
    let correlated = correlator.correlate(&data.arrivals);
    assert!(!correlated.is_empty());

    let unsolicited: Vec<_> = correlated
        .iter()
        .filter(|r| r.label.is_unsolicited())
        .collect();
    assert!(!unsolicited.is_empty(), "shadowing exhibitors fired");

    // The heavy resolvers must dominate DNS-decoy shadowing.
    let paths = correlator.problematic_paths(&correlated);
    let yandex_addr = world.dns_destination("Yandex").unwrap().addr;
    let yandex_paths = paths
        .keys()
        .filter(|k| k.dst == yandex_addr && k.protocol == DecoyProtocol::Dns)
        .count();
    assert!(
        yandex_paths as f64 >= vps as f64 * 0.8,
        "nearly every VP→Yandex path is problematic ({yandex_paths}/{vps})"
    );

    // The control resolver and the roots stay clean.
    for name in ["self-built", "a.root", ".com", ".org"] {
        let addr = world.dns_destination(name).unwrap().addr;
        let dirty = paths.keys().any(|k| k.dst == addr);
        assert!(!dirty, "{name} must not exhibit shadowing");
    }

    // Some unsolicited requests bear decoy data days after emission.
    let has_long_retention = unsolicited
        .iter()
        .any(|r| r.interval >= SimDuration::from_days(5));
    assert!(has_long_retention, "long retention tail missing");
}

#[test]
fn phase2_localizes_dns_observers_at_destination() {
    let mut world = tiny_world(4);
    NoiseFilter::run_and_apply(&mut world);
    let phase1 = CampaignRunner::run_phase1(
        &mut world,
        &Phase1Config {
            send_http: false,
            send_tls: false,
            grace: SimDuration::from_days(32),
            ..Phase1Config::default()
        },
    );
    let correlator = Correlator::new(&phase1.registry);
    let correlated = correlator.correlate(&phase1.arrivals);
    // Trace a handful of DNS paths.
    let traced = paths_to_trace(&correlated, &phase1.registry, 4);
    assert!(!traced.is_empty(), "phase 1 found problematic paths");

    let (results, _phase2_data) = Phase2Runner::run(
        &mut world,
        &traced,
        &Phase2Config {
            max_ttl: 24,
            grace: SimDuration::from_days(25),
            ..Phase2Config::default()
        },
    );
    let localized: Vec<_> = results
        .iter()
        .filter(|r| r.normalized_hop.is_some())
        .collect();
    assert!(!localized.is_empty(), "at least one observer localized");
    // DNS shadowing in this world is resolver-side: normalized hop 10.
    let at_dest = localized
        .iter()
        .filter(|r| r.normalized_hop == Some(10))
        .count();
    assert!(
        at_dest * 2 >= localized.len(),
        "most DNS observers localize at the destination ({at_dest}/{})",
        localized.len()
    );
    // Tracerouting revealed actual router addresses on the way.
    assert!(results.iter().any(|r| !r.revealed_routers.is_empty()));
}
