//! Property tests for the decoy identifier codec and registry.

use proptest::prelude::*;
use shadow_core::decoy::{DecoyProtocol, DecoyRegistry};
use shadow_core::ident::DecoyIdent;
use shadow_netsim::time::SimTime;
use shadow_packet::dns::DnsName;
use shadow_vantage::platform::VpId;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    #[test]
    fn ident_round_trips(
        sent_ds in any::<u32>(),
        vp in arb_addr(),
        dst in arb_addr(),
        ttl in any::<u8>(),
    ) {
        let ident = DecoyIdent::new(sent_ds, vp, dst, ttl);
        let label = ident.encode();
        prop_assert_eq!(DecoyIdent::decode(&label).unwrap(), ident);
        // The label is always a valid leftmost DNS label of a decoy domain.
        let domain = DnsName::parse(&format!("{label}.www.experiment.example")).unwrap();
        prop_assert_eq!(DecoyIdent::from_domain(&domain), Some(ident));
    }

    #[test]
    fn single_character_corruption_never_decodes_to_original(
        sent_ds in any::<u32>(),
        vp in arb_addr(),
        dst in arb_addr(),
        ttl in any::<u8>(),
        pos in 0usize..21,
        replacement in proptest::char::range('a', 'z'),
    ) {
        let ident = DecoyIdent::new(sent_ds, vp, dst, ttl);
        let label = ident.encode();
        let mut chars: Vec<char> = label.chars().collect();
        prop_assume!(chars[pos] != replacement);
        chars[pos] = replacement;
        let corrupted: String = chars.iter().collect();
        // Either the checksum catches it, or (vanishingly unlikely with a
        // 1-in-10,000 checksum) it decodes to a *different* identity — but
        // never silently to the original.
        if let Ok(decoded) = DecoyIdent::decode(&corrupted) {
            prop_assert_ne!(decoded, ident);
        }
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_labels(label in "[a-z0-9-]{0,40}") {
        let _ = DecoyIdent::decode(&label);
    }

    #[test]
    fn registry_domains_unique_per_send_slot(
        vp_addr in arb_addr(),
        dst_a in arb_addr(),
        dst_b in arb_addr(),
        base_ms in 0u64..1_000_000,
    ) {
        prop_assume!(dst_a != dst_b);
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        // Distinct destinations in the same decisecond are fine; same
        // destination requires ≥100 ms spacing (the scheduler guarantees
        // more).
        let a = registry.register(VpId(1), vp_addr, dst_a, DecoyProtocol::Dns, 64, SimTime(base_ms), None);
        let b = registry.register(VpId(1), vp_addr, dst_b, DecoyProtocol::Http, 64, SimTime(base_ms), None);
        let c = registry.register(VpId(1), vp_addr, dst_a, DecoyProtocol::Tls, 64, SimTime(base_ms + 100), None);
        prop_assert_ne!(&a.domain, &b.domain);
        prop_assert_ne!(&a.domain, &c.domain);
        prop_assert_ne!(&b.domain, &c.domain);
        prop_assert_eq!(registry.len(), 3);
        // Lookup returns exactly the registered record.
        prop_assert_eq!(registry.lookup(&a.domain), Some(&a));
    }
}
