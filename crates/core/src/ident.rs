//! The decoy identifier codec.
//!
//! Each decoy embeds a unique domain of the form
//!
//! ```text
//! g6d8jjkut5obc4ags2bkdi-9982 . www.experiment.example
//! └── identifier ──┘ └chk┘       └── zone → honeypots ──┘
//! ```
//!
//! where the identifier encodes *(send time, VP address, destination
//! address, initial TTL)* — exactly the fields the paper packs in (§3) so
//! that honeypots can map any arriving request back to the decoy and the
//! client-server path that leaked it, including which TTL of a Phase-II
//! sweep it came from.
//!
//! Encoding: 13 payload bytes (u32 seconds, u32 VP, u32 destination, u8
//! TTL) in base32 (21 chars, alphabet `a-z2-7`), then `-` and a 4-digit
//! checksum. Everything is lowercase and DNS-label-safe.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Base32 alphabet (RFC 4648 lowercase, no padding).
const ALPHABET: &[u8; 32] = b"abcdefghijklmnopqrstuvwxyz234567";

/// The decoded identity of one decoy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecoyIdent {
    /// Simulated *deciseconds* (100 ms units) since campaign start when
    /// the decoy was sent. Decisecond resolution plus the scheduler's
    /// ≥100 ms per-VP pacing guarantees identifier uniqueness even for
    /// back-to-back HTTP and TLS decoys to one destination.
    pub sent_ds: u32,
    /// The vantage point's (true) address.
    pub vp: Ipv4Addr,
    /// The decoy's destination address.
    pub dst: Ipv4Addr,
    /// Initial IP TTL (64 in Phase I; 1..=64 during Phase II sweeps).
    pub ttl: u8,
}

/// Why an identifier failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdentError {
    BadLength(usize),
    MissingSeparator,
    BadChecksum { expected: u16, found: u16 },
    BadCharacter(char),
}

impl fmt::Display for IdentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentError::BadLength(n) => write!(f, "identifier has bad length {n}"),
            IdentError::MissingSeparator => write!(f, "identifier missing '-' separator"),
            IdentError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "identifier checksum mismatch: expected {expected:04}, found {found:04}"
                )
            }
            IdentError::BadCharacter(c) => write!(f, "invalid identifier character {c:?}"),
        }
    }
}

impl std::error::Error for IdentError {}

const PAYLOAD_LEN: usize = 13;
const ENCODED_LEN: usize = 21; // ceil(13 * 8 / 5)

impl DecoyIdent {
    pub fn new(sent_ds: u32, vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> Self {
        Self {
            sent_ds,
            vp,
            dst,
            ttl,
        }
    }

    /// Build from an absolute send time.
    pub fn at(sent: shadow_netsim::time::SimTime, vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> Self {
        Self::new((sent.millis() / 100) as u32, vp, dst, ttl)
    }

    /// The send time this identifier encodes (decisecond resolution).
    pub fn sent_time(&self) -> shadow_netsim::time::SimTime {
        shadow_netsim::time::SimTime(u64::from(self.sent_ds) * 100)
    }

    fn payload(&self) -> [u8; PAYLOAD_LEN] {
        let mut out = [0u8; PAYLOAD_LEN];
        out[0..4].copy_from_slice(&self.sent_ds.to_be_bytes());
        out[4..8].copy_from_slice(&self.vp.octets());
        out[8..12].copy_from_slice(&self.dst.octets());
        out[12] = self.ttl;
        out
    }

    /// Encoded label length: identifier + `-` + 4-digit checksum.
    pub const LABEL_LEN: usize = ENCODED_LEN + 5;

    /// Encode into the DNS label (identifier + `-` + 4-digit checksum).
    pub fn encode(&self) -> String {
        let mut buf = [0u8; Self::LABEL_LEN];
        self.encode_to(&mut buf).to_string()
    }

    /// [`DecoyIdent::encode`] into a caller-provided buffer, avoiding the
    /// heap — the planner registers one decoy per planned send (~20M at
    /// paper scale), so per-label allocations are a measured hot spot.
    pub fn encode_to<'a>(&self, buf: &'a mut [u8; Self::LABEL_LEN]) -> &'a str {
        let payload = self.payload();
        let mut i = 0;
        let mut acc: u32 = 0;
        let mut bits = 0u8;
        for &byte in &payload {
            acc = (acc << 8) | u32::from(byte);
            bits += 8;
            while bits >= 5 {
                bits -= 5;
                buf[i] = ALPHABET[((acc >> bits) & 0x1f) as usize];
                i += 1;
            }
        }
        if bits > 0 {
            buf[i] = ALPHABET[((acc << (5 - bits)) & 0x1f) as usize];
            i += 1;
        }
        debug_assert_eq!(i, ENCODED_LEN);
        buf[i] = b'-';
        let check = checksum(&payload);
        buf[i + 1] = b'0' + (check / 1000 % 10) as u8;
        buf[i + 2] = b'0' + (check / 100 % 10) as u8;
        buf[i + 3] = b'0' + (check / 10 % 10) as u8;
        buf[i + 4] = b'0' + (check % 10) as u8;
        std::str::from_utf8(&buf[..i + 5]).expect("base32 + digits are ASCII")
    }

    /// Decode a label produced by [`DecoyIdent::encode`].
    pub fn decode(label: &str) -> Result<Self, IdentError> {
        let (encoded, check_str) = label.split_once('-').ok_or(IdentError::MissingSeparator)?;
        if encoded.len() != ENCODED_LEN || check_str.len() != 4 {
            return Err(IdentError::BadLength(label.len()));
        }
        let found: u16 = check_str
            .parse()
            .map_err(|_| IdentError::BadCharacter(check_str.chars().next().unwrap_or('?')))?;
        let mut payload = [0u8; PAYLOAD_LEN];
        let mut acc: u32 = 0;
        let mut bits = 0u8;
        let mut idx = 0;
        for ch in encoded.chars() {
            let value = decode_char(ch)?;
            acc = (acc << 5) | u32::from(value);
            bits += 5;
            if bits >= 8 {
                bits -= 8;
                if idx < PAYLOAD_LEN {
                    payload[idx] = ((acc >> bits) & 0xff) as u8;
                    idx += 1;
                }
            }
        }
        if idx != PAYLOAD_LEN {
            return Err(IdentError::BadLength(encoded.len()));
        }
        // 21 base32 chars carry 105 bits for a 104-bit payload: the final
        // padding bit must be zero, keeping encode/decode bijective (a
        // corrupted padding bit must not alias the original label).
        if bits > 0 && acc & ((1 << bits) - 1) != 0 {
            return Err(IdentError::BadChecksum {
                expected: checksum(&payload),
                found,
            });
        }
        let expected = checksum(&payload);
        if expected != found {
            return Err(IdentError::BadChecksum { expected, found });
        }
        Ok(Self {
            sent_ds: u32::from_be_bytes([payload[0], payload[1], payload[2], payload[3]]),
            vp: Ipv4Addr::new(payload[4], payload[5], payload[6], payload[7]),
            dst: Ipv4Addr::new(payload[8], payload[9], payload[10], payload[11]),
            ttl: payload[12],
        })
    }

    /// Extract and decode the identifier from a full decoy domain (the
    /// leftmost label), returning `None` for non-decoy domains.
    pub fn from_domain(domain: &shadow_packet::dns::DnsName) -> Option<Self> {
        Self::decode(domain.first_label()?).ok()
    }
}

fn decode_char(ch: char) -> Result<u8, IdentError> {
    let b = ch as u32;
    match ch {
        'a'..='z' => Ok((b - 'a' as u32) as u8),
        '2'..='7' => Ok((b - '2' as u32 + 26) as u8),
        other => Err(IdentError::BadCharacter(other)),
    }
}

/// 4-digit checksum (0000–9999) over the payload: an FNV-1a fold. Detects
/// mangled identifiers (e.g. case-randomizing resolvers, truncation) before
/// they pollute correlation.
fn checksum(payload: &[u8]) -> u16 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in payload {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    (h % 10_000) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_packet::dns::DnsName;

    fn ident() -> DecoyIdent {
        DecoyIdent::new(
            1_234_567,
            Ipv4Addr::new(203, 0, 113, 7),
            Ipv4Addr::new(77, 88, 8, 8),
            64,
        )
    }

    #[test]
    fn round_trips() {
        let id = ident();
        let label = id.encode();
        assert_eq!(DecoyIdent::decode(&label).unwrap(), id);
    }

    #[test]
    fn label_is_dns_safe() {
        let label = ident().encode();
        assert!(label.len() <= 63, "fits one DNS label");
        assert!(label
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        // And actually parses as a label of a DnsName.
        let name = DnsName::parse(&format!("{label}.www.experiment.example")).unwrap();
        assert_eq!(name.first_label(), Some(label.as_str()));
    }

    #[test]
    fn shape_matches_paper_example() {
        // "identifier-9982" — lowercase base32 body, dash, 4 digits.
        let label = ident().encode();
        let (body, check) = label.split_once('-').unwrap();
        assert_eq!(body.len(), 21);
        assert_eq!(check.len(), 4);
        assert!(check.chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn ttl_sweep_yields_distinct_labels() {
        // Phase II: "changing TTL will result in a new identifier string".
        let base = ident();
        let mut labels = std::collections::HashSet::new();
        for ttl in 1..=64u8 {
            let id = DecoyIdent { ttl, ..base };
            labels.insert(id.encode());
        }
        assert_eq!(labels.len(), 64);
        // And each decodes back to its TTL.
        for label in &labels {
            let id = DecoyIdent::decode(label).unwrap();
            assert_eq!(
                DecoyIdent {
                    ttl: id.ttl,
                    ..base
                },
                id
            );
        }
    }

    #[test]
    fn checksum_catches_corruption() {
        let label = ident().encode();
        // Flip one character of the body.
        let mut chars: Vec<char> = label.chars().collect();
        chars[3] = if chars[3] == 'a' { 'b' } else { 'a' };
        let corrupted: String = chars.iter().collect();
        assert!(matches!(
            DecoyIdent::decode(&corrupted),
            Err(IdentError::BadChecksum { .. })
        ));
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            DecoyIdent::decode("nodasheshere"),
            Err(IdentError::MissingSeparator)
        ));
        assert!(matches!(
            DecoyIdent::decode("short-1234"),
            Err(IdentError::BadLength(_))
        ));
        assert!(matches!(
            DecoyIdent::decode("ABCDEFGHIJKLMNOPQRSTU-1234"),
            Err(IdentError::BadCharacter(_))
        ));
        let label = ident().encode();
        let bad_check = format!("{}-abcd", label.split_once('-').unwrap().0);
        assert!(DecoyIdent::decode(&bad_check).is_err());
    }

    #[test]
    fn from_domain_extracts_leftmost_label() {
        let id = ident();
        let domain = DnsName::parse(&format!("{}.www.experiment.example", id.encode())).unwrap();
        assert_eq!(DecoyIdent::from_domain(&domain), Some(id));
        let not_decoy = DnsName::parse("www.experiment.example").unwrap();
        assert_eq!(DecoyIdent::from_domain(&not_decoy), None);
    }

    #[test]
    fn distinct_fields_distinct_labels() {
        let a = ident();
        let variants = [
            DecoyIdent {
                sent_ds: a.sent_ds + 1,
                ..a
            },
            DecoyIdent {
                vp: Ipv4Addr::new(203, 0, 113, 8),
                ..a
            },
            DecoyIdent {
                dst: Ipv4Addr::new(8, 8, 8, 8),
                ..a
            },
            DecoyIdent { ttl: 63, ..a },
        ];
        let base_label = a.encode();
        for v in variants {
            assert_ne!(v.encode(), base_label);
        }
    }
}
