//! The simulated world: topology, resolvers, observers, honeypots, vantage
//! points — everything DESIGN.md §2 substitutes for the real Internet.
//!
//! [`WorldConfig`] holds the scale knobs; [`World::build`] assembles a
//! deterministic world from a seed. Ground truth (which resolvers shadow,
//! where DPI taps sit, which origin addresses a blocklist would flag) is
//! recorded in [`GroundTruth`] for tests — the measurement pipeline never
//! reads it.

mod build;
mod spec;

pub use build::{build_world, generate_spec};
pub use spec::{HostSpec, SiteShadowSpec, TapSpec, WorldSpec};

use serde::{Deserialize, Serialize};
use shadow_dns::catalog::DnsDestination;
use shadow_geo::{AsCatalog, CountryCode, GeoDb};
use shadow_netsim::engine::Engine;
use shadow_netsim::topology::NodeId;
use shadow_packet::dns::DnsName;
use shadow_vantage::platform::Platform;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Scale and behaviour knobs for world generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    pub seed: u64,
    /// Vantage points recruited from global providers.
    pub vps_global: usize,
    /// Vantage points recruited from China-market providers.
    pub vps_cn: usize,
    /// Number of Tranco-stand-in destination websites.
    pub tranco_sites: usize,
    /// Routers per AS.
    pub routers_per_as: usize,
    /// Synthetic ASes per unit of country weight.
    pub synthetic_as_density: f64,
    /// The experiment zone decoys embed.
    pub experiment_zone: String,
    /// DNS interception middleboxes to place (Appendix E noise).
    pub interceptors: usize,
    /// Fraction of routers answering traceroute, in percent (the paper
    /// notes hops that "refuse to respond").
    pub icmp_response_percent: u8,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_2024,
            vps_global: 110,
            vps_cn: 110,
            tranco_sites: 40,
            routers_per_as: 3,
            synthetic_as_density: 0.12,
            experiment_zone: "www.experiment.example".to_string(),
            interceptors: 1,
            icmp_response_percent: 85,
        }
    }
}

impl WorldConfig {
    /// A miniature world for unit/integration tests: a handful of VPs, a
    /// few sites, but every subsystem present.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            vps_global: 6,
            vps_cn: 6,
            tranco_sites: 4,
            routers_per_as: 2,
            synthetic_as_density: 0.02,
            interceptors: 1,
            ..Self::default()
        }
    }

    /// A mid-size world for examples and benches.
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The source paper's campaign scale: 4,364 vantage points (split
    /// evenly between global and China-market providers) against 2,325
    /// Tranco-stand-in sites — the §3 deployment whose Phase I sends
    /// roughly 20M decoys per round.
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            seed,
            vps_global: 2_182,
            vps_cn: 2_182,
            tranco_sites: 2_325,
            ..Self::default()
        }
    }

    /// `factor`× the paper's decoy volume: decoys scale as VPs × sites,
    /// so both axes grow by √factor. `factor = 1` is [`Self::paper_scale`].
    pub fn paper_scale_factor(seed: u64, factor: u32) -> Self {
        let base = Self::paper_scale(seed);
        let axis = f64::from(factor.max(1)).sqrt();
        let scale = |n: usize| (n as f64 * axis).round() as usize;
        Self {
            vps_global: scale(base.vps_global),
            vps_cn: scale(base.vps_cn),
            tranco_sites: scale(base.tranco_sites),
            ..base
        }
    }

    /// Ten times the paper's decoy volume ([`Self::paper_scale_factor`]
    /// with `factor = 10`).
    pub fn paper_scale_10x(seed: u64) -> Self {
        Self::paper_scale_factor(seed, 10)
    }
}

/// A Tranco-stand-in destination site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrancoSite {
    pub node: NodeId,
    pub addr: Ipv4Addr,
    pub country: CountryCode,
}

/// A deployed DNS destination (catalog entry + the node(s) serving it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployedDnsDestination {
    pub dest: &'static DnsDestination,
    pub nodes: Vec<NodeId>,
    /// The address decoys are sent to (catalog address).
    pub addr: Ipv4Addr,
    /// The pair-resolver address (registered as a silent host).
    pub pair_addr: Ipv4Addr,
}

/// Ground truth recorded at build time — for tests and EXPERIMENTS.md
/// comparisons only; the measurement pipeline never reads this.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// (router node, exhibitor label) of every DPI tap placed.
    pub dpi_taps: Vec<(NodeId, String)>,
    /// Names of resolver instances configured to shadow.
    pub shadowing_resolvers: Vec<String>,
    /// Origin addresses a Spamhaus-like blocklist would flag.
    pub blocklisted_addrs: BTreeSet<Ipv4Addr>,
    /// All probe-origin addresses.
    pub origin_addrs: Vec<Ipv4Addr>,
    /// Router nodes carrying DNS interception middleboxes.
    pub interceptor_nodes: Vec<NodeId>,
    /// Observer router nodes that listen on BGP (port 179) when the
    /// open-port prober knocks (§5.2: routing devices between networks).
    pub bgp_speaking_observers: BTreeSet<Ipv4Addr>,
}

/// The assembled world.
pub struct World {
    pub config: WorldConfig,
    pub engine: Engine,
    pub catalog: AsCatalog,
    pub geo: GeoDb,
    pub platform: Platform,
    pub zone: DnsName,
    /// Experiment authoritative server (the DNS honeypot).
    pub auth_node: NodeId,
    pub auth_addr: Ipv4Addr,
    /// Honey web servers: (node, address, region label).
    pub honey_web: Vec<(NodeId, Ipv4Addr, String)>,
    /// Control server used by pre-flight checks.
    pub control_node: NodeId,
    pub control_addr: Ipv4Addr,
    pub dns_destinations: Vec<DeployedDnsDestination>,
    pub tranco: Vec<TrancoSite>,
    pub ground_truth: GroundTruth,
}

impl World {
    /// Build a world from a configuration (see [`build_world`]).
    pub fn build(config: WorldConfig) -> Self {
        build_world(config)
    }

    /// Addresses of the honey web servers (wildcard targets).
    pub fn honey_web_addrs(&self) -> Vec<Ipv4Addr> {
        self.honey_web.iter().map(|&(_, addr, _)| addr).collect()
    }

    /// The deployed destination for a catalog name, if present.
    pub fn dns_destination(&self, name: &str) -> Option<&DeployedDnsDestination> {
        self.dns_destinations.iter().find(|d| d.dest.name == name)
    }

    /// Install (or clear, with `None`) a streaming arrival sink on every
    /// capture point — the authoritative server and all honey web hosts.
    /// Each host holds a clone of the shared handle, so every capture in
    /// this world's engine folds into the same per-shard sink.
    pub fn install_arrival_sink(
        &mut self,
        sink: Option<shadow_honeypot::capture::SharedArrivalSink>,
    ) {
        let auth_node = self.auth_node;
        if let Some(auth) = self
            .engine
            .host_as_mut::<shadow_honeypot::authority::ExperimentAuthorityHost>(auth_node)
        {
            auth.set_arrival_sink(sink.clone());
        }
        let web_nodes: Vec<NodeId> = self.honey_web.iter().map(|&(node, _, _)| node).collect();
        for node in web_nodes {
            if let Some(web) = self
                .engine
                .host_as_mut::<shadow_honeypot::web::WebHost>(node)
            {
                web.set_arrival_sink(sink.clone());
            }
        }
    }
}
