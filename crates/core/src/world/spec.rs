//! The pure-data world specification.
//!
//! [`generate_spec`](super::build::generate_spec) runs the full ground-truth
//! generation pass (catalog, addressing, topology, host placement, observer
//! placement) and records the outcome here as plain data — no engine, no
//! boxed hosts, no RNG state. [`WorldSpec::instantiate`] then materializes a
//! runnable [`World`] from it. Because instantiation is a pure function of
//! the spec, every shard of a sharded campaign instantiates its own world
//! from the *same* spec and is guaranteed the identical ground truth:
//! identical topology, identical exhibitor seeds, identical honeypots.

use super::{DeployedDnsDestination, GroundTruth, TrancoSite, World, WorldConfig};
use crate::noise::ControlServerHost;
use shadow_dns::authoritative::{AuthorityMode, StaticAuthorityHost};
use shadow_dns::profile::ResolverProfile;
use shadow_dns::resolver::RecursiveResolverHost;
use shadow_geo::{AsCatalog, GeoDb};
use shadow_honeypot::authority::ExperimentAuthorityHost;
use shadow_honeypot::web::{SiteShadow, WebHost};
use shadow_netsim::engine::{Engine, Host, WireTap};
use shadow_netsim::time::SimDuration;
use shadow_netsim::topology::{NodeId, Topology};
use shadow_observer::dpi::{DpiConfig, DpiTap};
use shadow_observer::intercept::InterceptorTap;
use shadow_observer::policy::{ReplayPolicy, WeightedChoice};
use shadow_observer::probe::{DnsVia, ProbeOriginHost};
use shadow_packet::dns::DnsName;
use shadow_vantage::platform::Platform;
use shadow_vantage::vp::VantagePointHost;
use std::net::Ipv4Addr;

/// Constructor arguments for a destination-side shadowing sensor.
#[derive(Debug, Clone)]
pub struct SiteShadowSpec {
    pub label: String,
    pub policy: ReplayPolicy,
    pub origins: Vec<WeightedChoice<NodeId>>,
    pub zone_filter: Option<DnsName>,
    pub retention_capacity: usize,
    pub retention_ttl: SimDuration,
    pub seed: u64,
    /// `true` = SNI-only sensor ([`SiteShadow::new_tls_only`]).
    pub tls_only: bool,
}

impl SiteShadowSpec {
    fn instantiate(&self) -> SiteShadow {
        let build = if self.tls_only {
            SiteShadow::new_tls_only
        } else {
            SiteShadow::new
        };
        build(
            &self.label,
            self.policy.clone(),
            self.origins.clone(),
            self.zone_filter.clone(),
            self.retention_capacity,
            self.retention_ttl,
            self.seed,
        )
    }
}

/// Constructor arguments for one endpoint application.
#[derive(Debug, Clone)]
pub enum HostSpec {
    /// Logging honey web server in `region`.
    HoneypotWeb {
        addr: Ipv4Addr,
        region: String,
        seed: u32,
    },
    /// The experiment zone's authoritative server (DNS honeypot).
    Authority {
        addr: Ipv4Addr,
        zone: DnsName,
        web_addrs: Vec<Ipv4Addr>,
    },
    /// Pre-flight control server.
    Control { addr: Ipv4Addr },
    /// An exhibitor's probe origin.
    Origin {
        addr: Ipv4Addr,
        via: DnsVia,
        seed: u64,
    },
    /// Root/TLD stand-in.
    StaticAuthority {
        addr: Ipv4Addr,
        ns_name: String,
        mode: AuthorityMode,
    },
    /// A recursive resolver (possibly shadowing, per its profile).
    Resolver {
        addr: Ipv4Addr,
        egress: Ipv4Addr,
        profile: ResolverProfile,
        zones: Vec<(DnsName, Ipv4Addr)>,
    },
    /// A Tranco-stand-in site, optionally with a destination-side sensor.
    PlainWeb {
        addr: Ipv4Addr,
        seed: u32,
        shadow: Option<SiteShadowSpec>,
    },
    /// A vantage point.
    Vp {
        addr: Ipv4Addr,
        seed: u32,
        ttl_rewrite: Option<u8>,
    },
}

impl HostSpec {
    fn instantiate(&self) -> Box<dyn Host> {
        match self {
            HostSpec::HoneypotWeb { addr, region, seed } => {
                Box::new(WebHost::honeypot(*addr, region, *seed))
            }
            HostSpec::Authority {
                addr,
                zone,
                web_addrs,
            } => Box::new(ExperimentAuthorityHost::new(
                *addr,
                zone.clone(),
                web_addrs.clone(),
            )),
            HostSpec::Control { addr } => Box::new(ControlServerHost::new(*addr)),
            HostSpec::Origin { addr, via, seed } => {
                Box::new(ProbeOriginHost::new(*addr, *via, *seed))
            }
            HostSpec::StaticAuthority {
                addr,
                ns_name,
                mode,
            } => Box::new(StaticAuthorityHost::new(*addr, ns_name, *mode)),
            HostSpec::Resolver {
                addr,
                egress,
                profile,
                zones,
            } => Box::new(RecursiveResolverHost::new(
                *addr,
                *egress,
                profile.clone(),
                zones.clone(),
            )),
            HostSpec::PlainWeb { addr, seed, shadow } => {
                let site = WebHost::plain(*addr, *seed);
                match shadow {
                    Some(spec) => Box::new(site.with_shadow(spec.instantiate())),
                    None => Box::new(site),
                }
            }
            HostSpec::Vp {
                addr,
                seed,
                ttl_rewrite,
            } => Box::new(VantagePointHost::new(*addr, *seed, *ttl_rewrite)),
        }
    }
}

/// Constructor arguments for one wire tap. The variant sizes are lopsided
/// (a full `DpiConfig` vs one address) but the tap list is tiny and built
/// once, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum TapSpec {
    /// On-wire DPI observer.
    Dpi(DpiConfig),
    /// DNS interception middlebox answering with `redirect_to`.
    Intercept { redirect_to: Ipv4Addr },
}

impl TapSpec {
    fn instantiate(&self) -> Box<dyn WireTap> {
        match self {
            TapSpec::Dpi(config) => Box::new(DpiTap::new(config.clone())),
            TapSpec::Intercept { redirect_to } => Box::new(InterceptorTap::redirect(*redirect_to)),
        }
    }
}

/// Everything world generation decided, as immutable data. One spec can be
/// instantiated any number of times; every instantiation yields a world
/// with byte-identical ground truth and freshly-zeroed runtime state.
#[derive(Debug, Clone)]
pub struct WorldSpec {
    pub config: WorldConfig,
    pub topology: Topology,
    pub catalog: AsCatalog,
    pub geo: GeoDb,
    pub platform: Platform,
    pub zone: DnsName,
    pub auth_node: NodeId,
    pub auth_addr: Ipv4Addr,
    pub honey_web: Vec<(NodeId, Ipv4Addr, String)>,
    pub control_node: NodeId,
    pub control_addr: Ipv4Addr,
    pub dns_destinations: Vec<DeployedDnsDestination>,
    pub tranco: Vec<TrancoSite>,
    pub ground_truth: GroundTruth,
    pub hosts: Vec<(NodeId, HostSpec)>,
    pub taps: Vec<(NodeId, TapSpec)>,
}

impl WorldSpec {
    /// Materialize a runnable [`World`] from this spec.
    pub fn instantiate(&self) -> World {
        let mut engine = Engine::new(self.topology.clone());
        for (node, host) in &self.hosts {
            engine.add_host(*node, host.instantiate());
        }
        for (node, tap) in &self.taps {
            engine.add_tap(*node, tap.instantiate());
        }
        World {
            config: self.config.clone(),
            engine,
            catalog: self.catalog.clone(),
            geo: self.geo.clone(),
            platform: self.platform.clone(),
            zone: self.zone.clone(),
            auth_node: self.auth_node,
            auth_addr: self.auth_addr,
            honey_web: self.honey_web.clone(),
            control_node: self.control_node,
            control_addr: self.control_addr,
            dns_destinations: self.dns_destinations.clone(),
            tranco: self.tranco.clone(),
            ground_truth: self.ground_truth.clone(),
        }
    }
}
