//! World assembly: one long, deterministic construction pass.
//!
//! The generated world encodes the *ground truth* the paper measured:
//! which resolvers shadow (Figure 3 / Section 5.1), where on-wire DPI
//! observers sit (Tables 2–3), which destination networks shadow SNI, how
//! exhibitors probe (Figures 4–7), and which probe origins a blocklist
//! would flag. The measurement pipeline must recover all of it from
//! packets alone.

use super::spec::{HostSpec, SiteShadowSpec, TapSpec, WorldSpec};
use super::DeployedDnsDestination;
use super::{GroundTruth, TrancoSite, World, WorldConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha20Rng;
use shadow_dns::authoritative::AuthorityMode;
use shadow_dns::catalog::{pair_address, DnsDestinationKind, ShadowClass, DNS_DESTINATIONS};
use shadow_dns::profile::{ResolverProfile, ShadowingConfig};
use shadow_geo::country::{cc, country_info, COUNTRIES};
use shadow_geo::{
    AsCatalog, AsInfo, AsKind, Asn, CountryCode, GeoDb, GeoRecord, HostingLabel, Ipv4Prefix,
    PrefixAllocator, Region,
};
use shadow_netsim::time::SimDuration;
use shadow_netsim::topology::{NodeId, TopologyBuilder};
use shadow_observer::dpi::DpiConfig;
use shadow_observer::policy::{DelayBucket, ProbeKind, ReplayPolicy, WeightedChoice};
use shadow_observer::probe::DnsVia;
use shadow_packet::dns::DnsName;
use shadow_vantage::platform::{Platform, VantagePoint, VpId};
use shadow_vantage::providers::{providers_in, Market};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Synthetic ASNs for the experiment's own infrastructure.
const EXPERIMENT_AS_US: u32 = 500_001;
const EXPERIMENT_AS_DE: u32 = 500_002;
const EXPERIMENT_AS_SG: u32 = 500_003;

struct Builder {
    config: WorldConfig,
    rng: ChaCha20Rng,
    catalog: AsCatalog,
    #[allow(dead_code)]
    alloc: PrefixAllocator,
    geo: GeoDb,
    tb: TopologyBuilder,
    as_prefix: HashMap<Asn, Ipv4Prefix>,
    next_host_index: HashMap<Asn, u32>,
    hosts: Vec<(NodeId, HostSpec)>,
    taps: Vec<(NodeId, TapSpec)>,
    ground_truth: GroundTruth,
    zone: DnsName,
    /// Origin pools per exhibitor label.
    origin_pools: HashMap<String, Vec<WeightedChoice<NodeId>>>,
    /// Memo for [`Builder::as_in`]: the catalog is frozen before the
    /// builder exists, so the (country, kind) → AS choice never changes.
    /// Uncached, paper-scale recruitment re-scans the whole catalog once
    /// per VP and once per site — the dominant superlinear term in spec
    /// generation.
    as_in_cache: HashMap<(CountryCode, AsKind), Asn>,
}

impl Builder {
    fn prefix_of(&self, asn: Asn) -> Ipv4Prefix {
        *self
            .as_prefix
            .get(&asn)
            .unwrap_or_else(|| panic!("{asn} has no prefix"))
    }

    /// Next free host address inside an AS's prefix (router addresses use
    /// low indices; hosts start at 1000).
    fn next_host_addr(&mut self, asn: Asn) -> Ipv4Addr {
        let prefix = self.prefix_of(asn);
        let index = self.next_host_index.entry(asn).or_insert(1_000);
        let addr = prefix
            .host(*index)
            .unwrap_or_else(|| panic!("prefix {prefix} exhausted for {asn}"));
        *index += 1;
        addr
    }

    fn add_host_in(&mut self, asn: Asn) -> (NodeId, Ipv4Addr) {
        let addr = self.next_host_addr(asn);
        let node = self
            .tb
            .add_host(asn, addr)
            .unwrap_or_else(|e| panic!("adding host in {asn}: {e}"));
        (node, addr)
    }

    /// First AS of `kind` in `country` (deterministic), with fallbacks.
    /// Memoized — consults no RNG, so caching cannot perturb draw order.
    fn as_in(&mut self, country: CountryCode, kind: AsKind) -> Asn {
        if let Some(&hit) = self.as_in_cache.get(&(country, kind)) {
            return hit;
        }
        let pick = |k: AsKind| {
            let mut candidates: Vec<Asn> = self
                .catalog
                .in_country(country)
                .filter(|a| a.kind == k)
                .map(|a| a.asn)
                .collect();
            candidates.sort();
            candidates.first().copied()
        };
        let chosen = pick(kind)
            .or_else(|| pick(AsKind::Cloud))
            .or_else(|| pick(AsKind::IspRegional))
            .or_else(|| pick(AsKind::IspBackbone))
            .unwrap_or_else(|| panic!("no AS at all in {country}"));
        self.as_in_cache.insert((country, kind), chosen);
        chosen
    }

    /// All backbone ASes of a country, sorted (so AS4134 leads in CN).
    fn backbones_of(&self, country: CountryCode) -> Vec<Asn> {
        let mut out: Vec<Asn> = self
            .catalog
            .in_country(country)
            .filter(|a| a.kind == AsKind::IspBackbone)
            .map(|a| a.asn)
            .collect();
        out.sort();
        out
    }

    fn link_if_new(&mut self, a: Asn, b: Asn) {
        if a != b && !self.tb.has_link(a, b) {
            self.tb.link(a, b).expect("both ASes registered");
        }
    }

    /// Register a probe origin host; returns its node.
    fn add_origin(&mut self, asn: Asn, via: DnsVia, dirty: bool, seed: u64) -> NodeId {
        let (node, addr) = self.add_host_in(asn);
        self.hosts
            .push((node, HostSpec::Origin { addr, via, seed }));
        self.ground_truth.origin_addrs.push(addr);
        if dirty {
            self.ground_truth.blocklisted_addrs.insert(addr);
        }
        node
    }
}

/// Assemble a [`World`] from `config`. Deterministic in `config.seed`.
pub fn build_world(config: WorldConfig) -> World {
    generate_spec(config).instantiate()
}

/// Run the full ground-truth generation pass and record the outcome as an
/// immutable [`WorldSpec`]. All randomness happens here; instantiation is
/// a pure function of the spec, so shards share one spec safely.
pub fn generate_spec(config: WorldConfig) -> WorldSpec {
    let zone = DnsName::parse(&config.experiment_zone).expect("valid experiment zone");
    let mut catalog = AsCatalog::generate(config.seed, config.synthetic_as_density);

    // Experiment-infrastructure ASes and any destination-operator AS the
    // generated catalog lacks (root/TLD operators).
    for (asn, name, country) in [
        (EXPERIMENT_AS_US, "Experiment Hosting US", "US"),
        (EXPERIMENT_AS_DE, "Experiment Hosting DE", "DE"),
        (EXPERIMENT_AS_SG, "Experiment Hosting SG", "SG"),
    ] {
        catalog.register(AsInfo {
            asn: Asn(asn),
            name: name.to_string(),
            country: cc(country),
            kind: AsKind::Cloud,
            degree_hint: 4,
        });
    }
    for dest in DNS_DESTINATIONS {
        let asn = Asn(if dest.operator_asn == 0 {
            EXPERIMENT_AS_US
        } else {
            dest.operator_asn
        });
        if catalog.get(asn).is_none() {
            catalog.register(AsInfo {
                asn,
                name: format!("{} operator", dest.name),
                country: cc(dest.country),
                kind: AsKind::ResolverOperator,
                degree_hint: 5,
            });
        }
    }

    // --- Address plan -----------------------------------------------------
    let mut alloc = PrefixAllocator::new();
    for dest in DNS_DESTINATIONS {
        alloc.withhold(Ipv4Prefix::containing(dest.addr, 24));
    }
    let mut geo = GeoDb::new();
    let mut as_prefix = HashMap::new();
    let mut as_list: Vec<Asn> = catalog.iter().map(|a| a.asn).collect();
    as_list.sort();
    for asn in &as_list {
        let info = catalog.get(*asn).expect("listed").clone();
        let len = match info.kind {
            AsKind::IspBackbone => 14,
            AsKind::Cloud | AsKind::ResolverOperator => 16,
            _ => 17,
        };
        let prefix = alloc.alloc(len).expect("IPv4 pool large enough");
        geo.insert_for_as(prefix, &info);
        as_prefix.insert(*asn, prefix);
    }
    // Real destination addresses live in their operators' networks.
    for dest in DNS_DESTINATIONS {
        let asn = Asn(if dest.operator_asn == 0 {
            EXPERIMENT_AS_US
        } else {
            dest.operator_asn
        });
        geo.insert(GeoRecord {
            prefix: Ipv4Prefix::containing(dest.addr, 24),
            asn,
            country: cc(dest.country),
            hosting: HostingLabel::Hosting,
        });
    }
    geo.build();

    // --- Topology: ASes and routers ---------------------------------------
    let mut tb = TopologyBuilder::new(config.seed ^ 0x7090);
    for asn in &as_list {
        let info = catalog.get(*asn).expect("listed");
        let region = country_info(info.country)
            .map(|ci| ci.region)
            .unwrap_or(Region::NorthAmerica);
        tb.add_as(*asn, region);
    }
    let mut rng = ChaCha20Rng::seed_from_u64(config.seed ^ 0x0b5e_77e5);
    for asn in &as_list {
        let info = catalog.get(*asn).expect("listed").clone();
        let prefix = as_prefix[asn];
        let router_count = if info.kind == AsKind::IspBackbone {
            config.routers_per_as * 4
        } else {
            config.routers_per_as
        };
        for r in 0..router_count {
            let addr = prefix.host(r as u32 + 1).expect("router addr in prefix");
            let responds = rng.gen_range(0..100u8) < config.icmp_response_percent;
            tb.add_router(*asn, addr, responds)
                .expect("AS registered above");
        }
    }

    let mut b = Builder {
        config,
        rng,
        catalog,
        alloc,
        geo,
        tb,
        as_prefix,
        next_host_index: HashMap::new(),
        hosts: Vec::new(),
        taps: Vec::new(),
        ground_truth: GroundTruth::default(),
        zone: zone.clone(),
        origin_pools: HashMap::new(),
        as_in_cache: HashMap::new(),
    };

    link_topology(&mut b);
    let honeypots = place_honeypots(&mut b);
    place_origin_pools(&mut b, &honeypots);
    let dns_destinations = place_dns_destinations(&mut b, &honeypots);
    let tranco = place_tranco_sites(&mut b, &honeypots);
    let platform = recruit_vps(&mut b);
    place_dpi_taps(&mut b);
    place_interceptors(&mut b);

    // --- Freeze -----------------------------------------------------------
    let Builder {
        config,
        catalog,
        geo,
        tb,
        hosts,
        taps,
        mut ground_truth,
        zone,
        ..
    } = b;
    // A subset of on-wire observer routers speak BGP (the §5.2 open-port
    // finding: most observers expose nothing; port 179 leads the rest).
    let topo = tb.build().expect("world topology is well-formed");
    {
        let mut marker = ChaCha20Rng::seed_from_u64(config.seed ^ 0xb9_19);
        for (node, _) in &ground_truth.dpi_taps {
            if marker.gen_range(0..100) < 25 {
                ground_truth
                    .bgp_speaking_observers
                    .insert(topo.node(*node).addr);
            }
        }
    }
    WorldSpec {
        config,
        topology: topo,
        catalog,
        geo,
        platform,
        zone,
        auth_node: honeypots.auth_node,
        auth_addr: honeypots.auth_addr,
        honey_web: honeypots.web,
        control_node: honeypots.control_node,
        control_addr: honeypots.control_addr,
        dns_destinations,
        tranco,
        ground_truth,
        hosts,
        taps,
    }
}

/// Honeypot handles threaded through the later phases.
struct Honeypots {
    auth_node: NodeId,
    auth_addr: Ipv4Addr,
    web: Vec<(NodeId, Ipv4Addr, String)>,
    control_node: NodeId,
    control_addr: Ipv4Addr,
}

fn link_topology(b: &mut Builder) {
    // 1. Every non-backbone AS homes to backbone(s) of its country; in CN
    //    the selection is biased towards AS4134, making Chinanet the transit
    //    most CN paths cross (Table 3).
    let all: Vec<AsInfo> = b.catalog.iter().cloned().collect();
    for info in &all {
        if info.kind == AsKind::IspBackbone {
            continue;
        }
        let backbones = b.backbones_of(info.country);
        if backbones.is_empty() {
            continue;
        }
        let primary = if info.country == cc("CN") && backbones.contains(&Asn(4134)) {
            if b.rng.gen_range(0..100) < 50 {
                Asn(4134)
            } else {
                *backbones.choose(&mut b.rng).expect("non-empty")
            }
        } else {
            *backbones.choose(&mut b.rng).expect("non-empty")
        };
        b.link_if_new(info.asn, primary);
        // Clouds multi-home to a second backbone.
        if info.kind == AsKind::Cloud && backbones.len() > 1 {
            let secondary = *backbones.choose(&mut b.rng).expect("non-empty");
            b.link_if_new(info.asn, secondary);
        }
    }

    // 2. Backbones of one region form a ring plus chords.
    let regions = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::EastAsia,
        Region::SouthAsia,
        Region::SoutheastAsia,
        Region::MiddleEast,
        Region::Africa,
        Region::Oceania,
    ];
    let mut hubs: Vec<Asn> = Vec::new();
    for region in regions {
        let mut backbones: Vec<Asn> = COUNTRIES
            .iter()
            .filter(|ci| ci.region == region)
            .flat_map(|ci| b.backbones_of(ci.code))
            .collect();
        backbones.sort();
        backbones.dedup();
        if backbones.is_empty() {
            continue;
        }
        for i in 0..backbones.len() {
            let next = backbones[(i + 1) % backbones.len()];
            b.link_if_new(backbones[i], next);
            if i % 3 == 0 && backbones.len() > 4 {
                let chord = backbones[(i + backbones.len() / 2) % backbones.len()];
                b.link_if_new(backbones[i], chord);
            }
        }
        // Hub: the backbone of the region's heaviest country (CN in East
        // Asia ⇒ AS4134 by numeric order).
        let heaviest = COUNTRIES
            .iter()
            .filter(|ci| ci.region == region)
            .max_by_key(|ci| ci.weight)
            .expect("region non-empty");
        if let Some(&hub) = b.backbones_of(heaviest.code).first() {
            hubs.push(hub);
        }
    }
    // 3. Hubs mesh fully (inter-region transit).
    for i in 0..hubs.len() {
        for j in i + 1..hubs.len() {
            b.link_if_new(hubs[i], hubs[j]);
        }
    }
    // 4. Clouds get one long-haul link to a foreign hub ("strong paths to
    //    other networks"); resolver operators uplink to their own region's
    //    hub, so anycast catchments follow geography.
    let hub_of_region: HashMap<Region, Asn> = regions
        .iter()
        .filter_map(|&region| {
            let heaviest = COUNTRIES
                .iter()
                .filter(|ci| ci.region == region)
                .max_by_key(|ci| ci.weight)?;
            b.backbones_of(heaviest.code)
                .first()
                .map(|&hub| (region, hub))
        })
        .collect();
    for info in &all {
        match info.kind {
            AsKind::Cloud if !hubs.is_empty() => {
                let hub = hubs[b.rng.gen_range(0..hubs.len())];
                b.link_if_new(info.asn, hub);
            }
            AsKind::ResolverOperator => {
                let region = country_info(info.country)
                    .map(|ci| ci.region)
                    .unwrap_or(Region::NorthAmerica);
                if let Some(&hub) = hub_of_region.get(&region) {
                    b.link_if_new(info.asn, hub);
                }
            }
            _ => {}
        }
    }
    // 5. Andorra's transit detours through Chinanet, so paths to AD-hosted
    //    sites cross CN observers (the Fig-3 "AD destinations" signal).
    if b.catalog.get(Asn(4134)).is_some() {
        for asn in b.backbones_of(cc("AD")) {
            b.link_if_new(asn, Asn(4134));
        }
    }
}

fn place_honeypots(b: &mut Builder) -> Honeypots {
    let us = Asn(EXPERIMENT_AS_US);
    let de = Asn(EXPERIMENT_AS_DE);
    let sg = Asn(EXPERIMENT_AS_SG);

    let mut web = Vec::new();
    let mut web_addrs = Vec::new();
    for (asn, region, seed) in [(us, "US", 11u32), (de, "DE", 12), (sg, "SG", 13)] {
        let (node, addr) = b.add_host_in(asn);
        b.hosts.push((
            node,
            HostSpec::HoneypotWeb {
                addr,
                region: region.to_string(),
                seed,
            },
        ));
        web.push((node, addr, region.to_string()));
        web_addrs.push(addr);
    }

    let (auth_node, auth_addr) = b.add_host_in(us);
    b.hosts.push((
        auth_node,
        HostSpec::Authority {
            addr: auth_addr,
            zone: b.zone.clone(),
            web_addrs,
        },
    ));

    let (control_node, control_addr) = b.add_host_in(us);
    b.hosts
        .push((control_node, HostSpec::Control { addr: control_addr }));

    Honeypots {
        auth_node,
        auth_addr,
        web,
        control_node,
        control_addr,
    }
}

/// Create every exhibitor's probe-origin pool. Pool composition controls
/// the emergent blocklist hit rates: DNS re-queries mostly route through
/// public resolvers (clean egresses ⇒ the ~5% dirty rate of Figure 6),
/// while HTTP/TLS probes come straight from the (often dirty) origins
/// (the 45–72% rates of Section 5).
fn place_origin_pools(b: &mut Builder, honeypots: &Honeypots) {
    let google = DnsVia::Resolver(Ipv4Addr::new(8, 8, 8, 8));
    let direct = DnsVia::Authoritative(honeypots.auth_addr);
    let seed = b.config.seed;

    let cn_cloud = b.as_in(cc("CN"), AsKind::Cloud);
    let ru_cloud = b.as_in(cc("RU"), AsKind::Cloud);
    let us_cloud = b.as_in(cc("US"), AsKind::Cloud);

    let pool = |b: &mut Builder, label: &str, specs: &[(Asn, DnsVia, bool, u32)]| {
        let choices: Vec<WeightedChoice<NodeId>> = specs
            .iter()
            .enumerate()
            .map(|(i, &(asn, via, dirty, weight))| {
                let node = b.add_origin(
                    asn,
                    via,
                    dirty,
                    seed ^ ((i as u64) << 32) ^ hash_label(label),
                );
                WeightedChoice::new(node, weight)
            })
            .collect();
        b.origin_pools.insert(label.to_string(), choices);
    };

    pool(
        b,
        "Yandex",
        &[
            (Asn(13238), google, false, 40),
            (ru_cloud, google, true, 45),
            (us_cloud, direct, true, 15),
        ],
    );
    // Figure 6: 114DNS fans out to 4 ASes (ISPs and cloud platforms).
    pool(
        b,
        "114DNS",
        &[
            (Asn(4134), google, true, 30),
            (Asn(4837), direct, false, 25),
            (cn_cloud, google, true, 25),
            (Asn(45090), direct, false, 20),
        ],
    );
    pool(
        b,
        "One DNS",
        &[(cn_cloud, google, true, 60), (Asn(4837), google, false, 40)],
    );
    pool(
        b,
        "DNS PAI",
        &[(cn_cloud, google, true, 55), (Asn(4134), google, false, 45)],
    );
    pool(
        b,
        "VERCARA",
        &[
            (us_cloud, google, true, 50),
            (Asn(12222), google, false, 50),
        ],
    );
    // On-wire HTTP/TLS exhibitors (§5.2).
    pool(
        b,
        "AS4134",
        &[
            (Asn(4134), google, true, 45),
            (Asn(140292), google, true, 35),
            (cn_cloud, google, false, 20),
        ],
    );
    pool(
        b,
        "AS58563",
        &[
            (Asn(58563), google, true, 60),
            (Asn(4134), google, false, 40),
        ],
    );
    pool(b, "AS137697", &[(Asn(137697), google, true, 100)]);
    pool(
        b,
        "AS4812",
        &[(Asn(4812), google, true, 55), (cn_cloud, google, false, 45)],
    );
    pool(b, "AS23650", &[(Asn(23650), google, true, 100)]);
    // §5.2: all probes from AS40444 / AS29988 are DNS, from the same AS.
    pool(b, "AS40444", &[(Asn(40444), direct, false, 100)]);
    pool(b, "AS29988", &[(Asn(29988), direct, false, 100)]);
    // On-wire DNS observers (Table 3, DNS rows).
    pool(b, "AS203020", &[(Asn(203020), google, true, 100)]);
    pool(b, "AS4808", &[(Asn(4808), google, false, 100)]);
    pool(b, "AS21859", &[(Asn(21859), google, true, 100)]);
    // Destination-side TLS shadowing (Table 2's 65%-at-destination).
    pool(
        b,
        "tls-dst",
        &[(cn_cloud, google, true, 50), (Asn(4134), google, true, 50)],
    );
}

fn origin_pool(b: &Builder, label: &str) -> Vec<WeightedChoice<NodeId>> {
    b.origin_pools
        .get(label)
        .unwrap_or_else(|| panic!("origin pool {label} missing"))
        .clone()
}

fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Replay policies per shadow class, tuned to the paper's temporal and
/// protocol findings (Figures 4 and 5).
fn policy_for(class: ShadowClass, name: &str) -> Option<ReplayPolicy> {
    match class {
        ShadowClass::Heavy if name == "Yandex" => Some(ReplayPolicy {
            trigger_percent: 99,
            delays: vec![
                WeightedChoice::new(DelayBucket::Seconds(2, 50), 8),
                WeightedChoice::new(DelayBucket::Hours(1, 20), 22),
                WeightedChoice::new(DelayBucket::Days(1, 9), 30),
                WeightedChoice::new(DelayBucket::Days(10, 25), 40),
            ],
            protocols: vec![
                WeightedChoice::new(ProbeKind::Dns, 77),
                WeightedChoice::new(ProbeKind::Http, 14),
                WeightedChoice::new(ProbeKind::Https, 9),
            ],
            reuse: vec![
                WeightedChoice::new(2, 20),
                WeightedChoice::new(3, 35),
                WeightedChoice::new(4, 30),
                WeightedChoice::new(6, 15),
            ],
        }),
        ShadowClass::Heavy | ShadowClass::HeavyCnAnycast => Some(ReplayPolicy {
            trigger_percent: if class == ShadowClass::HeavyCnAnycast {
                92
            } else {
                88
            },
            delays: vec![
                WeightedChoice::new(DelayBucket::Seconds(2, 50), 10),
                WeightedChoice::new(DelayBucket::Hours(1, 20), 40),
                WeightedChoice::new(DelayBucket::Days(1, 12), 50),
            ],
            protocols: vec![
                WeightedChoice::new(ProbeKind::Dns, 77),
                WeightedChoice::new(ProbeKind::Http, 14),
                WeightedChoice::new(ProbeKind::Https, 9),
            ],
            reuse: vec![
                WeightedChoice::new(2, 25),
                WeightedChoice::new(3, 35),
                WeightedChoice::new(4, 30),
                WeightedChoice::new(6, 10),
            ],
        }),
        ShadowClass::Moderate => Some(ReplayPolicy {
            trigger_percent: 60,
            delays: vec![
                WeightedChoice::new(DelayBucket::Seconds(2, 50), 25),
                WeightedChoice::new(DelayBucket::Hours(1, 20), 40),
                WeightedChoice::new(DelayBucket::Days(1, 8), 35),
            ],
            protocols: vec![
                WeightedChoice::new(ProbeKind::Dns, 80),
                WeightedChoice::new(ProbeKind::Http, 12),
                WeightedChoice::new(ProbeKind::Https, 8),
            ],
            reuse: vec![WeightedChoice::new(1, 40), WeightedChoice::new(3, 60)],
        }),
        ShadowClass::Benign | ShadowClass::None => None,
    }
}

fn place_dns_destinations(b: &mut Builder, honeypots: &Honeypots) -> Vec<DeployedDnsDestination> {
    let zone_table = vec![(b.zone.clone(), honeypots.auth_addr)];
    let mut deployed = Vec::new();
    for dest in DNS_DESTINATIONS {
        let operator = Asn(if dest.operator_asn == 0 {
            EXPERIMENT_AS_US
        } else {
            dest.operator_asn
        });
        let mut nodes = Vec::new();
        match dest.kind {
            DnsDestinationKind::Root | DnsDestinationKind::Tld => {
                let node =
                    b.tb.add_host(operator, dest.addr)
                        .expect("operator AS registered");
                nodes.push(node);
                b.hosts.push((
                    node,
                    HostSpec::StaticAuthority {
                        addr: dest.addr,
                        ns_name: format!("ns.{}.example", dest.name.replace('.', "-")),
                        mode: AuthorityMode::Referral,
                    },
                ));
            }
            DnsDestinationKind::SelfBuiltResolver => {
                let node =
                    b.tb.add_host(operator, dest.addr)
                        .expect("operator AS registered");
                let egress = bump_last_octet(dest.addr, 1);
                b.tb.add_alias(node, egress).expect("node just added");
                nodes.push(node);
                b.hosts.push((
                    node,
                    HostSpec::Resolver {
                        addr: dest.addr,
                        egress,
                        profile: ResolverProfile::well_behaved(dest.name, b.config.seed ^ 0xce11),
                        zones: zone_table.clone(),
                    },
                ));
            }
            DnsDestinationKind::PublicResolver => {
                if dest.shadow_class == ShadowClass::HeavyCnAnycast {
                    // 114DNS: a clean US instance (registered first, so
                    // distance ties resolve to it) and a shadowing CN one.
                    let us_as = b.as_in(cc("US"), AsKind::Cloud);
                    let us_node =
                        b.tb.add_host(us_as, dest.addr)
                            .expect("US cloud registered");
                    let us_egress = bump_last_octet(dest.addr, 2);
                    b.tb.add_alias(us_node, us_egress).expect("node just added");
                    b.hosts.push((
                        us_node,
                        HostSpec::Resolver {
                            addr: dest.addr,
                            egress: us_egress,
                            profile: ResolverProfile::with_retries(
                                &format!("{} (US)", dest.name),
                                b.config.seed ^ 0x0011_5d05,
                            ),
                            zones: zone_table.clone(),
                        },
                    ));
                    let cn_node =
                        b.tb.add_host(operator, dest.addr)
                            .expect("operator AS registered");
                    let cn_egress = bump_last_octet(dest.addr, 1);
                    b.tb.add_alias(cn_node, cn_egress).expect("node just added");
                    let profile = ResolverProfile::shadowing(
                        &format!("{} (CN)", dest.name),
                        b.config.seed ^ u64::from(dest.operator_asn),
                        ShadowingConfig {
                            policy: policy_for(dest.shadow_class, dest.name)
                                .expect("anycast class has a policy"),
                            origins: origin_pool(b, dest.name),
                            retention_capacity: 1_000_000,
                            retention_ttl: SimDuration::from_days(20),
                        },
                    );
                    b.ground_truth
                        .shadowing_resolvers
                        .push(format!("{} (CN)", dest.name));
                    b.hosts.push((
                        cn_node,
                        HostSpec::Resolver {
                            addr: dest.addr,
                            egress: cn_egress,
                            profile,
                            zones: zone_table.clone(),
                        },
                    ));
                    nodes.push(us_node);
                    nodes.push(cn_node);
                } else {
                    let node =
                        b.tb.add_host(operator, dest.addr)
                            .expect("operator AS registered");
                    let egress = bump_last_octet(dest.addr, 1);
                    b.tb.add_alias(node, egress).expect("node just added");
                    nodes.push(node);
                    let profile = match policy_for(dest.shadow_class, dest.name) {
                        Some(policy) => {
                            b.ground_truth
                                .shadowing_resolvers
                                .push(dest.name.to_string());
                            ResolverProfile::shadowing(
                                dest.name,
                                b.config.seed ^ u64::from(dest.operator_asn),
                                ShadowingConfig {
                                    policy,
                                    origins: origin_pool(b, dest.name),
                                    retention_capacity: 1_000_000,
                                    retention_ttl: SimDuration::from_days(30),
                                },
                            )
                        }
                        None => ResolverProfile::with_retries(
                            dest.name,
                            b.config.seed ^ u64::from(dest.operator_asn),
                        ),
                    };
                    b.hosts.push((
                        node,
                        HostSpec::Resolver {
                            addr: dest.addr,
                            egress,
                            profile,
                            zones: zone_table.clone(),
                        },
                    ));
                }
            }
        }
        // Pair-resolver address: a silent host in the same /24 (queries to
        // it are blackholed unless an interceptor answers).
        let pair_addr = pair_address(dest.addr);
        b.tb.add_host(operator, pair_addr)
            .expect("operator AS registered");
        deployed.push(DeployedDnsDestination {
            dest,
            nodes,
            addr: dest.addr,
            pair_addr,
        });
    }
    deployed
}

fn bump_last_octet(addr: Ipv4Addr, by: u8) -> Ipv4Addr {
    let o = addr.octets();
    Ipv4Addr::new(o[0], o[1], o[2], o[3].wrapping_add(by))
}

fn place_tranco_sites(b: &mut Builder, _honeypots: &Honeypots) -> Vec<TrancoSite> {
    // Country palette loosely matching where top sites are hosted, with the
    // countries Figure 3 calls out (CN, AD, US, CA) well represented.
    let palette: &[(&str, u32)] = &[
        ("CN", 26),
        ("US", 22),
        ("CA", 8),
        ("AD", 7),
        ("DE", 7),
        ("GB", 6),
        ("JP", 5),
        ("FR", 4),
        ("NL", 4),
        ("SG", 3),
        ("RU", 3),
        ("BR", 3),
        ("IN", 2),
    ];
    let total: u32 = palette.iter().map(|&(_, w)| w).sum();
    let mut sites = Vec::new();
    for i in 0..b.config.tranco_sites {
        let mut pick = b.rng.gen_range(0..total);
        let mut country = cc("US");
        for &(code, weight) in palette {
            if pick < weight {
                country = cc(code);
                break;
            }
            pick -= weight;
        }
        // A couple of US sites sit behind Constant Contact so paths to them
        // cross the AS40444 observer.
        let asn = if country == cc("US") && i % 12 == 3 {
            Asn(40444)
        } else if country == cc("CA") && i % 2 == 0 {
            Asn(29988)
        } else {
            let kind = if b.rng.gen_range(0..100) < 60 {
                AsKind::Cloud
            } else {
                AsKind::Enterprise
            };
            b.as_in(country, kind)
        };
        let (node, addr) = b.add_host_in(asn);
        // A slice of CN-hosted sites shadow SNI at the destination — the
        // source of Table 2's TLS-at-destination mass.
        let shadow = if country == cc("CN") && b.rng.gen_range(0..100) < 30 {
            Some(SiteShadowSpec {
                label: "tls-dst".to_string(),
                policy: ReplayPolicy {
                    trigger_percent: 75,
                    delays: vec![
                        WeightedChoice::new(DelayBucket::Minutes(2, 50), 20),
                        WeightedChoice::new(DelayBucket::Hours(1, 20), 40),
                        WeightedChoice::new(DelayBucket::Days(1, 6), 40),
                    ],
                    protocols: vec![
                        WeightedChoice::new(ProbeKind::Dns, 40),
                        WeightedChoice::new(ProbeKind::Http, 35),
                        WeightedChoice::new(ProbeKind::Https, 25),
                    ],
                    reuse: vec![WeightedChoice::new(1, 50), WeightedChoice::new(2, 50)],
                },
                origins: origin_pool(b, "tls-dst"),
                zone_filter: Some(b.zone.clone()),
                retention_capacity: 100_000,
                retention_ttl: SimDuration::from_days(8),
                seed: b.config.seed ^ (i as u64) << 17,
                tls_only: true,
            })
        } else {
            None
        };
        b.hosts.push((
            node,
            HostSpec::PlainWeb {
                addr,
                seed: i as u32,
                shadow,
            },
        ));
        sites.push(TrancoSite {
            node,
            addr,
            country,
        });
    }
    sites
}

fn recruit_vps(b: &mut Builder) -> Platform {
    let mut vps = Vec::new();
    let mut next_id = 0u32;

    // Country palette for global VPs: everything but CN, weighted.
    let global_countries: Vec<(CountryCode, u32)> = COUNTRIES
        .iter()
        .filter(|ci| ci.code != cc("CN"))
        .map(|ci| (ci.code, ci.weight))
        .collect();
    let global_total: u32 = global_countries.iter().map(|&(_, w)| w).sum();

    let global_providers: Vec<_> = providers_in(Market::Global).collect();
    for i in 0..b.config.vps_global {
        let provider = global_providers[i % global_providers.len()];
        let mut pick = b.rng.gen_range(0..global_total);
        let mut country = cc("US");
        for &(code, weight) in &global_countries {
            if pick < weight {
                country = code;
                break;
            }
            pick -= weight;
        }
        let asn = b.as_in(country, AsKind::Cloud);
        let (node, addr) = b.add_host_in(asn);
        b.hosts.push((
            node,
            HostSpec::Vp {
                addr,
                seed: next_id.wrapping_mul(97) | 1,
                ttl_rewrite: None,
            },
        ));
        let advertised = if b.rng.gen_range(0..100) < 7 {
            // Skewed marketing location.
            cc("PA")
        } else {
            country
        };
        vps.push(VantagePoint {
            id: VpId(next_id),
            provider: provider.name,
            market: Market::Global,
            node,
            addr,
            advertised_country: advertised,
            country,
            ttl_rewrite: provider.rewrites_ttl,
            residential: provider.covertly_residential,
        });
        next_id += 1;
    }

    let cn_providers: Vec<_> = providers_in(Market::China).collect();
    // Spread CN VPs across every CN *cloud* AS (datacenter egress only,
    // per the Appendix C vetting). The candidate list is a pure catalog
    // scan — hoisted out of the loop, same list every iteration.
    let cn_clouds: Vec<Asn> = b
        .catalog
        .in_country(cc("CN"))
        .filter(|a| a.kind == AsKind::Cloud)
        .map(|a| a.asn)
        .collect();
    for i in 0..b.config.vps_cn {
        let provider = cn_providers[i % cn_providers.len()];
        let asn = if cn_clouds.is_empty() {
            b.as_in(cc("CN"), AsKind::Cloud)
        } else {
            cn_clouds[b.rng.gen_range(0..cn_clouds.len())]
        };
        let (node, addr) = b.add_host_in(asn);
        b.hosts.push((
            node,
            HostSpec::Vp {
                addr,
                seed: next_id.wrapping_mul(97) | 1,
                ttl_rewrite: None,
            },
        ));
        vps.push(VantagePoint {
            id: VpId(next_id),
            provider: provider.name,
            market: Market::China,
            node,
            addr,
            advertised_country: cc("CN"),
            country: cc("CN"),
            ttl_rewrite: provider.rewrites_ttl,
            residential: provider.covertly_residential,
        });
        next_id += 1;
    }

    let mut platform = Platform::new(vps);
    platform.vet_residential(&b.geo);
    platform
}

/// On-wire observers (Tables 2–3, §5.2): DPI taps on selected routers of
/// the observer ASes. Backbones have 3× the routers but only one tapped
/// router each, so only a fraction of paths through them are observed —
/// reproducing the <10% HTTP/TLS path ratios of Figure 3.
fn place_dpi_taps(b: &mut Builder) {
    struct DpiPlacement {
        asn: u32,
        label: &'static str,
        dns: bool,
        http: bool,
        tls: bool,
        routers_tapped: usize,
        protocols: Vec<WeightedChoice<ProbeKind>>,
        retention: SimDuration,
        trigger: u8,
    }
    // On-wire DNS observers profile traffic to the large public resolvers
    // only (destination preference, Section 4).
    let resolver_dsts: std::collections::BTreeSet<Ipv4Addr> = DNS_DESTINATIONS
        .iter()
        .filter(|d| d.kind == DnsDestinationKind::PublicResolver)
        .map(|d| d.addr)
        .collect();
    let dns_only = vec![WeightedChoice::new(ProbeKind::Dns, 1)];
    // §5.2: HTTP decoys observed in AS4134 → 66% HTTP, 17% HTTPS probes.
    let as4134_mix = vec![
        WeightedChoice::new(ProbeKind::Http, 66),
        WeightedChoice::new(ProbeKind::Https, 17),
        WeightedChoice::new(ProbeKind::Dns, 17),
    ];
    let generic_mix = vec![
        WeightedChoice::new(ProbeKind::Http, 50),
        WeightedChoice::new(ProbeKind::Dns, 30),
        WeightedChoice::new(ProbeKind::Https, 20),
    ];
    let specs = vec![
        // Chinanet backbone: the dominant HTTP observer (Table 3) plus a
        // lighter TLS tap (Table 2's on-wire TLS minority).
        DpiPlacement {
            asn: 4134,
            label: "AS4134",
            dns: false,
            http: true,
            tls: false,
            routers_tapped: 2,
            protocols: as4134_mix.clone(),
            retention: SimDuration::from_days(2),
            trigger: 85,
        },
        DpiPlacement {
            asn: 4134,
            label: "AS4134",
            dns: false,
            http: false,
            tls: true,
            routers_tapped: 1,
            protocols: as4134_mix,
            retention: SimDuration::from_days(2),
            trigger: 70,
        },
        DpiPlacement {
            asn: 58563,
            label: "AS58563",
            dns: false,
            http: true,
            tls: false,
            routers_tapped: 1,
            protocols: generic_mix.clone(),
            retention: SimDuration::from_days(1),
            trigger: 85,
        },
        DpiPlacement {
            asn: 137697,
            label: "AS137697",
            dns: false,
            http: true,
            tls: false,
            routers_tapped: 1,
            protocols: generic_mix.clone(),
            retention: SimDuration::from_days(1),
            trigger: 85,
        },
        DpiPlacement {
            asn: 4812,
            label: "AS4812",
            dns: false,
            http: false,
            tls: true,
            routers_tapped: 1,
            protocols: generic_mix.clone(),
            retention: SimDuration::from_days(2),
            trigger: 60,
        },
        DpiPlacement {
            asn: 23650,
            label: "AS23650",
            dns: false,
            http: false,
            tls: true,
            routers_tapped: 1,
            protocols: generic_mix,
            retention: SimDuration::from_days(2),
            trigger: 60,
        },
        DpiPlacement {
            asn: 40444,
            label: "AS40444",
            dns: false,
            http: true,
            tls: false,
            routers_tapped: 1,
            protocols: dns_only.clone(),
            retention: SimDuration::from_hours(18),
            trigger: 95,
        },
        DpiPlacement {
            asn: 29988,
            label: "AS29988",
            dns: false,
            http: true,
            tls: false,
            routers_tapped: 1,
            protocols: dns_only.clone(),
            retention: SimDuration::from_hours(18),
            trigger: 95,
        },
        // The on-wire *DNS* observers of Table 3: real but rare (Table 2
        // puts 99.7% of DNS shadowing at the destination), so their taps
        // fire sparsely and replay briefly.
        DpiPlacement {
            asn: 203020,
            label: "AS203020",
            dns: true,
            http: false,
            tls: false,
            routers_tapped: 1,
            protocols: dns_only.clone(),
            retention: SimDuration::from_hours(12),
            trigger: 20,
        },
        DpiPlacement {
            asn: 4808,
            label: "AS4808",
            dns: true,
            http: false,
            tls: false,
            routers_tapped: 1,
            protocols: dns_only.clone(),
            retention: SimDuration::from_hours(12),
            trigger: 15,
        },
        DpiPlacement {
            asn: 21859,
            label: "AS21859",
            dns: true,
            http: false,
            tls: false,
            routers_tapped: 1,
            protocols: dns_only,
            retention: SimDuration::from_hours(12),
            trigger: 15,
        },
    ];

    for (i, spec) in specs.into_iter().enumerate() {
        let policy = ReplayPolicy {
            trigger_percent: spec.trigger,
            delays: vec![
                WeightedChoice::new(DelayBucket::Minutes(1, 50), 30),
                WeightedChoice::new(DelayBucket::Hours(1, 16), 45),
                WeightedChoice::new(DelayBucket::Days(1, 2), 25),
            ],
            protocols: spec.protocols,
            reuse: vec![
                WeightedChoice::new(1, 50),
                WeightedChoice::new(2, 35),
                WeightedChoice::new(4, 15),
            ],
        };
        let origins = origin_pool(b, spec.label);
        // Copy out: the loop body mutates the builder while iterating.
        let routers: Vec<NodeId> = b
            .tb_routers(Asn(spec.asn))
            .iter()
            .take(spec.routers_tapped)
            .copied()
            .collect();
        for (j, router) in routers.iter().enumerate() {
            let config = DpiConfig {
                label: spec.label.to_string(),
                watch_dns: spec.dns,
                watch_http: spec.http,
                watch_tls: spec.tls,
                zone_filter: Some(b.zone.clone()),
                policy: policy.clone(),
                retention_capacity: 500_000,
                retention_ttl: spec.retention,
                dst_filter: if spec.dns {
                    Some(resolver_dsts.clone())
                } else {
                    None
                },
                origins: origins.clone(),
                seed: b.config.seed ^ ((i as u64) << 24) ^ ((j as u64) << 8),
            };
            b.taps.push((*router, TapSpec::Dpi(config)));
            b.ground_truth
                .dpi_taps
                .push((*router, spec.label.to_string()));
        }
    }
}

impl Builder {
    /// Router nodes of an AS as recorded by the topology builder.
    fn tb_routers(&self, asn: Asn) -> &[NodeId] {
        self.tb.routers_of(asn)
    }
}

fn place_interceptors(b: &mut Builder) {
    // Interception middleboxes on the edge routers of some CN cloud ASes,
    // so they actually sit on the paths of the VPs hosted there
    // (Appendix E noise).
    let cn_clouds: Vec<Asn> = b
        .catalog
        .in_country(cc("CN"))
        .filter(|a| a.kind == AsKind::Cloud && a.asn.0 >= 400_000)
        .map(|a| a.asn)
        .collect();
    for i in 0..b.config.interceptors {
        if cn_clouds.is_empty() {
            break;
        }
        let asn = cn_clouds[i % cn_clouds.len()];
        let Some(&router) = b.tb_routers(asn).first() else {
            continue;
        };
        if b.ground_truth.interceptor_nodes.contains(&router) {
            continue;
        }
        b.taps.push((
            router,
            TapSpec::Intercept {
                redirect_to: Ipv4Addr::new(127, 66, 66, 66),
            },
        ));
        b.ground_truth.interceptor_nodes.push(router);
    }
}
