//! Phase II: hop-by-hop traceroute to locate on-path observers (Figure 2).
//!
//! For each problematic path, the VP re-sends the decoy with initial TTL
//! 1..=max — each TTL gets a *fresh identifier* so the honeypots can map
//! unsolicited requests back to the exact probe. The smallest TTL whose
//! decoy triggers unsolicited requests is the observer's hop; the ICMP
//! Time Exceeded stream exposes router addresses along the way; the
//! deepest ICMP hop bounds the destination distance.

use crate::campaign::{CampaignData, CampaignRunner, PlannedSend};
use crate::correlate::{Correlator, PathKey};
use crate::decoy::{DecoyProtocol, DecoyRegistry};
use crate::sink::{CorrelationAggregates, SinkConfig};
use crate::world::World;
use serde::{Deserialize, Serialize};
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_telemetry::EventKind;
use shadow_topo::{ProbePath, RouterGraphBuilder};
use shadow_vantage::platform::VpId;
use shadow_vantage::schedule::RateLimitedScheduler;
use shadow_vantage::vp::VpCommand;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Phase II configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase2Config {
    /// Highest initial TTL swept (the paper sweeps to 64; simulated paths
    /// are shorter, so a lower cap saves decoys without losing hops).
    pub max_ttl: u8,
    /// Cap on the number of paths traced (the heaviest campaigns trace a
    /// sample; `usize::MAX` = all).
    pub max_paths: usize,
    /// Clock grace after the last probe.
    pub grace: SimDuration,
}

impl Default for Phase2Config {
    fn default() -> Self {
        Self {
            max_ttl: 32,
            max_paths: usize::MAX,
            grace: SimDuration::from_days(20),
        }
    }
}

/// Where an observer was localized on one path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracerouteResult {
    pub path: PathKey,
    /// Smallest initial TTL whose decoy triggered unsolicited requests.
    pub observer_hop: Option<u8>,
    /// Hops from the VP to the destination (deepest ICMP hop + 1, or the
    /// smallest TTL that yielded a destination response).
    pub dest_distance: Option<u8>,
    /// The paper's 1–10 normalization (10 = destination).
    pub normalized_hop: Option<u8>,
    /// Observer router address revealed by ICMP at the observer hop.
    pub observer_addr: Option<Ipv4Addr>,
    /// Every (hop, router) the sweep revealed.
    pub revealed_routers: Vec<(u8, Ipv4Addr)>,
}

/// Aggregated observer-location table (Table 2 input).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverLocation {
    /// normalized hop (1–10) → path count, per decoy protocol.
    pub by_protocol: BTreeMap<(DecoyProtocol, u8), usize>,
}

/// The complete Phase II sweep schedule (see [`crate::campaign::Phase1Plan`]
/// for the plan/execute rationale — a sharded run executes one plan slice
/// per shard, keyed by the traced path's VP).
#[derive(Debug)]
pub struct Phase2Plan {
    pub registry: DecoyRegistry,
    pub sends: Vec<PlannedSend>,
    /// The paths actually swept (post-cap), in sweep order.
    pub traced: Vec<PathKey>,
    pub last_send: SimTime,
}

/// The Phase II runner.
pub struct Phase2Runner;

impl Phase2Runner {
    /// Trace the given problematic paths. Returns per-path localization and
    /// the Phase II campaign data (new decoys + their captures), which the
    /// caller may absorb into the global data set.
    pub fn run(
        world: &mut World,
        paths: &[PathKey],
        config: &Phase2Config,
    ) -> (Vec<TracerouteResult>, CampaignData) {
        Self::run_with(world, paths, config, SinkConfig::retained())
    }

    /// [`Phase2Runner::run`] with an explicit sink configuration —
    /// [`SinkConfig::streaming`] localizes from the capture-time
    /// aggregates without ever buffering the sweep's arrivals.
    pub fn run_with(
        world: &mut World,
        paths: &[PathKey],
        config: &Phase2Config,
        sink: SinkConfig,
    ) -> (Vec<TracerouteResult>, CampaignData) {
        let plan = Self::plan(world, paths, config);
        let data = Self::execute(world, &plan, config, sink, |_| true);
        let results = Self::localize(&data, &plan.traced, config.max_ttl);
        (results, data)
    }

    /// Compute the full sweep schedule without posting anything.
    pub fn plan(world: &World, paths: &[PathKey], config: &Phase2Config) -> Phase2Plan {
        let zone = world.zone.clone();
        let mut registry = DecoyRegistry::new(zone);
        let mut scheduler = RateLimitedScheduler::paper_defaults();
        let mut sends = Vec::new();
        let start = world.engine.now() + SimDuration::from_secs(5);
        let mut last_send = start;

        let vp_index: HashMap<_, _> = world
            .platform
            .vps
            .iter()
            .map(|vp| (vp.id, (vp.node, vp.addr)))
            .collect();

        let traced: Vec<PathKey> = paths.iter().copied().take(config.max_paths).collect();
        for (sweep, key) in traced.iter().enumerate() {
            let Some(&(vp_node, vp_addr)) = vp_index.get(&key.vp) else {
                continue;
            };
            for ttl in 1..=config.max_ttl {
                let at = scheduler.reserve(start, key.vp, key.dst);
                let record = registry.register(
                    key.vp,
                    vp_addr,
                    key.dst,
                    key.protocol,
                    ttl,
                    at,
                    Some(sweep as u32),
                );
                // HTTP/TLS probes skip the handshake in Phase II (the paper
                // avoids holding destination connections open).
                let command = match key.protocol {
                    DecoyProtocol::Dns => VpCommand::DnsDecoy {
                        domain: record.domain.clone(),
                        dst: key.dst,
                        ttl,
                        retry: None,
                    },
                    DecoyProtocol::Http => VpCommand::RawHttpProbe {
                        domain: record.domain.clone(),
                        dst: key.dst,
                        ttl,
                    },
                    DecoyProtocol::Tls => VpCommand::RawTlsProbe {
                        domain: record.domain.clone(),
                        dst: key.dst,
                        ttl,
                    },
                };
                sends.push(PlannedSend {
                    at,
                    vp: key.vp,
                    node: vp_node,
                    command,
                });
                last_send = last_send.max(at);
            }
        }

        Phase2Plan {
            registry,
            sends,
            traced,
            last_send,
        }
    }

    /// Execute the slice of `plan` whose sweeping VPs satisfy `owns`, run
    /// the clock through the *global* grace window, and harvest.
    pub fn execute(
        world: &mut World,
        plan: &Phase2Plan,
        config: &Phase2Config,
        sink: SinkConfig,
        owns: impl Fn(VpId) -> bool,
    ) -> CampaignData {
        let registry = plan.registry.filter_vps(&owns);
        let shared = crate::campaign::install_sink(world, &registry, sink);
        for send in &plan.sends {
            if owns(send.vp) {
                crate::campaign::record_decoy_send(world, send);
                world
                    .engine
                    .post(send.at, send.node, Box::new(send.command.clone()));
            }
        }
        world.engine.run_until(plan.last_send + config.grace);
        let (arrivals, vp_reports) = CampaignRunner::harvest_filtered(world, &owns);
        let aggregates = crate::campaign::drain_sink(world, &shared);

        // Fold this shard's Time-Exceeded evidence into the router graph.
        // Each probe path belongs to exactly one sweeping VP, and a VP to
        // exactly one shard, so per-shard folds are disjoint and absorb
        // into the sequential run's graph exactly.
        let mut router_graph = RouterGraphBuilder::new();
        for (vp, report) in &vp_reports {
            for obs in &report.icmp {
                // The identification field maps the expired probe back to
                // its decoy (and initial TTL), mirroring localize's filter.
                if let Some(&(ref domain, ttl, dst)) = report.ident_map.get(&obs.orig_ident) {
                    if dst == obs.orig_dst && registry.lookup(domain).is_some() {
                        router_graph.observe(ProbePath { vp: vp.0, dst }, ttl, obs.router);
                    }
                }
            }
        }
        let telemetry = world.engine.telemetry();
        if let Some(m) = telemetry.metrics() {
            m.router_graph_edges.add(router_graph.observations());
        }
        let shard = telemetry.shard();
        let paths = router_graph.path_count() as u64;
        let observations = router_graph.observations();
        telemetry.event(world.engine.now().0, None, || EventKind::RouterGraphBuilt {
            shard,
            paths,
            observations,
        });

        crate::campaign::emit_phase_end(world, "phase2");
        let (metrics, journal) = crate::campaign::drain_telemetry(world);
        CampaignData {
            registry,
            arrivals,
            vp_reports,
            last_send: plan.last_send,
            metrics,
            journal,
            aggregates,
            router_graph,
        }
    }

    /// Pure localization from Phase II data (separated for testing).
    ///
    /// The smallest-triggering-TTL fold comes straight from the streamed
    /// [`CorrelationAggregates`] — the sink already tracked the per-path
    /// minimum at capture time, so no arrival buffering or re-correlation
    /// is needed. Hand-built data carrying only raw arrivals (no sink ran)
    /// falls back to the batch correlator.
    pub fn localize(data: &CampaignData, traced: &[PathKey], max_ttl: u8) -> Vec<TracerouteResult> {
        // Smallest triggering TTL per path.
        let min_trigger: HashMap<PathKey, u8> =
            if data.aggregates.classified == 0 && !data.arrivals.is_empty() {
                let correlator = Correlator::new(&data.registry);
                let correlated = correlator.correlate(&data.arrivals);
                let mut fold: HashMap<PathKey, u8> = HashMap::new();
                for req in correlated.iter().filter(|r| r.label.is_unsolicited()) {
                    let key = PathKey {
                        vp: req.decoy.vp,
                        dst: req.decoy.dst(),
                        protocol: req.decoy.protocol,
                    };
                    let ttl = req.decoy.ttl();
                    fold.entry(key)
                        .and_modify(|t| *t = (*t).min(ttl))
                        .or_insert(ttl);
                }
                fold
            } else {
                data.aggregates
                    .paths
                    .iter()
                    .map(|(key, fold)| (*key, fold.min_trigger_ttl))
                    .collect()
            };

        // ICMP evidence per (vp, dst): hop → router address; and, for DNS,
        // the smallest TTL that produced a destination answer.
        let mut results = Vec::with_capacity(traced.len());
        for key in traced {
            let report = data.vp_reports.get(&key.vp);
            let mut revealed: BTreeMap<u8, Ipv4Addr> = BTreeMap::new();
            let mut min_answer_ttl: Option<u8> = None;
            if let Some(report) = report {
                for obs in &report.icmp {
                    if obs.orig_dst != key.dst {
                        continue;
                    }
                    // The identification field maps the expired probe back
                    // to its decoy — and therefore to its initial TTL.
                    if let Some(&(ref domain, ttl, dst)) = report.ident_map.get(&obs.orig_ident) {
                        if dst == key.dst && data.registry.lookup(domain).is_some() {
                            revealed.entry(ttl).or_insert(obs.router);
                        }
                    }
                }
                for ans in &report.dns_answers {
                    if let Some(decoy) = data.registry.lookup(&ans.domain) {
                        if decoy.vp == key.vp
                            && decoy.dst() == key.dst
                            && decoy.protocol == key.protocol
                        {
                            min_answer_ttl = Some(
                                min_answer_ttl.map_or(decoy.ttl(), |t: u8| t.min(decoy.ttl())),
                            );
                        }
                    }
                }
            }

            let deepest_icmp = revealed.keys().max().copied();
            let dest_distance = match (deepest_icmp, min_answer_ttl) {
                // The first TTL that reached the destination is one past the
                // deepest expiring hop; a destination answer pins it too.
                (Some(d), Some(a)) => Some(a.min(d + 1)),
                (Some(d), None) if d < max_ttl => Some(d + 1),
                (Some(_), None) => None, // swept out before reaching it
                (None, Some(a)) => Some(a),
                (None, None) => None,
            };

            let observer_hop = min_trigger.get(key).copied();
            let normalized_hop = match (observer_hop, dest_distance) {
                (Some(hop), Some(dist)) if dist > 0 => {
                    Some((((hop as u32 * 10).div_ceil(dist as u32)) as u8).clamp(1, 10))
                }
                _ => None,
            };
            let observer_addr = observer_hop.and_then(|hop| revealed.get(&hop).copied());
            results.push(TracerouteResult {
                path: *key,
                observer_hop,
                dest_distance,
                normalized_hop,
                observer_addr,
                revealed_routers: revealed.into_iter().collect(),
            });
        }
        results
    }

    /// Build the Table-2 aggregation from per-path results.
    pub fn observer_locations(results: &[TracerouteResult]) -> ObserverLocation {
        let mut by_protocol = BTreeMap::new();
        for result in results {
            if let Some(hop) = result.normalized_hop {
                *by_protocol.entry((result.path.protocol, hop)).or_insert(0) += 1;
            }
        }
        ObserverLocation { by_protocol }
    }
}

/// Convenience: pick the Phase II input from Phase I output, capped and
/// deterministic (sorted by path key).
pub fn paths_to_trace(
    correlated: &[crate::correlate::CorrelatedRequest],
    registry: &DecoyRegistry,
    cap_per_protocol: usize,
) -> Vec<PathKey> {
    let correlator = Correlator::new(registry);
    cap_paths(
        correlator.problematic_paths(correlated).keys(),
        cap_per_protocol,
    )
}

/// [`paths_to_trace`] from streamed aggregates — identical selection (the
/// aggregate path map holds the same keys in the same `BTreeMap` order the
/// batch correlator derives), no correlated vector required.
pub fn paths_to_trace_streamed(
    aggregates: &CorrelationAggregates,
    cap_per_protocol: usize,
) -> Vec<PathKey> {
    cap_paths(aggregates.paths.keys(), cap_per_protocol)
}

fn cap_paths<'a>(keys: impl Iterator<Item = &'a PathKey>, cap_per_protocol: usize) -> Vec<PathKey> {
    let mut per_protocol: BTreeMap<DecoyProtocol, usize> = BTreeMap::new();
    let mut out = Vec::new();
    for key in keys {
        let count = per_protocol.entry(key.protocol).or_insert(0);
        if *count < cap_per_protocol {
            *count += 1;
            out.push(*key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_matches_paper_scale() {
        // hop == distance ⇒ 10 (destination); fractions round up.
        let norm = |hop: u32, dist: u32| ((hop * 10).div_ceil(dist) as u8).clamp(1, 10);
        assert_eq!(norm(8, 8), 10);
        assert_eq!(norm(4, 8), 5);
        assert_eq!(norm(1, 8), 2);
        assert_eq!(norm(1, 20), 1);
        assert_eq!(norm(5, 9), 6);
    }

    #[test]
    fn default_config_sane() {
        let config = Phase2Config::default();
        assert!(config.max_ttl >= 16);
        assert!(config.grace >= SimDuration::from_days(1));
    }
}
