//! Deterministic sharded campaign execution.
//!
//! The campaign is embarrassingly parallel across vantage points: every
//! decoy is sent by exactly one VP, and the global send schedule is a pure
//! function of the (deterministic) world. A sharded run therefore:
//!
//! 1. generates the [`WorldSpec`] once (all randomness lives there);
//! 2. partitions the VP set round-robin into `K` shards;
//! 3. instantiates one private [`World`] per shard from the shared spec —
//!    identical topology, identical exhibitor seeds, identical honeypots;
//! 4. replays the Appendix-E pre-flight in every shard (cheap, and it keeps
//!    each shard's platform vetting — and thus the global plan — identical);
//! 5. computes the *global* plan in every shard and posts only the sends
//!    owned by that shard, running the clock through the global grace
//!    window so retention-store timing matches the sequential run;
//! 6. merges shard outputs with the commutative, order-stable
//!    [`CampaignData::absorb`].
//!
//! Because exhibitor randomness is value-derived (seeded per observation
//! from the decoy domain and time, never from a shared RNG stream), a
//! shard observing only its own VPs' decoys makes the same probing
//! decisions the sequential run makes for those decoys. The one documented
//! divergence risk is retention-store *capacity* eviction (FIFO): a shard
//! sees fewer identifiers than the sequential run, so a sequential run
//! that overflows a retention store could replay a different (older)
//! subset. The shipped worlds size retention well above per-store load;
//! `tests/sharded_equivalence.rs` enforces byte-identical output.

use crate::campaign::{CampaignData, CampaignRunner, Phase1Config};
use crate::correlate::PathKey;
use crate::noise::{NoiseFilter, PreflightOutcome};
use crate::phase2::{Phase2Config, Phase2Runner, TracerouteResult};
use crate::sink::SinkConfig;
use crate::world::{World, WorldSpec};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use shadow_netsim::engine::EngineStats;
use shadow_netsim::fault::LinkConditioner;
use shadow_telemetry::{EventKind, JournalRecord, Telemetry};
use shadow_vantage::platform::VpId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// What a (sharded or sequential) run records about itself.
///
/// Telemetry is installed **after** the pre-flight replay: the Appendix-E
/// pre-flight runs identically in *every* shard, so counting it K times
/// would break the "merged world counters equal the sequential run's"
/// invariant the telemetry exists to check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryOptions {
    /// Collect metrics (counters + histograms).
    pub metrics: bool,
    /// Additionally buffer the structured event journal (implies metrics).
    pub journal: bool,
}

impl TelemetryOptions {
    /// Nothing recorded — the zero-cost default.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Metrics on; `journal` opts into the event journal too.
    pub fn enabled(journal: bool) -> Self {
        Self {
            metrics: true,
            journal,
        }
    }

    /// Build the per-shard engine handle.
    pub fn handle(&self, shard: u32) -> Telemetry {
        if self.journal {
            Telemetry::new(shard, true)
        } else if self.metrics {
            Telemetry::metrics_only(shard)
        } else {
            Telemetry::disabled()
        }
    }
}

/// Partition `vps` into `shards` round-robin sets (VP *i* goes to shard
/// `i % shards`). Deterministic in the input order; every VP lands in
/// exactly one shard. `shards` is clamped to at least 1 and at most the
/// number of VPs (empty shards are pointless but harmless — they still
/// replay the pre-flight — so we avoid creating them).
pub fn shard_vps(vps: &[VpId], shards: usize) -> Vec<BTreeSet<VpId>> {
    let k = shards.clamp(1, vps.len().max(1));
    let mut out = vec![BTreeSet::new(); k];
    for (i, vp) in vps.iter().enumerate() {
        out[i % k].insert(*vp);
    }
    out
}

/// The set of VPs that actually execute under an optional bound: the
/// first `limit` VPs in platform order, or `None` (everyone) when
/// unbounded. A `Some` set composes with shard ownership by intersection.
fn executing_vps(vp_ids: &[VpId], limit: Option<usize>) -> Option<BTreeSet<VpId>> {
    limit.map(|n| vp_ids.iter().take(n).copied().collect())
}

/// Everything a sharded Phase I produces: the merged campaign data plus
/// the per-shard worlds kept alive for Phase II continuation.
pub struct ShardedPhase1 {
    /// Pre-flight outcome (identical in every shard; shard 0's copy).
    pub preflight: PreflightOutcome,
    /// Merged Phase I data, absorbed in shard order.
    pub data: CampaignData,
    /// Per-shard worlds, post Phase I. Shard 0's world doubles as the
    /// analysis world (its platform vetting matches the sequential run).
    pub worlds: Vec<World>,
    /// The VP partition, by shard index.
    pub assignment: Vec<BTreeSet<VpId>>,
    /// Engine statistics summed across shards.
    pub stats: EngineStats,
}

/// Run Phase I across `shards` worker threads, one private world per
/// shard, and merge the results. With `shards == 1` this is the
/// sequential pipeline modulo thread spawn.
pub fn run_phase1_sharded(spec: &WorldSpec, config: &Phase1Config, shards: usize) -> ShardedPhase1 {
    run_phase1_sharded_with(spec, config, shards, TelemetryOptions::disabled())
}

/// [`run_phase1_sharded`] with per-shard telemetry. Each shard's engine
/// gets its own handle (installed after the pre-flight replay); snapshots
/// and journals ride back inside each shard's [`CampaignData`] and merge
/// in [`CampaignData::absorb`].
pub fn run_phase1_sharded_with(
    spec: &WorldSpec,
    config: &Phase1Config,
    shards: usize,
    telemetry: TelemetryOptions,
) -> ShardedPhase1 {
    run_phase1_sharded_conditioned(spec, config, shards, telemetry, None)
}

/// [`run_phase1_sharded_with`] under an optional fault conditioner. Every
/// shard installs the *same* conditioner (its decisions are value-derived
/// from packet bytes, so shards seeing disjoint traffic subsets still
/// agree with the sequential run packet-for-packet). Installed after the
/// pre-flight replay, alongside telemetry: the Appendix-E pre-flight vets
/// the platform on a healthy network in every shard, keeping the global
/// plan identical across shard counts even under faults.
pub fn run_phase1_sharded_conditioned(
    spec: &WorldSpec,
    config: &Phase1Config,
    shards: usize,
    telemetry: TelemetryOptions,
    conditioner: Option<Arc<LinkConditioner>>,
) -> ShardedPhase1 {
    run_phase1_sharded_sink(
        spec,
        config,
        shards,
        telemetry,
        conditioner,
        SinkConfig::retained(),
    )
}

/// [`run_phase1_sharded_conditioned`] with an explicit sink configuration.
/// Each shard installs its own [`crate::sink::CorrelationSink`] over the
/// registry slice it owns; per-shard aggregates merge commutatively in
/// [`CampaignData::absorb`]. With [`SinkConfig::streaming`] no shard ever
/// buffers its arrival vector.
pub fn run_phase1_sharded_sink(
    spec: &WorldSpec,
    config: &Phase1Config,
    shards: usize,
    telemetry: TelemetryOptions,
    conditioner: Option<Arc<LinkConditioner>>,
    sink: SinkConfig,
) -> ShardedPhase1 {
    run_phase1_sharded_bounded(spec, config, shards, telemetry, conditioner, sink, None)
}

/// [`run_phase1_sharded_sink`] with an optional execution bound: when
/// `vp_limit` is `Some(n)`, only the first `n` VPs (in platform order)
/// post their sends. World construction, pre-flight replay and plan
/// compilation still run at full scale — the bound trims the measured
/// slice, not the fixed per-shard setup cost, which is exactly what the
/// scale bench wants to expose. Unbounded callers are unaffected.
#[allow(clippy::too_many_arguments)]
pub fn run_phase1_sharded_bounded(
    spec: &WorldSpec,
    config: &Phase1Config,
    shards: usize,
    telemetry: TelemetryOptions,
    conditioner: Option<Arc<LinkConditioner>>,
    sink: SinkConfig,
    vp_limit: Option<usize>,
) -> ShardedPhase1 {
    let vp_ids: Vec<VpId> = spec.platform.vps.iter().map(|vp| vp.id).collect();
    let allowed = executing_vps(&vp_ids, vp_limit);
    let allowed = &allowed;
    let assignment = shard_vps(&vp_ids, shards);

    // Scoped threads: every shard borrows the shared spec; all joins
    // happen before `scope` returns, in shard order, so the merge below
    // is deterministic regardless of completion order.
    let shard_outputs: Vec<(World, PreflightOutcome, CampaignData)> =
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = assignment
                .iter()
                .enumerate()
                .map(|(shard_idx, owned)| {
                    let conditioner = conditioner.clone();
                    s.spawn(move || {
                        let started = std::time::Instant::now();
                        let mut world = spec.instantiate();
                        let preflight = NoiseFilter::run_and_apply(&mut world);
                        world
                            .engine
                            .set_telemetry(telemetry.handle(shard_idx as u32));
                        world.engine.set_conditioner(conditioner);
                        let plan = CampaignRunner::plan_phase1(&world, config);
                        let mut data =
                            CampaignRunner::execute_phase1(&mut world, &plan, config, sink, |vp| {
                                owned.contains(&vp)
                                    && allowed.as_ref().is_none_or(|a| a.contains(&vp))
                            });
                        record_phase_wall(&mut data, "phase1", started);
                        (world, preflight, data)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });

    merge_shards(shard_outputs, assignment)
}

/// Execution shape for the work-stealing scheduler: how many path chunks
/// the VP set splits into and how many OS workers drain them.
///
/// Chunks are the unit of stealing — more chunks means better balancing on
/// skewed worlds (a VP whose paths trigger heavy probe replay no longer
/// pins its whole fixed shard to one thread) at the cost of one world
/// instantiation + pre-flight replay per chunk. The defaults oversubscribe
/// 2× so an unlucky worker always has something to steal, except at
/// `workers == 1` where splitting only adds instantiation overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealConfig {
    /// Number of path-chunk work units (clamped to `[1, #VPs]`).
    pub chunks: usize,
    /// Number of worker threads (clamped to `[1, chunks]`).
    pub workers: usize,
}

impl StealConfig {
    /// Scale to the machine: one worker per available core, 2× chunk
    /// oversubscription (collapsing to a single chunk on one core).
    pub fn auto() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_workers(workers)
    }

    /// A fixed worker count with the default 2× chunk oversubscription.
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            chunks: if workers == 1 { 1 } else { workers * 2 },
            workers,
        }
    }

    /// Override the chunk count (builder style).
    pub fn with_chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks.max(1);
        self
    }
}

/// Pop the next chunk index: own deque first, then steal from peers.
/// Returns `None` only once every deque is empty — no new work units are
/// ever produced mid-run, so an `Empty` sweep (with `Retry` re-polled) is
/// a safe termination condition.
fn next_chunk(local: &Worker<usize>, me: usize, stealers: &[Stealer<usize>]) -> Option<usize> {
    if let Some(chunk) = local.pop() {
        return Some(chunk);
    }
    loop {
        let mut contended = false;
        for (peer, stealer) in stealers.iter().enumerate() {
            if peer == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(chunk) => return Some(chunk),
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
    }
}

/// Phase I under the work-stealing scheduler: the VP set splits into
/// [`StealConfig::chunks`] round-robin path chunks, seeded across
/// per-worker deques; idle workers steal chunks from their peers, so a
/// skewed world (one chunk's VPs triggering heavy exhibitor replay) keeps
/// every core busy instead of serializing on the slowest fixed shard.
///
/// Two structural differences from the fixed-shape
/// [`run_phase1_sharded_sink`], both invisible in the output:
///
/// * the global plan is computed **once** on a scout world and shared
///   read-only (`Arc`) with every chunk — the plan is a pure function of
///   the post-pre-flight world, so replanning per chunk was pure overhead
///   (and the dominant serial tail at paper scale);
/// * chunk→thread placement is nondeterministic (stealing), but each chunk
///   runs in its own private world keyed by chunk index and the merge
///   folds in chunk-index order, so output is byte-identical to the
///   sequential run for any `(chunks, workers)` — the same guarantee the
///   fixed path gives, enforced by `tests/sharded_equivalence.rs`.
///
/// The scout world is not wasted: worker 0 uses it (post-pre-flight,
/// pre-telemetry) for the first chunk it claims, so `chunks == 1` costs
/// exactly one instantiation, like the sequential pipeline.
pub fn run_phase1_work_stealing(
    spec: &WorldSpec,
    config: &Phase1Config,
    steal: StealConfig,
    telemetry: TelemetryOptions,
    conditioner: Option<Arc<LinkConditioner>>,
    sink: SinkConfig,
) -> ShardedPhase1 {
    run_phase1_work_stealing_bounded(spec, config, steal, telemetry, conditioner, sink, None)
}

/// [`run_phase1_work_stealing`] with the same optional execution bound as
/// [`run_phase1_sharded_bounded`]: `vp_limit` trims which VPs post sends
/// while the scout world, pre-flight replay and shared plan stay at full
/// scale.
#[allow(clippy::too_many_arguments)]
pub fn run_phase1_work_stealing_bounded(
    spec: &WorldSpec,
    config: &Phase1Config,
    steal: StealConfig,
    telemetry: TelemetryOptions,
    conditioner: Option<Arc<LinkConditioner>>,
    sink: SinkConfig,
    vp_limit: Option<usize>,
) -> ShardedPhase1 {
    let vp_ids: Vec<VpId> = spec.platform.vps.iter().map(|vp| vp.id).collect();
    let allowed = executing_vps(&vp_ids, vp_limit);
    let allowed = &allowed;
    let chunks = steal.chunks.clamp(1, vp_ids.len().max(1));
    let workers = steal.workers.clamp(1, chunks);
    let assignment = shard_vps(&vp_ids, chunks);

    // Scout: pay one instantiation + pre-flight up front to compute the
    // global plan every chunk shares.
    let mut scout = spec.instantiate();
    let scout_preflight = NoiseFilter::run_and_apply(&mut scout);
    let plan = Arc::new(CampaignRunner::plan_phase1(&scout, config));
    let mut scout_slot = Some((scout, scout_preflight));

    let locals: Vec<Worker<usize>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<usize>> = locals.iter().map(|w| w.stealer()).collect();
    for chunk in 0..chunks {
        locals[chunk % workers].push(chunk);
    }

    let mut chunk_outputs: Vec<(usize, (World, PreflightOutcome, CampaignData))> =
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = locals
                .into_iter()
                .enumerate()
                .map(|(me, local)| {
                    let stealers = &stealers;
                    let assignment = &assignment;
                    let plan = Arc::clone(&plan);
                    let conditioner = conditioner.clone();
                    // Worker 0 recycles the scout world for its first chunk.
                    let mut spare = if me == 0 { scout_slot.take() } else { None };
                    s.spawn(move || {
                        let mut done = Vec::new();
                        while let Some(chunk) = next_chunk(&local, me, stealers) {
                            let started = std::time::Instant::now();
                            let (mut world, preflight) = match spare.take() {
                                Some(ready) => ready,
                                None => {
                                    let mut world = spec.instantiate();
                                    let preflight = NoiseFilter::run_and_apply(&mut world);
                                    (world, preflight)
                                }
                            };
                            world.engine.set_telemetry(telemetry.handle(chunk as u32));
                            world.engine.set_conditioner(conditioner.clone());
                            let owned = &assignment[chunk];
                            let mut data = CampaignRunner::execute_phase1(
                                &mut world,
                                &plan,
                                config,
                                sink,
                                |vp| {
                                    owned.contains(&vp)
                                        && allowed.as_ref().is_none_or(|a| a.contains(&vp))
                                },
                            );
                            record_phase_wall(&mut data, "phase1", started);
                            done.push((chunk, (world, preflight, data)));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("steal worker panicked"))
                .collect()
        });

    // Completion order is schedule-dependent; the merge order is not.
    chunk_outputs.sort_by_key(|(chunk, _)| *chunk);
    merge_shards(
        chunk_outputs.into_iter().map(|(_, out)| out).collect(),
        assignment,
    )
}

/// Phase II under the work-stealing scheduler, over the chunk worlds kept
/// from [`run_phase1_work_stealing`]. The sweep plan is computed once on
/// chunk 0's world and shared; workers steal `(chunk, world)` pairs from a
/// global injector until the queue drains. Byte-identical to
/// [`run_phase2_sharded_sink`] for the same assignment.
pub fn run_phase2_work_stealing(
    worlds: &mut [World],
    assignment: &[BTreeSet<VpId>],
    paths: &[PathKey],
    config: &Phase2Config,
    workers: usize,
    sink: SinkConfig,
) -> (Vec<TracerouteResult>, CampaignData) {
    assert_eq!(
        worlds.len(),
        assignment.len(),
        "one world per chunk, in chunk order"
    );
    let plan = Arc::new(Phase2Runner::plan(&worlds[0], paths, config));
    let workers = workers.clamp(1, worlds.len().max(1));

    let queue: Injector<(usize, &mut World)> = Injector::new();
    for (chunk, world) in worlds.iter_mut().enumerate() {
        queue.push((chunk, world));
    }

    let mut chunk_outputs: Vec<(usize, CampaignData)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let queue = &queue;
                let plan = Arc::clone(&plan);
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        match queue.steal() {
                            Steal::Success((chunk, world)) => {
                                let started = std::time::Instant::now();
                                let owned = &assignment[chunk];
                                let mut data =
                                    Phase2Runner::execute(world, &plan, config, sink, |vp| {
                                        owned.contains(&vp)
                                    });
                                record_phase_wall(&mut data, "phase2", started);
                                done.push((chunk, data));
                            }
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("steal worker panicked"))
            .collect()
    });

    chunk_outputs.sort_by_key(|(chunk, _)| *chunk);
    let mut merged: Option<CampaignData> = None;
    for (_, data) in chunk_outputs {
        match &mut merged {
            None => merged = Some(data),
            Some(acc) => acc.absorb(data),
        }
    }
    let mut merged = merged.expect("at least one chunk");
    shadow_telemetry::sort_records(&mut merged.journal);
    let results = Phase2Runner::localize(&merged, &plan.traced, config.max_ttl);
    (results, merged)
}

/// Fold a shard's wall-clock into its already-taken snapshot. The snapshot
/// is taken inside the phase runner (before the full phase duration is
/// known), so the elapsed time is added to the frozen side here.
fn record_phase_wall(data: &mut CampaignData, phase: &str, started: std::time::Instant) {
    if data.metrics.is_empty() && data.journal.is_empty() {
        return;
    }
    let ns = started.elapsed().as_nanos() as u64;
    *data
        .metrics
        .run
        .phase_wall_ns
        .entry(phase.to_string())
        .or_insert(0) += ns;
}

fn merge_shards(
    shard_outputs: Vec<(World, PreflightOutcome, CampaignData)>,
    assignment: Vec<BTreeSet<VpId>>,
) -> ShardedPhase1 {
    let mut worlds = Vec::with_capacity(shard_outputs.len());
    let mut preflight = None;
    let mut data: Option<CampaignData> = None;
    let mut stats = EngineStats::default();
    for (shard_idx, (world, shard_preflight, mut shard_data)) in
        shard_outputs.into_iter().enumerate()
    {
        stats.absorb(world.engine.stats());
        if preflight.is_none() {
            preflight = Some(shard_preflight);
        }
        // Journaling runs get an audit marker per absorbed shard (meta —
        // diffs skip it, so shard counts stay comparable).
        if !shard_data.journal.is_empty() {
            shard_data.journal.push(JournalRecord {
                at_ms: shard_data.last_send.0,
                shard: shard_idx as u32,
                node: None,
                seq: u64::MAX,
                event: EventKind::ShardMerged {
                    shard: shard_idx as u32,
                    arrivals: shard_data.arrivals.len() as u64,
                    decoys: shard_data.registry.len() as u64,
                },
            });
        }
        match &mut data {
            None => data = Some(shard_data),
            Some(merged) => merged.absorb(shard_data),
        }
        worlds.push(world);
    }
    let mut data = data.expect("at least one shard");
    shadow_telemetry::sort_records(&mut data.journal);
    ShardedPhase1 {
        preflight: preflight.expect("at least one shard"),
        data,
        worlds,
        assignment,
        stats,
    }
}

/// Run Phase II across the shard worlds kept from Phase I: each shard
/// sweeps the traced paths whose triggering VP it owns. Returns merged
/// localization results and the merged Phase II campaign data.
pub fn run_phase2_sharded(
    worlds: &mut [World],
    assignment: &[BTreeSet<VpId>],
    paths: &[PathKey],
    config: &Phase2Config,
) -> (Vec<TracerouteResult>, CampaignData) {
    run_phase2_sharded_sink(worlds, assignment, paths, config, SinkConfig::retained())
}

/// [`run_phase2_sharded`] with an explicit sink configuration. Observer
/// localization reads the merged aggregates' smallest-triggering-TTL fold,
/// so [`SinkConfig::streaming`] sweeps never buffer arrivals either.
pub fn run_phase2_sharded_sink(
    worlds: &mut [World],
    assignment: &[BTreeSet<VpId>],
    paths: &[PathKey],
    config: &Phase2Config,
    sink: SinkConfig,
) -> (Vec<TracerouteResult>, CampaignData) {
    assert_eq!(
        worlds.len(),
        assignment.len(),
        "one world per shard, in shard order"
    );
    let mut shard_outputs: Vec<(Vec<PathKey>, CampaignData)> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = worlds
            .iter_mut()
            .zip(assignment.iter())
            .map(|(world, owned)| {
                s.spawn(move || {
                    let started = std::time::Instant::now();
                    let plan = Phase2Runner::plan(world, paths, config);
                    let mut data =
                        Phase2Runner::execute(world, &plan, config, sink, |vp| owned.contains(&vp));
                    record_phase_wall(&mut data, "phase2", started);
                    (plan.traced, data)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Every shard computed the same plan; shard 0's traced list is the
    // global sweep order for localization.
    let (traced, mut merged) = shard_outputs.remove(0);
    for (_, data) in shard_outputs {
        merged.absorb(data);
    }
    shadow_telemetry::sort_records(&mut merged.journal);
    let results = Phase2Runner::localize(&merged, &traced, config.max_ttl);
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<VpId> {
        raw.iter().map(|&i| VpId(i)).collect()
    }

    #[test]
    fn round_robin_covers_every_vp_exactly_once() {
        let vps = ids(&[0, 1, 2, 3, 4, 5, 6]);
        let shards = shard_vps(&vps, 3);
        assert_eq!(shards.len(), 3);
        let mut seen = BTreeSet::new();
        for shard in &shards {
            for vp in shard {
                assert!(seen.insert(*vp), "{vp:?} assigned twice");
            }
        }
        assert_eq!(seen.len(), vps.len());
        // Round-robin balance: sizes differ by at most one.
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
    }

    #[test]
    fn shard_count_is_clamped() {
        let vps = ids(&[0, 1]);
        assert_eq!(shard_vps(&vps, 0).len(), 1);
        assert_eq!(shard_vps(&vps, 100).len(), 2);
        assert_eq!(shard_vps(&[], 5).len(), 1);
    }
}
