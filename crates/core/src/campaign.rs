//! Phase I: spread decoys from every vantage point to every destination,
//! run the simulated clock forward, and harvest honeypot captures.

use crate::decoy::{DecoyProtocol, DecoyRegistry};
use crate::sink::{CorrelationAggregates, CorrelationSink, SinkConfig};
use crate::world::World;
use serde::{Deserialize, Serialize};
use shadow_honeypot::authority::ExperimentAuthorityHost;
use shadow_honeypot::capture::{Arrival, CaptureLog};
use shadow_honeypot::web::WebHost;
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_netsim::topology::NodeId;
use shadow_telemetry::{sort_records, EventKind, JournalRecord, MetricsSnapshot};
use shadow_topo::RouterGraphBuilder;
use shadow_vantage::platform::VpId;
use shadow_vantage::schedule::RateLimitedScheduler;
use shadow_vantage::vp::{DnsRetry, VantagePointHost, VpCommand, VpReport};
use std::collections::HashMap;

/// Phase I configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase1Config {
    pub send_dns: bool,
    pub send_http: bool,
    pub send_tls: bool,
    /// §6 ablation: send DNS decoys over the encrypted channel instead of
    /// clear-text UDP/53 (on-path observers go blind; the terminating
    /// resolver still sees everything).
    pub encrypted_dns: bool,
    /// §6 ablation: send TLS decoys with Encrypted Client Hello instead of
    /// clear-text SNI.
    pub ech_tls: bool,
    /// Full passes over (VP × destination); the paper round-robins
    /// "continuously ... without stop" for two months.
    pub rounds: usize,
    /// Gap between rounds.
    pub round_gap: SimDuration,
    /// How long to keep the clock running after the last send, so that
    /// days-later probes still land (Figure 4's ≥10-day tail).
    pub grace: SimDuration,
    /// Retry policy for clear-text DNS decoys (None = one-shot). Installed
    /// by fault-injection studies: on a lossy network, retried DNS decoys
    /// keep the DNS detection path alive while one-shot HTTP/TLS decoys
    /// fade. Fault-free runs are unaffected — answers always arrive before
    /// the timeout, so no retransmission ever fires.
    pub dns_retry: Option<DnsRetry>,
}

impl Default for Phase1Config {
    fn default() -> Self {
        Self {
            send_dns: true,
            send_http: true,
            send_tls: true,
            encrypted_dns: false,
            ech_tls: false,
            rounds: 1,
            round_gap: SimDuration::from_hours(12),
            grace: SimDuration::from_days(30),
            dns_retry: None,
        }
    }
}

/// Everything Phase I produced: the decoy registry, every capture, and the
/// per-VP reports.
#[derive(Debug, Clone, Default)]
pub struct CampaignData {
    pub registry: DecoyRegistry,
    /// Raw arrivals — populated only when the phase ran with
    /// [`SinkConfig::retain_arrivals`]; the streaming default leaves this
    /// empty and [`CampaignData::aggregates`] carries the analysis state.
    pub arrivals: Vec<Arrival>,
    pub vp_reports: HashMap<VpId, VpReport>,
    /// When the last decoy left a VP.
    pub last_send: SimTime,
    /// Telemetry snapshot for this phase/shard (empty when disabled).
    pub metrics: MetricsSnapshot,
    /// Journal records for this phase/shard (empty unless journaling).
    pub journal: Vec<JournalRecord>,
    /// Streamed correlation aggregates folded at capture time.
    pub aggregates: CorrelationAggregates,
    /// Router-graph fold from Phase II Time-Exceeded evidence (empty for
    /// Phase I). Per-shard folds are disjoint by probe path, so absorbing
    /// them reconstructs the sequential run's graph exactly.
    pub router_graph: RouterGraphBuilder,
}

impl CampaignData {
    /// Absorb another phase's (or shard's) data. Commutative up to the
    /// canonical orders the consumers see: arrivals are re-sorted into the
    /// total [`Arrival::sort_key`] order after every merge, so the result
    /// is independent of absorb order (e.g. worker-thread completion
    /// order). Registries must be disjoint or identical per domain.
    pub fn absorb(&mut self, other: CampaignData) {
        self.registry.absorb(other.registry);
        self.arrivals.extend(other.arrivals);
        self.arrivals
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        for (vp, report) in other.vp_reports {
            self.vp_reports.insert(vp, report);
        }
        self.last_send = self.last_send.max(other.last_send);
        self.metrics.merge(&other.metrics);
        if !other.journal.is_empty() {
            self.journal.extend(other.journal);
            sort_records(&mut self.journal);
        }
        self.aggregates.absorb(other.aggregates);
        self.router_graph.absorb(other.router_graph);
    }
}

/// One scheduled decoy send: post `command` to `node` (VP `vp`) at `at`.
#[derive(Debug, Clone)]
pub struct PlannedSend {
    pub at: SimTime,
    pub vp: VpId,
    pub node: NodeId,
    pub command: VpCommand,
}

/// The complete Phase I send schedule, computed without touching the
/// engine. Planning is a pure function of the world's ground truth
/// (VP roster, destination lists, clock), so every shard of a sharded run
/// can reproduce the identical global plan and then execute only the
/// slice it owns.
#[derive(Debug)]
pub struct Phase1Plan {
    pub registry: DecoyRegistry,
    pub sends: Vec<PlannedSend>,
    /// When the last decoy leaves a VP — global across all shards.
    pub last_send: SimTime,
}

/// The campaign runner.
pub struct CampaignRunner;

impl CampaignRunner {
    /// Run Phase I on `world` and harvest captures. Keeps the raw arrival
    /// vector alongside the streamed aggregates (the legacy contract most
    /// direct callers expect); use [`CampaignRunner::run_phase1_with`] with
    /// [`SinkConfig::streaming`] to drop the buffering.
    pub fn run_phase1(world: &mut World, config: &Phase1Config) -> CampaignData {
        Self::run_phase1_with(world, config, SinkConfig::retained())
    }

    /// [`CampaignRunner::run_phase1`] with an explicit sink configuration.
    pub fn run_phase1_with(
        world: &mut World,
        config: &Phase1Config,
        sink: SinkConfig,
    ) -> CampaignData {
        let plan = Self::plan_phase1(world, config);
        Self::execute_phase1(world, &plan, config, sink, |_| true)
    }

    /// Compute the full Phase I schedule without posting anything.
    pub fn plan_phase1(world: &World, config: &Phase1Config) -> Phase1Plan {
        let zone = world.zone.clone();
        let mut registry = DecoyRegistry::new(zone);
        let mut scheduler = RateLimitedScheduler::paper_defaults();
        let mut last_send = world.engine.now();
        let start0 = world.engine.now() + SimDuration::from_secs(5);

        let dns_targets: Vec<_> = world.dns_destinations.iter().map(|d| d.addr).collect();
        let web_targets: Vec<_> = world.tranco.iter().map(|s| s.addr).collect();
        let vps: Vec<_> = world
            .platform
            .vps
            .iter()
            .map(|vp| (vp.id, vp.node, vp.addr))
            .collect();

        // The send count is exact up front; pre-sizing matters at paper
        // scale, where the plan holds ~20M registry entries and growing
        // the map by doubling would re-insert every one of them.
        let per_vp = if config.send_dns {
            dns_targets.len()
        } else {
            0
        } + web_targets.len()
            * (usize::from(config.send_http) + usize::from(config.send_tls));
        let expected = vps.len() * per_vp * config.rounds;
        registry.reserve(expected);
        let mut sends = Vec::with_capacity(expected);

        for round in 0..config.rounds {
            let round_start = start0 + config.round_gap.saturating_mul(round as u64);
            for &(vp_id, vp_node, vp_addr) in &vps {
                if config.send_dns {
                    for &dst in &dns_targets {
                        let at = scheduler.reserve(round_start, vp_id, dst);
                        let record = registry.register(
                            vp_id,
                            vp_addr,
                            dst,
                            DecoyProtocol::Dns,
                            64,
                            at,
                            None,
                        );
                        let command = if config.encrypted_dns {
                            VpCommand::EncryptedDnsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }
                        } else {
                            VpCommand::DnsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                                retry: config.dns_retry,
                            }
                        };
                        sends.push(PlannedSend {
                            at,
                            vp: vp_id,
                            node: vp_node,
                            command,
                        });
                        last_send = last_send.max(at);
                    }
                }
                for &dst in &web_targets {
                    if config.send_http {
                        let at = scheduler.reserve(round_start, vp_id, dst);
                        let record = registry.register(
                            vp_id,
                            vp_addr,
                            dst,
                            DecoyProtocol::Http,
                            64,
                            at,
                            None,
                        );
                        sends.push(PlannedSend {
                            at,
                            vp: vp_id,
                            node: vp_node,
                            command: VpCommand::HttpDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            },
                        });
                        last_send = last_send.max(at);
                    }
                    if config.send_tls {
                        let at = scheduler.reserve(round_start, vp_id, dst);
                        let record = registry.register(
                            vp_id,
                            vp_addr,
                            dst,
                            DecoyProtocol::Tls,
                            64,
                            at,
                            None,
                        );
                        let command = if config.ech_tls {
                            VpCommand::EchTlsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }
                        } else {
                            VpCommand::TlsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }
                        };
                        sends.push(PlannedSend {
                            at,
                            vp: vp_id,
                            node: vp_node,
                            command,
                        });
                        last_send = last_send.max(at);
                    }
                }
            }
        }

        Phase1Plan {
            registry,
            sends,
            last_send,
        }
    }

    /// Execute the slice of `plan` whose VPs satisfy `owns`, run the clock
    /// through the *global* grace window, and harvest. With `owns = |_|
    /// true` this is exactly the sequential Phase I; a sharded run calls
    /// it once per shard with disjoint ownership predicates and absorbs
    /// the results.
    pub fn execute_phase1(
        world: &mut World,
        plan: &Phase1Plan,
        config: &Phase1Config,
        sink: SinkConfig,
        owns: impl Fn(VpId) -> bool,
    ) -> CampaignData {
        let registry = plan.registry.filter_vps(&owns);
        let shared = install_sink(world, &registry, sink);
        for send in &plan.sends {
            if owns(send.vp) {
                record_decoy_send(world, send);
                world
                    .engine
                    .post(send.at, send.node, Box::new(send.command.clone()));
            }
        }
        world.engine.run_until(plan.last_send + config.grace);
        let (arrivals, vp_reports) = Self::harvest_filtered(world, &owns);
        let aggregates = drain_sink(world, &shared);
        emit_phase_end(world, "phase1");
        let (metrics, journal) = drain_telemetry(world);
        CampaignData {
            registry,
            arrivals,
            vp_reports,
            last_send: plan.last_send,
            metrics,
            journal,
            aggregates,
            router_graph: RouterGraphBuilder::new(),
        }
    }

    /// Drain capture logs from the authoritative honeypot and the honey
    /// web servers, and snapshot VP reports. Draining means each phase
    /// sees only its own captures.
    pub fn harvest(world: &mut World) -> (Vec<Arrival>, HashMap<VpId, VpReport>) {
        Self::harvest_filtered(world, |_| true)
    }

    /// Like [`CampaignRunner::harvest`], but only snapshot reports for VPs
    /// satisfying `owns` (a shard reports only the VPs it drove; the
    /// others sat idle in its copy of the world).
    pub fn harvest_filtered(
        world: &mut World,
        owns: impl Fn(VpId) -> bool,
    ) -> (Vec<Arrival>, HashMap<VpId, VpReport>) {
        let mut logs: Vec<CaptureLog> = Vec::new();
        let auth_node = world.auth_node;
        if let Some(auth) = world
            .engine
            .host_as_mut::<ExperimentAuthorityHost>(auth_node)
        {
            logs.push(std::mem::take(&mut auth.captures));
        }
        let web_nodes: Vec<_> = world.honey_web.iter().map(|&(node, _, _)| node).collect();
        for node in web_nodes {
            if let Some(web) = world.engine.host_as_mut::<WebHost>(node) {
                logs.push(web.take_captures());
            }
        }
        let arrivals = CaptureLog::merged(logs);
        let mut vp_reports = HashMap::new();
        for vp in &world.platform.vps {
            if !owns(vp.id) {
                continue;
            }
            if let Some(host) = world.engine.host_as::<VantagePointHost>(vp.node) {
                vp_reports.insert(vp.id, host.report.clone());
            }
        }
        (arrivals, vp_reports)
    }
}

/// Build a [`CorrelationSink`] over this phase's registry slice and hand a
/// shared handle to every capture point. The sink sees arrivals in the
/// exact order the honeypots capture them.
pub(crate) fn install_sink(
    world: &mut World,
    registry: &DecoyRegistry,
    config: SinkConfig,
) -> shadow_honeypot::capture::SharedArrivalSink {
    let shared = CorrelationSink::shared(std::sync::Arc::new(registry.clone()), config);
    world.install_arrival_sink(Some(shared.clone()));
    shared
}

/// Uninstall the phase's sink and take its aggregates, recording the sink
/// state size (classifier entries + per-decoy folds) into the run metrics.
pub(crate) fn drain_sink(
    world: &mut World,
    shared: &shadow_honeypot::capture::SharedArrivalSink,
) -> CorrelationAggregates {
    world.install_arrival_sink(None);
    let (aggregates, state_size) = CorrelationSink::drain_shared(shared);
    if let Some(m) = world.engine.telemetry().metrics() {
        m.sink_tracked_decoys.add(state_size as u64);
    }
    aggregates
}

/// Count a planned decoy send and (when journaling) record the
/// [`EventKind::DecoySent`] event, stamped with its scheduled sim-time and
/// the VP's node. Pre-flight `RawUdp` checks carry no decoy identifier and
/// are not counted.
pub(crate) fn record_decoy_send(world: &World, send: &PlannedSend) {
    let telemetry = world.engine.telemetry();
    if !telemetry.is_enabled() {
        return;
    }
    let (protocol, domain, dst, ttl) = match &send.command {
        VpCommand::DnsDecoy {
            domain, dst, ttl, ..
        }
        | VpCommand::EncryptedDnsDecoy { domain, dst, ttl } => ("DNS", domain, *dst, *ttl),
        VpCommand::HttpDecoy { domain, dst, ttl }
        | VpCommand::RawHttpProbe { domain, dst, ttl } => ("HTTP", domain, *dst, *ttl),
        VpCommand::TlsDecoy { domain, dst, ttl }
        | VpCommand::EchTlsDecoy { domain, dst, ttl }
        | VpCommand::RawTlsProbe { domain, dst, ttl } => ("TLS", domain, *dst, *ttl),
        _ => return,
    };
    if let Some(m) = telemetry.metrics() {
        m.decoys_sent.inc(protocol);
    }
    let vp = send.vp.0;
    telemetry.event(send.at.0, Some(send.node.0), || EventKind::DecoySent {
        protocol: protocol.to_string(),
        domain: domain.as_str().to_string(),
        vp,
        dst,
        ttl,
    });
}

/// Journal a [`EventKind::PhaseEnded`] marker (meta — skipped by diffs).
pub(crate) fn emit_phase_end(world: &World, phase: &str) {
    let telemetry = world.engine.telemetry();
    let shard = telemetry.shard();
    let phase = phase.to_string();
    telemetry.event(world.engine.now().0, None, || EventKind::PhaseEnded {
        phase,
        shard,
    });
}

/// Snapshot-and-reset the engine's telemetry into `(metrics, journal)`,
/// with the journal sorted into the canonical total order. Each phase calls
/// this once at harvest time, so consecutive phases never double-count.
pub(crate) fn drain_telemetry(world: &World) -> (MetricsSnapshot, Vec<JournalRecord>) {
    let telemetry = world.engine.telemetry();
    let metrics = telemetry.take_snapshot();
    let mut journal = telemetry.drain_journal();
    sort_records(&mut journal);
    (metrics, journal)
}
