//! Phase I: spread decoys from every vantage point to every destination,
//! run the simulated clock forward, and harvest honeypot captures.

use crate::decoy::{DecoyProtocol, DecoyRegistry};
use crate::world::World;
use serde::{Deserialize, Serialize};
use shadow_honeypot::authority::ExperimentAuthorityHost;
use shadow_honeypot::capture::{Arrival, CaptureLog};
use shadow_honeypot::web::WebHost;
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_vantage::platform::VpId;
use shadow_vantage::schedule::RateLimitedScheduler;
use shadow_vantage::vp::{VantagePointHost, VpCommand, VpReport};
use std::collections::HashMap;

/// Phase I configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase1Config {
    pub send_dns: bool,
    pub send_http: bool,
    pub send_tls: bool,
    /// §6 ablation: send DNS decoys over the encrypted channel instead of
    /// clear-text UDP/53 (on-path observers go blind; the terminating
    /// resolver still sees everything).
    pub encrypted_dns: bool,
    /// §6 ablation: send TLS decoys with Encrypted Client Hello instead of
    /// clear-text SNI.
    pub ech_tls: bool,
    /// Full passes over (VP × destination); the paper round-robins
    /// "continuously ... without stop" for two months.
    pub rounds: usize,
    /// Gap between rounds.
    pub round_gap: SimDuration,
    /// How long to keep the clock running after the last send, so that
    /// days-later probes still land (Figure 4's ≥10-day tail).
    pub grace: SimDuration,
}

impl Default for Phase1Config {
    fn default() -> Self {
        Self {
            send_dns: true,
            send_http: true,
            send_tls: true,
            encrypted_dns: false,
            ech_tls: false,
            rounds: 1,
            round_gap: SimDuration::from_hours(12),
            grace: SimDuration::from_days(30),
        }
    }
}

/// Everything Phase I produced: the decoy registry, every capture, and the
/// per-VP reports.
#[derive(Debug, Default)]
pub struct CampaignData {
    pub registry: DecoyRegistry,
    pub arrivals: Vec<Arrival>,
    pub vp_reports: HashMap<VpId, VpReport>,
    /// When the last decoy left a VP.
    pub last_send: SimTime,
}

impl CampaignData {
    /// Absorb another phase's data (registry + arrivals).
    pub fn absorb(&mut self, other: CampaignData) {
        self.registry.absorb(other.registry);
        self.arrivals.extend(other.arrivals);
        for (vp, report) in other.vp_reports {
            self.vp_reports.insert(vp, report);
        }
        self.last_send = self.last_send.max(other.last_send);
    }
}

/// The campaign runner.
pub struct CampaignRunner;

impl CampaignRunner {
    /// Run Phase I on `world` and harvest captures.
    pub fn run_phase1(world: &mut World, config: &Phase1Config) -> CampaignData {
        let zone = world.zone.clone();
        let mut registry = DecoyRegistry::new(zone);
        let mut scheduler = RateLimitedScheduler::paper_defaults();
        let mut last_send = world.engine.now();
        let start0 = world.engine.now() + SimDuration::from_secs(5);

        let dns_targets: Vec<_> = world.dns_destinations.iter().map(|d| d.addr).collect();
        let web_targets: Vec<_> = world.tranco.iter().map(|s| s.addr).collect();
        let vps: Vec<_> = world
            .platform
            .vps
            .iter()
            .map(|vp| (vp.id, vp.node, vp.addr))
            .collect();

        for round in 0..config.rounds {
            let round_start = start0 + config.round_gap.saturating_mul(round as u64);
            for &(vp_id, vp_node, vp_addr) in &vps {
                if config.send_dns {
                    for &dst in &dns_targets {
                        let at = scheduler.reserve(round_start, vp_id, dst);
                        let record = registry.register(
                            vp_id,
                            vp_addr,
                            dst,
                            DecoyProtocol::Dns,
                            64,
                            at,
                            None,
                        );
                        let command = if config.encrypted_dns {
                            VpCommand::EncryptedDnsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }
                        } else {
                            VpCommand::DnsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }
                        };
                        world.engine.post(at, vp_node, Box::new(command));
                        last_send = last_send.max(at);
                    }
                }
                for &dst in &web_targets {
                    if config.send_http {
                        let at = scheduler.reserve(round_start, vp_id, dst);
                        let record = registry.register(
                            vp_id,
                            vp_addr,
                            dst,
                            DecoyProtocol::Http,
                            64,
                            at,
                            None,
                        );
                        world.engine.post(
                            at,
                            vp_node,
                            Box::new(VpCommand::HttpDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }),
                        );
                        last_send = last_send.max(at);
                    }
                    if config.send_tls {
                        let at = scheduler.reserve(round_start, vp_id, dst);
                        let record = registry.register(
                            vp_id,
                            vp_addr,
                            dst,
                            DecoyProtocol::Tls,
                            64,
                            at,
                            None,
                        );
                        let command = if config.ech_tls {
                            VpCommand::EchTlsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }
                        } else {
                            VpCommand::TlsDecoy {
                                domain: record.domain.clone(),
                                dst,
                                ttl: 64,
                            }
                        };
                        world.engine.post(at, vp_node, Box::new(command));
                        last_send = last_send.max(at);
                    }
                }
            }
        }

        world.engine.run_until(last_send + config.grace);
        let (arrivals, vp_reports) = Self::harvest(world);
        CampaignData {
            registry,
            arrivals,
            vp_reports,
            last_send,
        }
    }

    /// Drain capture logs from the authoritative honeypot and the honey
    /// web servers, and snapshot VP reports. Draining means each phase
    /// sees only its own captures.
    pub fn harvest(world: &mut World) -> (Vec<Arrival>, HashMap<VpId, VpReport>) {
        let mut logs: Vec<CaptureLog> = Vec::new();
        let auth_node = world.auth_node;
        if let Some(auth) = world
            .engine
            .host_as_mut::<ExperimentAuthorityHost>(auth_node)
        {
            logs.push(std::mem::take(&mut auth.captures));
        }
        let web_nodes: Vec<_> = world.honey_web.iter().map(|&(node, _, _)| node).collect();
        for node in web_nodes {
            if let Some(web) = world.engine.host_as_mut::<WebHost>(node) {
                logs.push(web.take_captures());
            }
        }
        let arrivals = CaptureLog::merged(logs);
        let mut vp_reports = HashMap::new();
        for vp in &world.platform.vps {
            if let Some(host) = world.engine.host_as::<VantagePointHost>(vp.node) {
                vp_reports.insert(vp.id, host.report.clone());
            }
        }
        (arrivals, vp_reports)
    }
}
