//! # shadow-core
//!
//! The reproduction of the paper's actual contribution — the measurement
//! methodology of Section 3 — plus the simulated-world builder it runs
//! against:
//!
//! * [`ident`] — the decoy identifier codec: send time, VP address,
//!   destination address, and initial TTL encoded (with a checksum) into
//!   the DNS label `g6d8jjkut5obc4-9982`-style that honeypots decode back;
//! * [`decoy`] — decoy specifications and the campaign-wide registry;
//! * [`world`] — builds the simulated Internet (topology, resolvers,
//!   observers, honeypots, VPs) from a seeded configuration;
//! * [`campaign`] — Phase I: spread decoys from every VP to every
//!   destination under the ethical rate limit, capture arrivals;
//! * [`correlate`] — label arrivals, apply unsolicited rules (i)–(iii),
//!   derive problematic paths;
//! * [`phase2`] — hop-by-hop traceroute: locate observers, harvest ICMP-
//!   revealed router addresses;
//! * [`noise`] — Appendix E mitigations: pair-resolver interception test
//!   and the TTL-rewrite pre-flight.
//!
//! The measurement code never touches ground truth: everything it reports
//! is recovered from packets its own decoys triggered.

pub mod campaign;
pub mod correlate;
pub mod decoy;
pub mod executor;
pub mod ident;
pub mod noise;
pub mod phase2;
pub mod sink;
pub mod world;

pub use campaign::{CampaignData, CampaignRunner, Phase1Config};
pub use correlate::{
    Combo, CorrelatedRequest, Correlator, PathKey, ProblematicPath, StreamingClassifier,
    UnsolicitedLabel,
};
pub use decoy::{DecoyProtocol, DecoyRecord, DecoyRegistry};
pub use executor::{
    run_phase1_sharded, run_phase1_sharded_conditioned, run_phase1_sharded_sink,
    run_phase2_sharded, run_phase2_sharded_sink, shard_vps, ShardedPhase1,
};
pub use ident::{DecoyIdent, IdentError};
pub use noise::{NoiseFilter, PreflightOutcome};
pub use phase2::{ObserverLocation, Phase2Config, Phase2Runner, TracerouteResult};
pub use sink::{CorrelationAggregates, CorrelationSink, IntervalHistogram, SinkConfig};
pub use world::{World, WorldConfig};
