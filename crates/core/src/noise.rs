//! Appendix E noise mitigation: the TTL-rewrite pre-flight and the
//! pair-resolver interception test.
//!
//! Both are *measurements about the measurement platform*: they run decoy
//! traffic through the same engine and read back only what a real operator
//! could see (arrival TTLs at a controlled server; DNS answers from
//! addresses that should never answer).

use crate::world::World;
use shadow_honeypot::authority::ExperimentAuthorityHost;
use shadow_honeypot::web::WebHost;
use shadow_netsim::engine::{Ctx, Host};
use shadow_netsim::time::SimDuration;
use shadow_netsim::transport::Transport;
use shadow_packet::dns::DnsName;
use shadow_packet::ipv4::Ipv4Packet;
use shadow_vantage::platform::VpId;
use shadow_vantage::vp::{VantagePointHost, VpCommand};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// UDP port the control server listens on for pre-flight probes.
pub const CONTROL_PORT: u16 = 7_777;

/// The two initial TTLs of the pre-flight check; a clean VPN preserves
/// their difference all the way to the control server.
pub const PREFLIGHT_TTLS: (u8, u8) = (20, 60);

/// The controlled server of Appendix E ("directly sending packets to our
/// controlled server and inspect whether contents or TTL fields have been
/// tampered with"). Records the *arrival* TTL of every probe.
pub struct ControlServerHost {
    #[allow(dead_code)]
    addr: Ipv4Addr,
    /// (source address, arrival TTL, first payload byte as probe tag).
    pub received: Vec<(Ipv4Addr, u8, u8)>,
}

impl ControlServerHost {
    pub fn new(addr: Ipv4Addr) -> Self {
        Self {
            addr,
            received: Vec::new(),
        }
    }
}

impl Host for ControlServerHost {
    fn on_packet(&mut self, pkt: Ipv4Packet, _ctx: &mut Ctx<'_>) {
        if let Ok(Transport::Udp(dg)) = Transport::parse(&pkt) {
            if dg.dst_port == CONTROL_PORT {
                let tag = dg.payload.first().copied().unwrap_or(0);
                self.received.push((pkt.header.src, pkt.header.ttl, tag));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Results of the platform pre-flight checks.
#[derive(Debug, Clone, Default)]
pub struct PreflightOutcome {
    /// Measured arrival-TTL delta per VP (expected: `PREFLIGHT_TTLS.1 -
    /// PREFLIGHT_TTLS.0` when the VPN does not rewrite TTLs).
    pub ttl_deltas: Vec<(VpId, i32)>,
    /// VPs whose paths answered queries sent to pair-resolver addresses.
    pub intercepted: BTreeSet<VpId>,
}

/// Runner for the Appendix E checks.
pub struct NoiseFilter;

impl NoiseFilter {
    /// TTL-rewrite pre-flight: each VP sends two tagged probes with initial
    /// TTLs 20 and 60 to the control server; the arrival-TTL difference
    /// must equal 40 on a clean egress (any rewrite collapses it).
    pub fn ttl_preflight(world: &mut World) -> Vec<(VpId, i32)> {
        let start = world.engine.now() + SimDuration::from_secs(1);
        for (i, vp) in world.platform.vps.iter().enumerate() {
            for (j, ttl) in [PREFLIGHT_TTLS.0, PREFLIGHT_TTLS.1].into_iter().enumerate() {
                world.engine.post(
                    start + SimDuration::from_millis(i as u64 * 20 + j as u64 * 5),
                    vp.node,
                    Box::new(VpCommand::RawUdp {
                        dst: world.control_addr,
                        dst_port: CONTROL_PORT,
                        ttl,
                        payload: vec![j as u8 + 1],
                    }),
                );
            }
        }
        world.engine.run_until(start + SimDuration::from_secs(600));
        let control = world
            .engine
            .host_as::<ControlServerHost>(world.control_node)
            .expect("control server bound");
        // Group arrivals by source address and probe tag.
        let mut by_src: BTreeMap<Ipv4Addr, BTreeMap<u8, u8>> = BTreeMap::new();
        for &(src, ttl, tag) in &control.received {
            by_src.entry(src).or_default().insert(tag, ttl);
        }
        world
            .platform
            .vps
            .iter()
            .filter_map(|vp| {
                let tags = by_src.get(&vp.addr)?;
                let low = *tags.get(&1)?;
                let high = *tags.get(&2)?;
                Some((vp.id, i32::from(high) - i32::from(low)))
            })
            .collect()
    }

    /// The expected TTL delta on a clean path.
    pub fn expected_delta() -> i32 {
        i32::from(PREFLIGHT_TTLS.1) - i32::from(PREFLIGHT_TTLS.0)
    }

    /// Pair-resolver interception test: from every VP, query a name under
    /// the experiment zone at the *pair* address of every public resolver
    /// (same /24, no DNS service). Any answer means a middlebox intercepts
    /// DNS on that VP's paths — the VP must be excluded.
    pub fn pair_resolver_test(world: &mut World) -> BTreeSet<VpId> {
        let start = world.engine.now() + SimDuration::from_secs(1);
        let pairs: Vec<Ipv4Addr> = world
            .dns_destinations
            .iter()
            .filter(|d| {
                matches!(
                    d.dest.kind,
                    shadow_dns::catalog::DnsDestinationKind::PublicResolver
                )
            })
            .map(|d| d.pair_addr)
            .collect();
        let zone = world.zone.clone();
        let mut sent_at = start;
        for vp in &world.platform.vps {
            for (i, &pair) in pairs.iter().enumerate() {
                let label = format!("pairtest{}-{}", vp.id.0, i);
                let domain = zone.prepend(&label).expect("label is DNS-safe");
                sent_at += SimDuration::from_millis(15);
                world.engine.post(
                    sent_at,
                    vp.node,
                    Box::new(VpCommand::DnsDecoy {
                        domain,
                        dst: pair,
                        ttl: 64,
                        retry: None,
                    }),
                );
            }
        }
        world
            .engine
            .run_until(sent_at + SimDuration::from_secs(600));
        let pair_set: BTreeSet<Ipv4Addr> = pairs.into_iter().collect();
        let mut intercepted = BTreeSet::new();
        for vp in &world.platform.vps {
            let Some(host) = world.engine.host_as::<VantagePointHost>(vp.node) else {
                continue;
            };
            let hit = host.report.dns_answers.iter().any(|ans| {
                pair_set.contains(&ans.from)
                    && ans
                        .domain
                        .first_label()
                        .map(|l| l.starts_with("pairtest"))
                        .unwrap_or(false)
            });
            if hit {
                intercepted.insert(vp.id);
            }
        }
        intercepted
    }

    /// Run both checks and apply them to the platform, mirroring the
    /// paper's order: defective VPNs are dropped before the campaign, and
    /// intercepted VPs are "already removed from VPs counted in Table 1".
    pub fn run_and_apply(world: &mut World) -> PreflightOutcome {
        let ttl_deltas = Self::ttl_preflight(world);
        let intercepted = Self::pair_resolver_test(world);
        let deltas = ttl_deltas.clone();
        // Split the platform out to appease the borrow checker.
        let mut platform = std::mem::take(&mut world.platform);
        platform.vet_ttl_rewrite(&deltas, Self::expected_delta());
        platform.exclude_intercepted(&intercepted);
        world.platform = platform;
        // Discard any honeypot captures the pre-flight probes left behind,
        // so the campaign harvest starts from a clean slate. A sharded run
        // replays the pre-flight once per shard; without this drain the
        // (identical) pre-flight arrivals would be counted once per shard
        // at merge time.
        let auth_node = world.auth_node;
        if let Some(auth) = world
            .engine
            .host_as_mut::<ExperimentAuthorityHost>(auth_node)
        {
            let _ = std::mem::take(&mut auth.captures);
        }
        let web_nodes: Vec<_> = world.honey_web.iter().map(|&(node, _, _)| node).collect();
        for node in web_nodes {
            if let Some(web) = world.engine.host_as_mut::<WebHost>(node) {
                let _ = web.take_captures();
            }
        }
        PreflightOutcome {
            ttl_deltas,
            intercepted,
        }
    }
}

/// A quick sanity helper for tests: does `domain` look like a pair-test
/// probe rather than a campaign decoy?
pub fn is_pair_test_domain(domain: &DnsName) -> bool {
    domain
        .first_label()
        .map(|l| l.starts_with("pairtest"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_delta_matches_constants() {
        assert_eq!(NoiseFilter::expected_delta(), 40);
    }

    #[test]
    fn pair_test_domain_detection() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let probe = zone.prepend("pairtest3-1").unwrap();
        assert!(is_pair_test_domain(&probe));
        let decoy = zone.prepend("abcd1234-0001").unwrap();
        assert!(!is_pair_test_domain(&decoy));
    }
}
