//! Streaming correlation: the capture-time sink that replaces batch
//! post-hoc analysis.
//!
//! The batch pipeline buffered every honeypot [`Arrival`], then re-scanned
//! the full vector once per analysis module — O(arrivals) memory and a
//! serial tail after the simulation finished. The [`CorrelationSink`]
//! inverts that dataflow: each arrival is classified the moment a honeypot
//! captures it (decoy lookup + the §3 rules via
//! [`StreamingClassifier`]) and folded into [`CorrelationAggregates`] —
//! compact maps bounded by the number of decoys, paths, and destinations,
//! never by traffic volume. Each shard owns one sink; per-shard aggregates
//! merge commutatively through `CampaignData::absorb`, and the merged
//! result is byte-identical to running the batch correlator over the
//! merged arrival vector (pinned by `tests/streaming_equivalence.rs`).
//!
//! Why per-shard folding is exact: decoy domains are unique and each
//! belongs to exactly one VP, hence one shard. All DNS captures for a
//! domain happen at the single authoritative host in simulated-time order,
//! so the first-seen time the classifier keys on is the same whether the
//! stream is consumed at capture time or sorted afterwards. The only
//! ambiguity — two same-millisecond duplicates swapping
//! `SolicitedResolution` and `ReplicationNoise` — is between two
//! non-unsolicited labels, which no aggregate distinguishes.

use crate::correlate::{
    Combo, CorrelatedRequest, PathKey, ProblematicPath, StreamingClassifier, UnsolicitedLabel,
};
use crate::decoy::{DecoyProtocol, DecoyRecord, DecoyRegistry};
use serde::{Deserialize, Serialize};
use shadow_honeypot::capture::{
    Arrival, ArrivalProtocol, ArrivalSink, SharedArrivalSink, SinkDecision,
};
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_packet::dns::DnsName;
use shadow_telemetry::HistogramSnapshot;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// How the streaming sink behaves for one campaign phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkConfig {
    /// Appendix E replication window fed to the classifier.
    pub replication_window: SimDuration,
    /// Strict cutoff separating "within the hour" from "later" in the
    /// per-decoy folds (Figure 5 classes, §5.1 reuse counting).
    pub late_cutoff: SimDuration,
    /// Keep the raw arrivals in the honeypot capture logs as well. `false`
    /// (the streaming default) is what keeps peak memory flat; `true`
    /// preserves the legacy per-request sample set for analyses that need
    /// individual arrivals (origin ASes, probing payloads, case studies).
    pub retain_arrivals: bool,
}

impl SinkConfig {
    /// The streaming default: aggregates only, no arrival buffering.
    pub fn streaming() -> Self {
        Self {
            replication_window: StreamingClassifier::DEFAULT_REPLICATION_WINDOW,
            late_cutoff: SimDuration::from_hours(1),
            retain_arrivals: false,
        }
    }

    /// Streaming aggregates plus the legacy buffered arrival vector.
    pub fn retained() -> Self {
        Self {
            retain_arrivals: true,
            ..Self::streaming()
        }
    }
}

impl Default for SinkConfig {
    fn default() -> Self {
        Self::streaming()
    }
}

/// Inclusive upper bucket edges (milliseconds) of the fixed-bucket
/// interval histograms. Includes **every** paper-grid point (1 s, 1 min,
/// 1 h, 1 d, 10 d, 30 d — `Cdf::paper_grid`), so cumulative bucket counts
/// reproduce the batch sample-CDF fractions at the grid *exactly*, plus
/// intermediate edges for resolution.
pub const INTERVAL_EDGES_MS: [u64; 12] = [
    1_000,         // 1 s
    10_000,        // 10 s
    60_000,        // 1 min
    600_000,       // 10 min
    3_600_000,     // 1 h
    21_600_000,    // 6 h
    86_400_000,    // 1 d
    259_200_000,   // 3 d
    864_000_000,   // 10 d
    1_728_000_000, // 20 d
    2_592_000_000, // 30 d
    5_184_000_000, // 60 d
];

/// A fixed-bucket histogram over decoy-emission → arrival intervals, the
/// streaming replacement for buffering every interval sample. One extra
/// bucket catches overflow beyond the last edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalHistogram {
    counts: [u64; INTERVAL_EDGES_MS.len() + 1],
}

impl Default for IntervalHistogram {
    fn default() -> Self {
        Self {
            counts: [0; INTERVAL_EDGES_MS.len() + 1],
        }
    }
}

impl IntervalHistogram {
    #[inline]
    pub fn record(&mut self, interval_ms: u64) {
        let idx = INTERVAL_EDGES_MS.partition_point(|&edge| edge < interval_ms);
        self.counts[idx] += 1;
    }

    pub fn merge(&mut self, other: &IntervalHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Samples ≤ `edge_ms`. Exact only when `edge_ms` is one of
    /// [`INTERVAL_EDGES_MS`]; `None` otherwise (an inexact answer would
    /// silently diverge from the batch CDF).
    pub fn cumulative_at(&self, edge_ms: u64) -> Option<u64> {
        let idx = INTERVAL_EDGES_MS.iter().position(|&e| e == edge_ms)?;
        Some(self.counts[..=idx].iter().sum())
    }

    /// Fraction of samples ≤ `edge_ms` — the CDF value at a bucket edge.
    /// Computed as the same integer-count division the batch
    /// `Cdf::fraction_at` performs, so the two agree bit-for-bit.
    pub fn fraction_at(&self, edge: SimDuration) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        self.cumulative_at(edge.millis())
            .map(|n| n as f64 / total as f64)
    }

    /// Raw bucket counts (len = `INTERVAL_EDGES_MS.len() + 1`, overflow
    /// bucket last) — the checkpoint wire form.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild from the wire form; `None` if the bucket count does not
    /// match this build's edge layout.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        let counts: [u64; INTERVAL_EDGES_MS.len() + 1] = counts.try_into().ok()?;
        Some(Self { counts })
    }
}

/// Figure-5 outcome bits of one decoy, strongest-wins decodable.
pub const OUTCOME_DNS_EARLY: u8 = 1;
pub const OUTCOME_DNS_LATE: u8 = 2;
pub const OUTCOME_HTTP_EARLY: u8 = 4;
pub const OUTCOME_HTTP_LATE: u8 = 8;

/// Everything the analyses need to know about one decoy's unsolicited
/// traffic, folded incrementally (Figure 5 breakdown + §5.1 reuse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecoyFold {
    pub protocol: DecoyProtocol,
    /// OR of the `OUTCOME_*` bits this decoy's unsolicited arrivals set.
    pub outcome_bits: u8,
    /// Unsolicited arrivals later than the configured late cutoff.
    pub late_unsolicited: u64,
}

/// Everything the analyses need to know about one client-server path,
/// folded incrementally (Figure 3 numerators + Phase II TTL localization).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathFold {
    pub unsolicited: u64,
    pub first_unsolicited_at: SimTime,
    /// Decoy domains whose unsolicited arrivals implicate this path.
    pub triggering: BTreeSet<DnsName>,
    /// Smallest decoy TTL that still triggered — the incremental min-fold
    /// Phase II's binary-search localization reads.
    pub min_trigger_ttl: u8,
}

/// Compact per-shard correlation state. Every map is bounded by decoys,
/// paths, or destinations — never by arrival volume — and every field
/// merges commutatively in [`CorrelationAggregates::absorb`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorrelationAggregates {
    /// Arrivals offered to the sink, including unknown-domain noise.
    pub arrivals_seen: u64,
    /// Arrivals that resolved to a registered decoy.
    pub classified: u64,
    /// Classified arrivals per §3 label (solicited classes included).
    pub by_label: BTreeMap<UnsolicitedLabel, u64>,
    /// Intervals of **all** classified arrivals in the telemetry bucket
    /// layout (feeds `WorldMetrics::retention_intervals_ms`).
    pub retention_intervals_ms: HistogramSnapshot,
    /// Unsolicited-interval histograms per (decoy protocol, destination) —
    /// the streamed source of the Figure 4/7 temporal CDFs.
    pub interval_hists: BTreeMap<(DecoyProtocol, Ipv4Addr), IntervalHistogram>,
    /// Unsolicited arrivals per protocol combination (§5.2).
    pub combos: BTreeMap<Combo, u64>,
    /// Unsolicited arrivals per (path, arrival protocol) — the observer
    /// combination input (Table: per-AS combos).
    pub path_combos: BTreeMap<(PathKey, ArrivalProtocol), u64>,
    /// Problematic-path folds (Figure 3, Phase II trace targets).
    pub paths: BTreeMap<PathKey, PathFold>,
    /// Per-decoy folds (Figure 5 breakdown, §5.1 reuse).
    pub decoys: BTreeMap<DnsName, DecoyFold>,
}

impl CorrelationAggregates {
    /// Fold one classified arrival.
    pub fn fold(
        &mut self,
        decoy: &DecoyRecord,
        arrival: &Arrival,
        interval: SimDuration,
        label: UnsolicitedLabel,
        late_cutoff: SimDuration,
    ) {
        self.classified += 1;
        *self.by_label.entry(label).or_insert(0) += 1;
        self.retention_intervals_ms.record(interval.millis());
        if !label.is_unsolicited() {
            return;
        }
        let key = PathKey {
            vp: decoy.vp,
            dst: decoy.dst(),
            protocol: decoy.protocol,
        };
        *self
            .combos
            .entry(Combo::new(decoy.protocol, arrival.protocol))
            .or_insert(0) += 1;
        *self.path_combos.entry((key, arrival.protocol)).or_insert(0) += 1;
        self.interval_hists
            .entry((decoy.protocol, decoy.dst()))
            .or_default()
            .record(interval.millis());
        let path = self.paths.entry(key).or_insert_with(|| PathFold {
            unsolicited: 0,
            first_unsolicited_at: arrival.at,
            triggering: BTreeSet::new(),
            min_trigger_ttl: decoy.ttl(),
        });
        path.unsolicited += 1;
        path.first_unsolicited_at = path.first_unsolicited_at.min(arrival.at);
        path.min_trigger_ttl = path.min_trigger_ttl.min(decoy.ttl());
        // Check-before-insert: a decoy's repeat arrivals dominate, and
        // cloning the domain `String` on every hit is the fold's only
        // per-arrival allocation.
        if !path.triggering.contains(&decoy.domain) {
            path.triggering.insert(decoy.domain.clone());
        }
        let late = interval > late_cutoff;
        if !self.decoys.contains_key(&decoy.domain) {
            self.decoys.insert(
                decoy.domain.clone(),
                DecoyFold {
                    protocol: decoy.protocol,
                    outcome_bits: 0,
                    late_unsolicited: 0,
                },
            );
        }
        let fold = self
            .decoys
            .get_mut(&decoy.domain)
            .expect("inserted above if absent");
        fold.outcome_bits |= match (arrival.protocol, late) {
            (ArrivalProtocol::Dns, false) => OUTCOME_DNS_EARLY,
            (ArrivalProtocol::Dns, true) => OUTCOME_DNS_LATE,
            (_, false) => OUTCOME_HTTP_EARLY,
            (_, true) => OUTCOME_HTTP_LATE,
        };
        if late {
            fold.late_unsolicited += 1;
        }
    }

    /// Commutative merge — the aggregates' half of `CampaignData::absorb`.
    /// Sums, minima, unions, and bit-ORs only, so any absorb order yields
    /// identical state.
    pub fn absorb(&mut self, other: CorrelationAggregates) {
        self.arrivals_seen += other.arrivals_seen;
        self.classified += other.classified;
        for (label, n) in other.by_label {
            *self.by_label.entry(label).or_insert(0) += n;
        }
        self.retention_intervals_ms
            .merge(&other.retention_intervals_ms);
        for (key, hist) in other.interval_hists {
            self.interval_hists.entry(key).or_default().merge(&hist);
        }
        for (combo, n) in other.combos {
            *self.combos.entry(combo).or_insert(0) += n;
        }
        for (key, n) in other.path_combos {
            *self.path_combos.entry(key).or_insert(0) += n;
        }
        for (key, fold) in other.paths {
            match self.paths.entry(key) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(fold);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    mine.unsolicited += fold.unsolicited;
                    mine.first_unsolicited_at =
                        mine.first_unsolicited_at.min(fold.first_unsolicited_at);
                    mine.min_trigger_ttl = mine.min_trigger_ttl.min(fold.min_trigger_ttl);
                    mine.triggering.extend(fold.triggering);
                }
            }
        }
        for (domain, fold) in other.decoys {
            match self.decoys.entry(domain) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(fold);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let mine = slot.get_mut();
                    mine.outcome_bits |= fold.outcome_bits;
                    mine.late_unsolicited += fold.late_unsolicited;
                }
            }
        }
    }

    /// The batch twin: run the identical lookup → classify → fold pipeline
    /// over a sorted arrival vector. Equivalence tests compare this
    /// against what the capture-time sinks streamed.
    pub fn from_arrivals(
        registry: &DecoyRegistry,
        arrivals: &[Arrival],
        config: &SinkConfig,
    ) -> Self {
        let mut classifier = StreamingClassifier::new(config.replication_window);
        let mut agg = Self::default();
        for arrival in arrivals {
            agg.arrivals_seen += 1;
            let Some(decoy) = registry.lookup(&arrival.domain) else {
                continue;
            };
            let label = classifier.classify(decoy, arrival);
            agg.fold(
                decoy,
                arrival,
                arrival.at.since(decoy.planned_at),
                label,
                config.late_cutoff,
            );
        }
        agg
    }

    /// Fold an already-correlated batch (retained mode helper for tests).
    pub fn from_correlated(correlated: &[CorrelatedRequest], late_cutoff: SimDuration) -> Self {
        let mut agg = Self::default();
        for req in correlated {
            agg.arrivals_seen += 1;
            agg.fold(
                &req.decoy,
                &req.arrival,
                req.interval,
                req.label,
                late_cutoff,
            );
        }
        agg
    }

    /// Total unsolicited arrivals across all rules.
    pub fn unsolicited_total(&self) -> u64 {
        self.by_label
            .iter()
            .filter(|(label, _)| label.is_unsolicited())
            .map(|(_, n)| n)
            .sum()
    }

    /// The problematic-path view, shaped exactly like
    /// `Correlator::problematic_paths`.
    pub fn problematic_paths(&self) -> BTreeMap<PathKey, ProblematicPath> {
        self.paths
            .iter()
            .map(|(key, fold)| {
                (
                    *key,
                    ProblematicPath {
                        key: *key,
                        unsolicited: fold.unsolicited as usize,
                        first_unsolicited_at: fold.first_unsolicited_at,
                        decoys_triggering: fold.triggering.len(),
                    },
                )
            })
            .collect()
    }

    /// Smallest decoy TTL that triggered unsolicited traffic on `key`.
    pub fn min_trigger_ttl(&self, key: &PathKey) -> Option<u8> {
        self.paths.get(key).map(|fold| fold.min_trigger_ttl)
    }

    /// Sum of the unsolicited-interval histograms over `(protocol, dst)`
    /// cells selected by `keep` — the Figure 4/7 series source.
    pub fn interval_histogram(
        &self,
        protocol: DecoyProtocol,
        mut keep: impl FnMut(Ipv4Addr) -> bool,
    ) -> IntervalHistogram {
        let mut out = IntervalHistogram::default();
        for ((proto, dst), hist) in &self.interval_hists {
            if *proto == protocol && keep(*dst) {
                out.merge(hist);
            }
        }
        out
    }
}

/// Serialization twin of [`CorrelationAggregates`].
///
/// The in-memory aggregates key three maps by tuples
/// (`(DecoyProtocol, Ipv4Addr)`, `(PathKey, ArrivalProtocol)`) and one by a
/// struct (`PathKey`) — shapes a JSON object key cannot carry losslessly.
/// The portable form flattens every map to an entry vector (already in
/// `BTreeMap` iteration order, so rendering is deterministic) and the
/// fixed-size histogram arrays to plain `Vec<u64>`. This is the wire form
/// used by both the `shadow-serve` checkpoint file and the
/// `/api/aggregates` endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortableAggregates {
    pub arrivals_seen: u64,
    pub classified: u64,
    pub by_label: Vec<(UnsolicitedLabel, u64)>,
    pub retention_intervals_ms: HistogramSnapshot,
    pub interval_hists: Vec<(DecoyProtocol, Ipv4Addr, Vec<u64>)>,
    pub combos: Vec<(Combo, u64)>,
    pub path_combos: Vec<(PathKey, ArrivalProtocol, u64)>,
    pub paths: Vec<(PathKey, PathFold)>,
    pub decoys: Vec<(DnsName, DecoyFold)>,
}

impl CorrelationAggregates {
    /// Flatten into the serializable entry-vector form.
    pub fn to_portable(&self) -> PortableAggregates {
        PortableAggregates {
            arrivals_seen: self.arrivals_seen,
            classified: self.classified,
            by_label: self.by_label.iter().map(|(k, v)| (*k, *v)).collect(),
            retention_intervals_ms: self.retention_intervals_ms.clone(),
            interval_hists: self
                .interval_hists
                .iter()
                .map(|((proto, dst), hist)| (*proto, *dst, hist.counts().to_vec()))
                .collect(),
            combos: self.combos.iter().map(|(k, v)| (*k, *v)).collect(),
            path_combos: self
                .path_combos
                .iter()
                .map(|((path, proto), n)| (*path, *proto, *n))
                .collect(),
            paths: self
                .paths
                .iter()
                .map(|(k, fold)| (*k, fold.clone()))
                .collect(),
            decoys: self
                .decoys
                .iter()
                .map(|(name, fold)| (name.clone(), *fold))
                .collect(),
        }
    }

    /// Rebuild from the portable form. `None` if a histogram's bucket
    /// layout does not match this build (a checkpoint written by an
    /// incompatible version).
    pub fn from_portable(portable: &PortableAggregates) -> Option<Self> {
        let mut interval_hists = BTreeMap::new();
        for (proto, dst, counts) in &portable.interval_hists {
            interval_hists.insert((*proto, *dst), IntervalHistogram::from_counts(counts)?);
        }
        Some(Self {
            arrivals_seen: portable.arrivals_seen,
            classified: portable.classified,
            by_label: portable.by_label.iter().copied().collect(),
            retention_intervals_ms: portable.retention_intervals_ms.clone(),
            interval_hists,
            combos: portable.combos.iter().copied().collect(),
            path_combos: portable
                .path_combos
                .iter()
                .map(|(path, proto, n)| ((*path, *proto), *n))
                .collect(),
            paths: portable.paths.iter().cloned().collect(),
            decoys: portable.decoys.iter().cloned().collect(),
        })
    }
}

/// The capture-time [`ArrivalSink`]: one per shard engine, installed on
/// the authoritative server and every honey web host before campaign
/// traffic starts, drained into `CampaignData::aggregates` at harvest.
pub struct CorrelationSink {
    registry: Arc<DecoyRegistry>,
    config: SinkConfig,
    classifier: StreamingClassifier,
    aggregates: CorrelationAggregates,
}

impl CorrelationSink {
    pub fn new(registry: Arc<DecoyRegistry>, config: SinkConfig) -> Self {
        Self {
            registry,
            config,
            classifier: StreamingClassifier::new(config.replication_window),
            aggregates: CorrelationAggregates::default(),
        }
    }

    /// Build the shared handle the honeypot hosts hold.
    pub fn shared(registry: Arc<DecoyRegistry>, config: SinkConfig) -> SharedArrivalSink {
        Arc::new(parking_lot::Mutex::new(Box::new(Self::new(
            registry, config,
        ))))
    }

    /// Decoy states currently held (classifier first-seen entries plus
    /// per-decoy folds) — the sink-depth telemetry value.
    pub fn state_size(&self) -> usize {
        self.classifier.tracked_domains() + self.aggregates.decoys.len()
    }

    pub fn take_aggregates(&mut self) -> CorrelationAggregates {
        std::mem::take(&mut self.aggregates)
    }

    /// Drain the aggregates (and state-size reading) out of a shared
    /// handle after the run. Returns empty aggregates if the handle holds
    /// some other sink type — the campaign layer only ever installs
    /// [`CorrelationSink`]s, so that would be a bug upstream, not here.
    pub fn drain_shared(shared: &SharedArrivalSink) -> (CorrelationAggregates, usize) {
        let mut guard = shared.lock();
        match guard.as_any_mut().downcast_mut::<CorrelationSink>() {
            Some(sink) => {
                let state_size = sink.state_size();
                (sink.take_aggregates(), state_size)
            }
            None => (CorrelationAggregates::default(), 0),
        }
    }
}

impl ArrivalSink for CorrelationSink {
    fn offer(&mut self, arrival: &Arrival) -> SinkDecision {
        self.aggregates.arrivals_seen += 1;
        let retain = self.config.retain_arrivals;
        let Some(decoy) = self.registry.lookup(&arrival.domain) else {
            return SinkDecision::unclassified(retain);
        };
        let label = self.classifier.classify(decoy, arrival);
        self.aggregates.fold(
            decoy,
            arrival,
            arrival.at.since(decoy.planned_at),
            label,
            self.config.late_cutoff,
        );
        SinkDecision {
            retain,
            classified: true,
            unsolicited: label.is_unsolicited(),
            rule: label.is_unsolicited().then(|| label.as_str()),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::Correlator;
    use shadow_vantage::platform::VpId;

    fn zone() -> DnsName {
        DnsName::parse("www.experiment.example").unwrap()
    }

    fn arrival(domain: &DnsName, at: u64, proto: ArrivalProtocol) -> Arrival {
        Arrival {
            at: SimTime(at),
            src: Ipv4Addr::new(8, 8, 8, 8),
            protocol: proto,
            domain: domain.clone(),
            http_path: None,
            honeypot: "AUTH".into(),
        }
    }

    fn registry() -> (DecoyRegistry, DecoyRecord, DecoyRecord) {
        let mut reg = DecoyRegistry::new(zone());
        let dns = reg.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(77, 88, 8, 8),
            DecoyProtocol::Dns,
            64,
            SimTime(1_000),
            None,
        );
        let http = reg.register(
            VpId(2),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(93, 184, 216, 34),
            DecoyProtocol::Http,
            64,
            SimTime(2_000),
            None,
        );
        (reg, dns, http)
    }

    fn stream() -> (DecoyRegistry, Vec<Arrival>) {
        let (reg, dns, http) = registry();
        let arrivals = vec![
            arrival(&dns.domain, 2_000, ArrivalProtocol::Dns), // solicited
            arrival(&dns.domain, 2_500, ArrivalProtocol::Dns), // replication
            arrival(&dns.domain, 90_000, ArrivalProtocol::Dns), // repeated
            arrival(&dns.domain, 4_000_000, ArrivalProtocol::Http), // late HTTP probe
            arrival(&http.domain, 9_000, ArrivalProtocol::Dns), // cross-protocol
            arrival(&zone().prepend("noise").unwrap(), 10, ArrivalProtocol::Dns), // unknown
        ];
        (reg, arrivals)
    }

    #[test]
    fn streamed_offer_matches_batch_fold() {
        let (reg, arrivals) = stream();
        let batch = CorrelationAggregates::from_arrivals(&reg, &arrivals, &SinkConfig::streaming());
        let shared = CorrelationSink::shared(Arc::new(reg), SinkConfig::streaming());
        for a in &arrivals {
            shared.lock().offer(a);
        }
        let (streamed, state) = CorrelationSink::drain_shared(&shared);
        assert_eq!(streamed, batch);
        assert!(state > 0);
        assert_eq!(streamed.arrivals_seen, 6);
        assert_eq!(streamed.classified, 5);
        assert_eq!(streamed.unsolicited_total(), 3);
    }

    #[test]
    fn aggregates_match_batch_correlator_reports() {
        let (reg, arrivals) = stream();
        let agg = CorrelationAggregates::from_arrivals(&reg, &arrivals, &SinkConfig::streaming());
        let correlator = Correlator::new(&reg);
        let correlated = correlator.correlate(&arrivals);
        assert_eq!(
            agg.problematic_paths(),
            correlator.problematic_paths(&correlated)
        );
        let unsolicited = correlated
            .iter()
            .filter(|r| r.label.is_unsolicited())
            .count();
        assert_eq!(agg.unsolicited_total() as usize, unsolicited);
    }

    #[test]
    fn absorb_merges_split_streams_exactly() {
        let (reg, arrivals) = stream();
        let whole = CorrelationAggregates::from_arrivals(&reg, &arrivals, &SinkConfig::streaming());
        // Split by owning decoy (domain), as sharding does.
        let (left, right): (Vec<Arrival>, Vec<Arrival>) = arrivals.iter().cloned().partition(|a| {
            a.domain
                .as_str()
                .contains(reg.iter().next().unwrap().domain.as_str())
        });
        let mut a = CorrelationAggregates::from_arrivals(&reg, &left, &SinkConfig::streaming());
        let b = CorrelationAggregates::from_arrivals(&reg, &right, &SinkConfig::streaming());
        let mut ba = b.clone();
        ba.absorb(a.clone());
        a.absorb(b);
        assert_eq!(a, ba, "absorb must be commutative");
        assert_eq!(a, whole, "split streams must merge to the whole");
    }

    #[test]
    fn retain_decision_follows_config() {
        let (reg, arrivals) = stream();
        let reg = Arc::new(reg);
        let mut streaming = CorrelationSink::new(reg.clone(), SinkConfig::streaming());
        let mut retained = CorrelationSink::new(reg, SinkConfig::retained());
        assert!(!streaming.offer(&arrivals[0]).retain);
        assert!(retained.offer(&arrivals[0]).retain);
        let verdict = retained.offer(&arrivals[3]);
        assert!(verdict.unsolicited);
        assert_eq!(verdict.rule, Some("HttpTlsArrival"));
    }

    #[test]
    fn portable_form_round_trips_through_json() {
        let (reg, arrivals) = stream();
        let agg = CorrelationAggregates::from_arrivals(&reg, &arrivals, &SinkConfig::streaming());
        assert!(agg.classified > 0, "fixture must exercise every map");
        let json = serde_json::to_string_pretty(&agg.to_portable()).unwrap();
        let portable: PortableAggregates = serde_json::from_str(&json).unwrap();
        let back = CorrelationAggregates::from_portable(&portable).unwrap();
        assert_eq!(back, agg);
        // Rendering is deterministic: same aggregates, same bytes.
        assert_eq!(
            serde_json::to_string_pretty(&back.to_portable()).unwrap(),
            json
        );
    }

    #[test]
    fn portable_form_rejects_foreign_histogram_layout() {
        let (reg, arrivals) = stream();
        let agg = CorrelationAggregates::from_arrivals(&reg, &arrivals, &SinkConfig::streaming());
        let mut portable = agg.to_portable();
        assert!(!portable.interval_hists.is_empty());
        portable.interval_hists[0].2.push(0); // one bucket too many
        assert!(CorrelationAggregates::from_portable(&portable).is_none());
    }

    #[test]
    fn interval_histogram_is_exact_at_edges() {
        let mut hist = IntervalHistogram::default();
        for ms in [500, 1_000, 1_001, 60_000, 3_600_001, 86_400_000] {
            hist.record(ms);
        }
        assert_eq!(hist.total(), 6);
        assert_eq!(hist.cumulative_at(1_000), Some(2));
        assert_eq!(hist.cumulative_at(60_000), Some(4));
        assert_eq!(hist.cumulative_at(86_400_000), Some(6));
        assert_eq!(hist.cumulative_at(1_234), None, "not a bucket edge");
    }
}
