//! Decoy specifications and the campaign-wide registry.

use crate::ident::DecoyIdent;
use serde::{Deserialize, Serialize};
use shadow_netsim::time::SimTime;
use shadow_packet::dns::DnsName;
use shadow_vantage::platform::VpId;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The protocol a decoy is sent over — the `Decoy` half of the paper's
/// `Decoy-Request` labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DecoyProtocol {
    Dns,
    Http,
    Tls,
}

impl DecoyProtocol {
    pub fn as_str(self) -> &'static str {
        match self {
            DecoyProtocol::Dns => "DNS",
            DecoyProtocol::Http => "HTTP",
            DecoyProtocol::Tls => "TLS",
        }
    }
}

/// One generated decoy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecoyRecord {
    pub domain: DnsName,
    pub ident: DecoyIdent,
    pub protocol: DecoyProtocol,
    pub vp: VpId,
    /// Scheduled emission time.
    pub planned_at: SimTime,
    /// Phase II sweeps group decoys of one traceroute run.
    pub sweep: Option<u32>,
}

impl DecoyRecord {
    pub fn dst(&self) -> Ipv4Addr {
        self.ident.dst
    }

    pub fn ttl(&self) -> u8 {
        self.ident.ttl
    }
}

/// The registry of every decoy the campaign generated, indexed by domain.
/// Honeypot arrivals are resolved against this to recover the triggering
/// decoy.
///
/// Records live in a registration-order vector with a domain → index map
/// on the side: iteration (which the sharded executor's `filter_vps` runs
/// over the full multi-million-entry plan registry once per chunk) walks
/// the vector with no hashing, and the map entries stay small.
#[derive(Debug, Clone, Default)]
pub struct DecoyRegistry {
    zone: Option<DnsName>,
    by_domain: HashMap<DnsName, u32>,
    records: Vec<DecoyRecord>,
}

impl DecoyRegistry {
    pub fn new(zone: DnsName) -> Self {
        Self {
            zone: Some(zone),
            by_domain: HashMap::new(),
            records: Vec::new(),
        }
    }

    /// Pre-size for `additional` more decoys. The campaign planner knows
    /// its exact send count up front; growing a multi-million-entry map
    /// by doubling re-inserts every entry roughly once, which is real
    /// time at paper scale.
    pub fn reserve(&mut self, additional: usize) {
        self.by_domain.reserve(additional);
        self.records.reserve(additional);
    }

    pub fn zone(&self) -> &DnsName {
        self.zone.as_ref().expect("registry built with a zone")
    }

    /// Build and register a decoy for `(vp, dst, protocol, ttl)` planned at
    /// `planned_at`. Returns the record (domain included).
    #[allow(clippy::too_many_arguments)]
    pub fn register(
        &mut self,
        vp: VpId,
        vp_addr: Ipv4Addr,
        dst: Ipv4Addr,
        protocol: DecoyProtocol,
        ttl: u8,
        planned_at: SimTime,
        sweep: Option<u32>,
    ) -> DecoyRecord {
        let ident = DecoyIdent::at(planned_at, vp_addr, dst, ttl);
        let mut label_buf = [0u8; DecoyIdent::LABEL_LEN];
        let label = ident.encode_to(&mut label_buf);
        let domain = self
            .zone()
            .prepend(label)
            .expect("identifier labels are DNS-safe");
        let record = DecoyRecord {
            domain: domain.clone(),
            ident,
            protocol,
            vp,
            planned_at,
            sweep,
        };
        let previous = self.by_domain.insert(domain, self.records.len() as u32);
        debug_assert!(
            previous.is_none(),
            "decoy domains must be unique: {} reused",
            record.domain
        );
        self.records.push(record.clone());
        record
    }

    pub fn lookup(&self, domain: &DnsName) -> Option<&DecoyRecord> {
        self.by_domain
            .get(domain)
            .map(|&i| &self.records[i as usize])
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &DecoyRecord> {
        self.records.iter()
    }

    /// Count decoys per protocol (the paper reports 46.6M DNS / 1.69G HTTP
    /// / 1.69G TLS; we report our scaled-down equivalents).
    pub fn counts(&self) -> HashMap<DecoyProtocol, usize> {
        let mut counts = HashMap::new();
        for record in self.iter() {
            *counts.entry(record.protocol).or_insert(0) += 1;
        }
        counts
    }

    /// A copy keeping only decoys whose sending VP satisfies `owns`,
    /// preserving registration order. Sharded runs slice the global plan's
    /// registry this way so shard registries are disjoint and their union
    /// (via [`DecoyRegistry::absorb`]) recovers the global one.
    pub fn filter_vps(&self, owns: impl Fn(VpId) -> bool) -> DecoyRegistry {
        let mut out = DecoyRegistry {
            zone: self.zone.clone(),
            by_domain: HashMap::new(),
            records: Vec::new(),
        };
        for record in self.iter() {
            if owns(record.vp) {
                out.by_domain
                    .insert(record.domain.clone(), out.records.len() as u32);
                out.records.push(record.clone());
            }
        }
        out
    }

    /// Merge another registry (e.g. Phase II sweeps) into this one. A
    /// domain already present is overwritten in place; new domains append
    /// in the other registry's order.
    pub fn absorb(&mut self, other: DecoyRegistry) {
        self.reserve(other.records.len());
        for record in other.records {
            match self.by_domain.get(&record.domain) {
                Some(&i) => self.records[i as usize] = record,
                None => {
                    self.by_domain
                        .insert(record.domain.clone(), self.records.len() as u32);
                    self.records.push(record);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone() -> DnsName {
        DnsName::parse("www.experiment.example").unwrap()
    }

    fn vp_addr() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 9)
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = DecoyRegistry::new(zone());
        let rec = reg.register(
            VpId(1),
            vp_addr(),
            Ipv4Addr::new(8, 8, 8, 8),
            DecoyProtocol::Dns,
            64,
            SimTime(5_000),
            None,
        );
        assert!(rec.domain.is_subdomain_of(&zone()));
        let found = reg.lookup(&rec.domain).unwrap();
        assert_eq!(found, &rec);
        assert_eq!(found.dst(), Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(found.ttl(), 64);
    }

    #[test]
    fn domains_unique_across_protocols_and_times() {
        let mut reg = DecoyRegistry::new(zone());
        // Same vp/dst/ttl but different seconds → distinct domains.
        let a = reg.register(
            VpId(1),
            vp_addr(),
            Ipv4Addr::new(1, 1, 1, 1),
            DecoyProtocol::Dns,
            64,
            SimTime(1_000),
            None,
        );
        let b = reg.register(
            VpId(1),
            vp_addr(),
            Ipv4Addr::new(1, 1, 1, 1),
            DecoyProtocol::Http,
            64,
            SimTime(2_000),
            None,
        );
        assert_ne!(a.domain, b.domain);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn counts_by_protocol() {
        let mut reg = DecoyRegistry::new(zone());
        for (i, proto) in [DecoyProtocol::Dns, DecoyProtocol::Dns, DecoyProtocol::Tls]
            .into_iter()
            .enumerate()
        {
            reg.register(
                VpId(1),
                vp_addr(),
                Ipv4Addr::new(1, 1, 1, 1),
                proto,
                64,
                SimTime(1_000 * (i as u64 + 1)),
                None,
            );
        }
        let counts = reg.counts();
        assert_eq!(counts[&DecoyProtocol::Dns], 2);
        assert_eq!(counts[&DecoyProtocol::Tls], 1);
        assert!(!counts.contains_key(&DecoyProtocol::Http));
    }

    #[test]
    fn absorb_merges_without_duplicates() {
        let mut a = DecoyRegistry::new(zone());
        let rec = a.register(
            VpId(1),
            vp_addr(),
            Ipv4Addr::new(1, 1, 1, 1),
            DecoyProtocol::Dns,
            64,
            SimTime(1_000),
            None,
        );
        let mut b = DecoyRegistry::new(zone());
        b.register(
            VpId(2),
            vp_addr(),
            Ipv4Addr::new(2, 2, 2, 2),
            DecoyProtocol::Tls,
            7,
            SimTime(3_000),
            Some(1),
        );
        let b_len = b.len();
        a.absorb(b);
        assert_eq!(a.len(), 1 + b_len);
        assert!(a.lookup(&rec.domain).is_some());
    }

    #[test]
    fn identifier_recovers_send_metadata() {
        let mut reg = DecoyRegistry::new(zone());
        let rec = reg.register(
            VpId(3),
            vp_addr(),
            Ipv4Addr::new(114, 114, 114, 114),
            DecoyProtocol::Dns,
            17,
            SimTime(90_000),
            Some(4),
        );
        let decoded = crate::ident::DecoyIdent::from_domain(&rec.domain).unwrap();
        assert_eq!(decoded.sent_time(), SimTime(90_000));
        assert_eq!(decoded.vp, vp_addr());
        assert_eq!(decoded.dst, Ipv4Addr::new(114, 114, 114, 114));
        assert_eq!(decoded.ttl, 17);
    }
}
