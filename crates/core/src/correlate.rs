//! Correlation: map every honeypot arrival back to its decoy and decide
//! whether it is *unsolicited* (Section 3's rules), then derive the
//! problematic client-server paths of Figure 3.

use crate::decoy::{DecoyProtocol, DecoyRecord, DecoyRegistry};
use serde::{Deserialize, Serialize};
use shadow_honeypot::capture::{Arrival, ArrivalProtocol};
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_vantage::platform::VpId;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Why an arrival counts as unsolicited (the paper's rules i–iii), or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnsolicitedLabel {
    /// The expected one-time resolution of a DNS decoy.
    SolicitedResolution,
    /// Rule (i): request and decoy protocols differ.
    CrossProtocol,
    /// Rule (ii): HTTP/TLS requests are never solicited at honeypots.
    HttpTlsArrival,
    /// Rule (iii): a DNS query whose unique name appeared in an earlier
    /// DNS query.
    RepeatedDnsQuery,
    /// Appendix E: a near-simultaneous duplicate indicating on-path
    /// request replication (interception), filtered out of shadowing.
    ReplicationNoise,
}

impl UnsolicitedLabel {
    pub fn is_unsolicited(self) -> bool {
        matches!(
            self,
            UnsolicitedLabel::CrossProtocol
                | UnsolicitedLabel::HttpTlsArrival
                | UnsolicitedLabel::RepeatedDnsQuery
        )
    }

    /// The rule name as used in metrics/journal keys (same spelling as the
    /// `Debug` form, without a formatting allocation).
    pub fn as_str(self) -> &'static str {
        match self {
            UnsolicitedLabel::SolicitedResolution => "SolicitedResolution",
            UnsolicitedLabel::CrossProtocol => "CrossProtocol",
            UnsolicitedLabel::HttpTlsArrival => "HttpTlsArrival",
            UnsolicitedLabel::RepeatedDnsQuery => "RepeatedDnsQuery",
            UnsolicitedLabel::ReplicationNoise => "ReplicationNoise",
        }
    }
}

/// The paper's protocol-combination label (decoy protocol × arrival
/// protocol, e.g. "DNS-HTTP") as a `Copy` key. Aggregation loops key
/// counts by combination; formatting a fresh `String` per request just to
/// use it as a map key was pure allocation overhead. Variants are declared
/// in the alphabetical order of their display forms, so `Ord` sorts a
/// `BTreeMap<Combo, _>` exactly like the old string-keyed maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Combo {
    DnsDns,
    DnsHttp,
    DnsHttps,
    HttpDns,
    HttpHttp,
    HttpHttps,
    TlsDns,
    TlsHttp,
    TlsHttps,
}

impl Combo {
    pub fn new(decoy: DecoyProtocol, arrival: ArrivalProtocol) -> Self {
        match (decoy, arrival) {
            (DecoyProtocol::Dns, ArrivalProtocol::Dns) => Combo::DnsDns,
            (DecoyProtocol::Dns, ArrivalProtocol::Http) => Combo::DnsHttp,
            (DecoyProtocol::Dns, ArrivalProtocol::Https) => Combo::DnsHttps,
            (DecoyProtocol::Http, ArrivalProtocol::Dns) => Combo::HttpDns,
            (DecoyProtocol::Http, ArrivalProtocol::Http) => Combo::HttpHttp,
            (DecoyProtocol::Http, ArrivalProtocol::Https) => Combo::HttpHttps,
            (DecoyProtocol::Tls, ArrivalProtocol::Dns) => Combo::TlsDns,
            (DecoyProtocol::Tls, ArrivalProtocol::Http) => Combo::TlsHttp,
            (DecoyProtocol::Tls, ArrivalProtocol::Https) => Combo::TlsHttps,
        }
    }

    pub fn decoy(self) -> DecoyProtocol {
        match self {
            Combo::DnsDns | Combo::DnsHttp | Combo::DnsHttps => DecoyProtocol::Dns,
            Combo::HttpDns | Combo::HttpHttp | Combo::HttpHttps => DecoyProtocol::Http,
            Combo::TlsDns | Combo::TlsHttp | Combo::TlsHttps => DecoyProtocol::Tls,
        }
    }

    pub fn arrival(self) -> ArrivalProtocol {
        match self {
            Combo::DnsDns | Combo::HttpDns | Combo::TlsDns => ArrivalProtocol::Dns,
            Combo::DnsHttp | Combo::HttpHttp | Combo::TlsHttp => ArrivalProtocol::Http,
            Combo::DnsHttps | Combo::HttpHttps | Combo::TlsHttps => ArrivalProtocol::Https,
        }
    }
}

impl std::fmt::Display for Combo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-{}", self.decoy().as_str(), self.arrival().as_str())
    }
}

impl PartialEq<&str> for Combo {
    fn eq(&self, other: &&str) -> bool {
        let (d, a) = other.split_once('-').unwrap_or(("", ""));
        self.decoy().as_str() == d && self.arrival().as_str() == a
    }
}

/// One arrival resolved against the decoy registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelatedRequest {
    pub arrival: Arrival,
    pub decoy: DecoyRecord,
    /// Time between decoy emission and this arrival — the paper's proxy
    /// for how long the data was retained (Figures 4 and 7).
    pub interval: SimDuration,
    pub label: UnsolicitedLabel,
}

impl CorrelatedRequest {
    /// The paper's protocol-combination label, e.g. "DNS-HTTP".
    pub fn combo(&self) -> Combo {
        Combo::new(self.decoy.protocol, self.arrival.protocol)
    }
}

/// Identity of one client-server path (per decoy protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathKey {
    pub vp: VpId,
    pub dst: Ipv4Addr,
    pub protocol: DecoyProtocol,
}

/// Aggregate over one problematic path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProblematicPath {
    pub key: PathKey,
    pub unsolicited: usize,
    pub first_unsolicited_at: SimTime,
    pub decoys_triggering: usize,
}

/// The §3 classification rules as an incremental state machine: feed it
/// (decoy, arrival) pairs in capture-time order and it labels each one
/// immediately. This is the single implementation of the rules — the
/// streaming [`crate::sink::CorrelationSink`] drives it per capture, and
/// the batch [`Correlator`] drives it over a sorted arrival vector — so
/// the two paths cannot drift apart.
///
/// The only order-sensitive state is the first-seen time per DNS-decoy
/// domain. All captures for one domain happen at the single authoritative
/// host in simulated-time order, so streaming (capture order) and batch
/// (sort order) see the same first-seen time; two arrivals in the same
/// millisecond may swap which of them is labeled `SolicitedResolution`
/// versus `ReplicationNoise`, but both labels are non-unsolicited, so
/// every unsolicited-derived aggregate is invariant under the swap.
#[derive(Debug, Default)]
pub struct StreamingClassifier {
    replication_window: SimDuration,
    first_dns_seen: HashMap<shadow_packet::dns::DnsName, SimTime>,
}

impl StreamingClassifier {
    /// Appendix E's default replication window (1,500 ms).
    pub const DEFAULT_REPLICATION_WINDOW: SimDuration = SimDuration(1_500);

    pub fn new(replication_window: SimDuration) -> Self {
        Self {
            replication_window,
            first_dns_seen: HashMap::new(),
        }
    }

    /// Label one arrival already resolved to its decoy. Must be called in
    /// capture-time order per domain.
    pub fn classify(&mut self, decoy: &DecoyRecord, arrival: &Arrival) -> UnsolicitedLabel {
        match arrival.protocol {
            ArrivalProtocol::Http | ArrivalProtocol::Https => UnsolicitedLabel::HttpTlsArrival,
            ArrivalProtocol::Dns => {
                if decoy.protocol != DecoyProtocol::Dns {
                    UnsolicitedLabel::CrossProtocol
                } else {
                    match self.first_dns_seen.get(&decoy.domain) {
                        None => {
                            self.first_dns_seen.insert(decoy.domain.clone(), arrival.at);
                            UnsolicitedLabel::SolicitedResolution
                        }
                        Some(&first_at) => {
                            if arrival.at.since(first_at) <= self.replication_window {
                                UnsolicitedLabel::ReplicationNoise
                            } else {
                                UnsolicitedLabel::RepeatedDnsQuery
                            }
                        }
                    }
                }
            }
        }
    }

    /// Domains with classifier state (the sink-depth proxy).
    pub fn tracked_domains(&self) -> usize {
        self.first_dns_seen.len()
    }
}

/// The correlation engine.
pub struct Correlator<'a> {
    registry: &'a DecoyRegistry,
    /// Arrivals closer together than this (for the same DNS-decoy domain,
    /// right after emission) are treated as on-path replication, not
    /// shadowing (Appendix E).
    replication_window: SimDuration,
}

impl<'a> Correlator<'a> {
    pub fn new(registry: &'a DecoyRegistry) -> Self {
        Self {
            registry,
            replication_window: SimDuration::from_millis(1_500),
        }
    }

    pub fn with_replication_window(mut self, window: SimDuration) -> Self {
        self.replication_window = window;
        self
    }

    /// Correlate a time-sorted arrival stream. Arrivals whose domain does
    /// not resolve to a registered decoy (scanner noise, corrupted labels)
    /// are dropped.
    ///
    /// This is the batch adapter over [`StreamingClassifier`] — the same
    /// state machine the capture-time [`crate::sink::CorrelationSink`]
    /// runs, replayed over a buffered vector for callers that want the
    /// per-request sample set rather than the streamed aggregates.
    pub fn correlate(&self, arrivals: &[Arrival]) -> Vec<CorrelatedRequest> {
        let mut classifier = StreamingClassifier::new(self.replication_window);
        let mut out = Vec::with_capacity(arrivals.len());
        for arrival in arrivals {
            let Some(decoy) = self.registry.lookup(&arrival.domain) else {
                continue;
            };
            out.push(CorrelatedRequest {
                arrival: arrival.clone(),
                decoy: decoy.clone(),
                interval: arrival.at.since(decoy.planned_at),
                label: classifier.classify(decoy, arrival),
            });
        }
        out
    }

    /// Group unsolicited requests into problematic paths.
    pub fn problematic_paths(
        &self,
        correlated: &[CorrelatedRequest],
    ) -> BTreeMap<PathKey, ProblematicPath> {
        let mut paths: BTreeMap<PathKey, ProblematicPath> = BTreeMap::new();
        let mut triggering: BTreeMap<
            PathKey,
            std::collections::BTreeSet<&shadow_packet::dns::DnsName>,
        > = BTreeMap::new();
        for req in correlated {
            if !req.label.is_unsolicited() {
                continue;
            }
            let key = PathKey {
                vp: req.decoy.vp,
                dst: req.decoy.dst(),
                protocol: req.decoy.protocol,
            };
            triggering.entry(key).or_default().insert(&req.decoy.domain);
            paths
                .entry(key)
                .and_modify(|p| {
                    p.unsolicited += 1;
                    p.first_unsolicited_at = p.first_unsolicited_at.min(req.arrival.at);
                })
                .or_insert(ProblematicPath {
                    key,
                    unsolicited: 1,
                    first_unsolicited_at: req.arrival.at,
                    decoys_triggering: 0,
                });
        }
        for (key, path) in paths.iter_mut() {
            path.decoys_triggering = triggering.get(key).map(|s| s.len()).unwrap_or(0);
        }
        paths
    }

    /// All paths probed for a protocol (problematic or not): the Figure-3
    /// denominator is (VPs × destinations).
    pub fn total_paths(&self, protocol: DecoyProtocol) -> usize {
        let mut keys: std::collections::BTreeSet<(VpId, Ipv4Addr)> =
            std::collections::BTreeSet::new();
        for decoy in self.registry.iter() {
            if decoy.protocol == protocol {
                keys.insert((decoy.vp, decoy.dst()));
            }
        }
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_packet::dns::DnsName;

    fn zone() -> DnsName {
        DnsName::parse("www.experiment.example").unwrap()
    }

    fn registry_with(protocol: DecoyProtocol) -> (DecoyRegistry, DecoyRecord) {
        let mut reg = DecoyRegistry::new(zone());
        let rec = reg.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(77, 88, 8, 8),
            protocol,
            64,
            SimTime(1_000),
            None,
        );
        (reg, rec)
    }

    fn arrival(domain: &DnsName, at: u64, proto: ArrivalProtocol) -> Arrival {
        Arrival {
            at: SimTime(at),
            src: Ipv4Addr::new(8, 8, 8, 8),
            protocol: proto,
            domain: domain.clone(),
            http_path: None,
            honeypot: "AUTH".into(),
        }
    }

    #[test]
    fn first_dns_arrival_is_solicited_then_repeats_are_not() {
        let (reg, rec) = registry_with(DecoyProtocol::Dns);
        let correlator = Correlator::new(&reg);
        let arrivals = vec![
            arrival(&rec.domain, 2_000, ArrivalProtocol::Dns),
            arrival(&rec.domain, 60_000, ArrivalProtocol::Dns),
            arrival(&rec.domain, 86_400_000, ArrivalProtocol::Dns),
        ];
        let out = correlator.correlate(&arrivals);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].label, UnsolicitedLabel::SolicitedResolution);
        assert_eq!(out[1].label, UnsolicitedLabel::RepeatedDnsQuery);
        assert_eq!(out[2].label, UnsolicitedLabel::RepeatedDnsQuery);
        assert_eq!(out[2].interval, SimDuration::from_millis(86_399_000));
    }

    #[test]
    fn http_and_tls_arrivals_always_unsolicited() {
        let (reg, rec) = registry_with(DecoyProtocol::Dns);
        let correlator = Correlator::new(&reg);
        let out = correlator.correlate(&[
            arrival(&rec.domain, 5_000, ArrivalProtocol::Http),
            arrival(&rec.domain, 6_000, ArrivalProtocol::Https),
        ]);
        assert!(out
            .iter()
            .all(|r| r.label == UnsolicitedLabel::HttpTlsArrival));
        assert_eq!(out[0].combo(), "DNS-HTTP");
        assert_eq!(out[1].combo(), "DNS-HTTPS");
    }

    #[test]
    fn dns_arrival_for_http_decoy_is_cross_protocol() {
        let (reg, rec) = registry_with(DecoyProtocol::Http);
        let correlator = Correlator::new(&reg);
        let out = correlator.correlate(&[arrival(&rec.domain, 9_000, ArrivalProtocol::Dns)]);
        assert_eq!(out[0].label, UnsolicitedLabel::CrossProtocol);
        assert_eq!(out[0].combo(), "HTTP-DNS");
        assert!(out[0].label.is_unsolicited());
    }

    #[test]
    fn replication_noise_window() {
        let (reg, rec) = registry_with(DecoyProtocol::Dns);
        let correlator = Correlator::new(&reg);
        let out = correlator.correlate(&[
            arrival(&rec.domain, 2_000, ArrivalProtocol::Dns),
            arrival(&rec.domain, 2_500, ArrivalProtocol::Dns), // replication
            arrival(&rec.domain, 30_000, ArrivalProtocol::Dns), // retry
        ]);
        assert_eq!(out[1].label, UnsolicitedLabel::ReplicationNoise);
        assert!(!out[1].label.is_unsolicited());
        assert_eq!(out[2].label, UnsolicitedLabel::RepeatedDnsQuery);
    }

    #[test]
    fn unknown_domains_dropped() {
        let (reg, _) = registry_with(DecoyProtocol::Dns);
        let correlator = Correlator::new(&reg);
        let foreign = zone().prepend("not-a-decoy").unwrap();
        let out = correlator.correlate(&[arrival(&foreign, 1, ArrivalProtocol::Dns)]);
        assert!(out.is_empty());
    }

    #[test]
    fn problematic_paths_aggregate() {
        let mut reg = DecoyRegistry::new(zone());
        let a = reg.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(77, 88, 8, 8),
            DecoyProtocol::Dns,
            64,
            SimTime(1_000),
            None,
        );
        let b = reg.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(77, 88, 8, 8),
            DecoyProtocol::Dns,
            64,
            SimTime(2_000),
            None,
        );
        let correlator = Correlator::new(&reg);
        let out = correlator.correlate(&[
            arrival(&a.domain, 3_000, ArrivalProtocol::Dns), // solicited
            arrival(&a.domain, 90_000, ArrivalProtocol::Dns), // unsolicited
            arrival(&a.domain, 95_000, ArrivalProtocol::Http), // unsolicited
            arrival(&b.domain, 4_000, ArrivalProtocol::Dns), // solicited
        ]);
        let paths = correlator.problematic_paths(&out);
        assert_eq!(paths.len(), 1);
        let path = paths.values().next().unwrap();
        assert_eq!(path.unsolicited, 2);
        assert_eq!(path.decoys_triggering, 1, "only decoy A triggered");
        assert_eq!(correlator.total_paths(DecoyProtocol::Dns), 1);
    }
}
