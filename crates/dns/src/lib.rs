//! # shadow-dns
//!
//! The DNS side of the simulated world:
//!
//! * [`catalog`] — the paper's Table 4: 20 large public resolvers (with
//!   their real anycast addresses), one self-built resolver, the 13 root
//!   servers and 2 TLD servers that DNS decoys target;
//! * [`profile`] — per-resolver behaviour: caching, benign retry habits
//!   ("DNS zombies"), and — for the shadowing exhibitors the paper finds —
//!   replay policies wired to probe origins;
//! * [`resolver`] — the recursive resolver host implementation;
//! * [`authoritative`] — static authoritative servers (roots, TLDs) that
//!   answer with referrals and exhibit no shadowing, matching the paper's
//!   control observations.

pub mod authoritative;
pub mod catalog;
pub mod profile;
pub mod resolver;

pub use authoritative::StaticAuthorityHost;
pub use catalog::{
    pair_address, DnsDestination, DnsDestinationKind, ShadowClass, DNS_DESTINATIONS,
};
pub use profile::{ResolverProfile, RetryHabit, ShadowingConfig};
pub use resolver::RecursiveResolverHost;
