//! The paper's Table 4: every DNS server decoys are sent to.
//!
//! 20 large public resolvers (selected by APNIC use metrics in the paper),
//! one self-built control resolver, the 13 root servers, and 2 TLD
//! authoritative servers. Real addresses are kept so reproduced tables read
//! like the original; the simulated world registers these prefixes
//! explicitly (the allocator withholds them).

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// What kind of destination a DNS decoy targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnsDestinationKind {
    PublicResolver,
    SelfBuiltResolver,
    Root,
    Tld,
}

/// Ground-truth shadowing class of a destination, mirroring the landscape
/// the paper reports (Figure 3 / Section 5.1). The measurement pipeline
/// never reads this — it must rediscover it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShadowClass {
    /// Member of Resolver_h with near-total shadowing (Yandex: >99% of
    /// decoys shadowed; OneDNS; DNSPAI).
    Heavy,
    /// Heavy, but only at anycast instances in China (the 114DNS case).
    HeavyCnAnycast,
    /// Member of Resolver_h with a moderate ratio (Vercara).
    Moderate,
    /// Benign implementation retries only (95% of unsolicited requests
    /// within one minute, all DNS-DNS).
    Benign,
    /// No unsolicited traffic at all (roots, TLDs, the control resolver).
    None,
}

/// One Table-4 destination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsDestination {
    pub name: &'static str,
    pub addr: Ipv4Addr,
    pub kind: DnsDestinationKind,
    /// Operator AS (for registering the address in the simulated world).
    pub operator_asn: u32,
    /// Country the primary instance sits in.
    pub country: &'static str,
    pub shadow_class: ShadowClass,
}

const fn dest(
    name: &'static str,
    addr: [u8; 4],
    kind: DnsDestinationKind,
    operator_asn: u32,
    country: &'static str,
    shadow_class: ShadowClass,
) -> DnsDestination {
    DnsDestination {
        name,
        addr: Ipv4Addr::new(addr[0], addr[1], addr[2], addr[3]),
        kind,
        operator_asn,
        country,
        shadow_class,
    }
}

use DnsDestinationKind::{PublicResolver, Root, SelfBuiltResolver, Tld};

/// All 36 destinations of Table 4. The self-built resolver's address is a
/// placeholder the world builder replaces ("–" in the paper).
pub const DNS_DESTINATIONS: &[DnsDestination] = &[
    dest(
        "Cloudflare",
        [1, 1, 1, 1],
        PublicResolver,
        13335,
        "US",
        ShadowClass::Benign,
    ),
    dest(
        "CNNIC",
        [1, 2, 4, 8],
        PublicResolver,
        24151,
        "CN",
        ShadowClass::Benign,
    ),
    dest(
        "DNS PAI",
        [101, 226, 4, 6],
        PublicResolver,
        17964,
        "CN",
        ShadowClass::Heavy,
    ),
    dest(
        "DNSPod",
        [119, 29, 29, 29],
        PublicResolver,
        45090,
        "CN",
        ShadowClass::Benign,
    ),
    dest(
        "DNS.Watch",
        [84, 200, 69, 80],
        PublicResolver,
        8972,
        "DE",
        ShadowClass::Benign,
    ),
    dest(
        "Oracle Dyn",
        [216, 146, 35, 35],
        PublicResolver,
        33517,
        "US",
        ShadowClass::Benign,
    ),
    dest(
        "Google",
        [8, 8, 8, 8],
        PublicResolver,
        15169,
        "US",
        ShadowClass::Benign,
    ),
    dest(
        "Hurricane",
        [74, 82, 42, 42],
        PublicResolver,
        6939,
        "US",
        ShadowClass::Benign,
    ),
    dest(
        "Level3",
        [209, 244, 0, 3],
        PublicResolver,
        3356,
        "US",
        ShadowClass::Benign,
    ),
    dest(
        "VERCARA",
        [156, 154, 70, 1],
        PublicResolver,
        12222,
        "US",
        ShadowClass::Moderate,
    ),
    dest(
        "One DNS",
        [117, 50, 10, 10],
        PublicResolver,
        4788,
        "CN",
        ShadowClass::Heavy,
    ),
    dest(
        "OpenDNS",
        [208, 67, 222, 222],
        PublicResolver,
        36692,
        "US",
        ShadowClass::Benign,
    ),
    dest(
        "Open NIC",
        [217, 160, 166, 161],
        PublicResolver,
        51559,
        "TR",
        ShadowClass::Benign,
    ),
    dest(
        "Quad9",
        [9, 9, 9, 9],
        PublicResolver,
        19281,
        "US",
        ShadowClass::Benign,
    ),
    dest(
        "Yandex",
        [77, 88, 8, 8],
        PublicResolver,
        13238,
        "RU",
        ShadowClass::Heavy,
    ),
    dest(
        "SafeDNS",
        [195, 46, 39, 39],
        PublicResolver,
        197988,
        "RU",
        ShadowClass::Benign,
    ),
    dest(
        "Freenom",
        [80, 80, 80, 80],
        PublicResolver,
        42473,
        "NL",
        ShadowClass::Benign,
    ),
    dest(
        "Baidu",
        [180, 76, 76, 76],
        PublicResolver,
        38365,
        "CN",
        ShadowClass::Benign,
    ),
    dest(
        "114DNS",
        [114, 114, 114, 114],
        PublicResolver,
        23724,
        "CN",
        ShadowClass::HeavyCnAnycast,
    ),
    dest(
        "Quad101",
        [101, 101, 101, 101],
        PublicResolver,
        131657,
        "TW",
        ShadowClass::Benign,
    ),
    dest(
        "self-built",
        [203, 0, 113, 53],
        SelfBuiltResolver,
        0,
        "US",
        ShadowClass::None,
    ),
    dest(
        "a.root",
        [198, 41, 0, 4],
        Root,
        397197,
        "US",
        ShadowClass::None,
    ),
    dest(
        "b.root",
        [170, 247, 170, 2],
        Root,
        394353,
        "US",
        ShadowClass::None,
    ),
    dest(
        "c.root",
        [192, 33, 4, 12],
        Root,
        2149,
        "US",
        ShadowClass::None,
    ),
    dest(
        "d.root",
        [199, 7, 91, 13],
        Root,
        10886,
        "US",
        ShadowClass::None,
    ),
    dest(
        "e.root",
        [192, 203, 230, 10],
        Root,
        21556,
        "US",
        ShadowClass::None,
    ),
    dest(
        "f.root",
        [192, 5, 5, 241],
        Root,
        3557,
        "US",
        ShadowClass::None,
    ),
    dest(
        "g.root",
        [192, 112, 36, 4],
        Root,
        5927,
        "US",
        ShadowClass::None,
    ),
    dest(
        "h.root",
        [198, 97, 190, 53],
        Root,
        1508,
        "US",
        ShadowClass::None,
    ),
    dest(
        "i.root",
        [192, 36, 148, 17],
        Root,
        29216,
        "SE",
        ShadowClass::None,
    ),
    dest(
        "j.root",
        [192, 58, 128, 30],
        Root,
        26415,
        "US",
        ShadowClass::None,
    ),
    dest(
        "k.root",
        [193, 0, 14, 129],
        Root,
        25152,
        "NL",
        ShadowClass::None,
    ),
    dest(
        "l.root",
        [199, 7, 83, 42],
        Root,
        20144,
        "US",
        ShadowClass::None,
    ),
    dest(
        "m.root",
        [202, 12, 27, 33],
        Root,
        7500,
        "JP",
        ShadowClass::None,
    ),
    dest(
        ".com",
        [192, 12, 94, 30],
        Tld,
        36622,
        "US",
        ShadowClass::None,
    ),
    dest(
        ".org",
        [199, 19, 57, 1],
        Tld,
        26415,
        "US",
        ShadowClass::None,
    ),
];

/// The five resolvers the paper groups as Resolver_h (most problematic
/// paths: Yandex, 114DNS, OneDNS, DNSPAI, Vercara).
pub fn resolver_h() -> Vec<&'static DnsDestination> {
    DNS_DESTINATIONS
        .iter()
        .filter(|d| {
            matches!(
                d.shadow_class,
                ShadowClass::Heavy | ShadowClass::HeavyCnAnycast | ShadowClass::Moderate
            )
        })
        .collect()
}

/// The pair-resolver address of a target (Appendix E): another address in
/// the same /24 that offers no DNS service — e.g. 1.1.1.4 for 1.1.1.1.
pub fn pair_address(addr: Ipv4Addr) -> Ipv4Addr {
    let o = addr.octets();
    // +3 like the paper's example; wrap within the /24 and avoid landing on
    // the original or the network/broadcast addresses.
    let mut last = o[3].wrapping_add(3);
    if last == o[3] || last == 0 || last == 255 {
        last = last.wrapping_add(1).max(1);
        if last == o[3] {
            last = last.wrapping_add(1);
        }
    }
    Ipv4Addr::new(o[0], o[1], o[2], last)
}

/// Look a destination up by address.
pub fn destination_by_addr(addr: Ipv4Addr) -> Option<&'static DnsDestination> {
    DNS_DESTINATIONS.iter().find(|d| d.addr == addr)
}

/// Look a destination up by name.
pub fn destination_by_name(name: &str) -> Option<&'static DnsDestination> {
    DNS_DESTINATIONS.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_counts_match_paper() {
        assert_eq!(DNS_DESTINATIONS.len(), 36, "36 destinations total");
        let publics = DNS_DESTINATIONS
            .iter()
            .filter(|d| d.kind == PublicResolver)
            .count();
        assert_eq!(publics, 20, "20 public resolvers");
        let roots = DNS_DESTINATIONS.iter().filter(|d| d.kind == Root).count();
        assert_eq!(roots, 13, "13 roots");
        let tlds = DNS_DESTINATIONS.iter().filter(|d| d.kind == Tld).count();
        assert_eq!(tlds, 2, "2 TLDs");
        assert_eq!(
            DNS_DESTINATIONS
                .iter()
                .filter(|d| d.kind == SelfBuiltResolver)
                .count(),
            1
        );
    }

    #[test]
    fn resolver_h_members() {
        let names: Vec<_> = resolver_h().iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 5);
        for expected in ["Yandex", "114DNS", "One DNS", "DNS PAI", "VERCARA"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn addresses_unique() {
        let mut addrs: Vec<_> = DNS_DESTINATIONS.iter().map(|d| d.addr).collect();
        addrs.sort();
        let n = addrs.len();
        addrs.dedup();
        assert_eq!(addrs.len(), n);
    }

    #[test]
    fn known_addresses_present() {
        assert_eq!(
            destination_by_name("Google").unwrap().addr,
            Ipv4Addr::new(8, 8, 8, 8)
        );
        assert_eq!(
            destination_by_name("114DNS").unwrap().addr,
            Ipv4Addr::new(114, 114, 114, 114)
        );
        assert_eq!(
            destination_by_addr(Ipv4Addr::new(77, 88, 8, 8))
                .unwrap()
                .name,
            "Yandex"
        );
    }

    #[test]
    fn pair_address_shape() {
        // The paper's own example: 1.1.1.4 pairs 1.1.1.1.
        assert_eq!(
            pair_address(Ipv4Addr::new(1, 1, 1, 1)),
            Ipv4Addr::new(1, 1, 1, 4)
        );
        for d in DNS_DESTINATIONS {
            let pair = pair_address(d.addr);
            let (a, b) = (d.addr.octets(), pair.octets());
            assert_eq!(&a[..3], &b[..3], "same /24 for {}", d.name);
            assert_ne!(a[3], b[3], "distinct host for {}", d.name);
            assert_ne!(b[3], 0);
            assert_ne!(b[3], 255);
            // The pair must not collide with another real destination.
            assert!(
                destination_by_addr(pair).is_none(),
                "{} pair collides",
                d.name
            );
        }
    }

    #[test]
    fn shadow_classes_match_findings() {
        assert_eq!(
            destination_by_name("Yandex").unwrap().shadow_class,
            ShadowClass::Heavy
        );
        assert_eq!(
            destination_by_name("114DNS").unwrap().shadow_class,
            ShadowClass::HeavyCnAnycast
        );
        assert_eq!(
            destination_by_name("Google").unwrap().shadow_class,
            ShadowClass::Benign
        );
        assert_eq!(
            destination_by_name("a.root").unwrap().shadow_class,
            ShadowClass::None
        );
    }
}
