//! Static authoritative servers: the roots, TLDs, and any zone server that
//! answers deterministically and exhibits no shadowing — the paper's
//! control destinations ("we only find those sent to popular public
//! resolvers subject to traffic shadowing, while those to authoritative
//! servers and our control resolver are not").

use shadow_netsim::engine::{Ctx, Host};
use shadow_netsim::time::SimTime;
use shadow_netsim::transport::Transport;
use shadow_packet::dns::{DnsClass, DnsMessage, DnsName, DnsRecord, Rcode, RecordData, RecordType};
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::udp::UdpDatagram;
use std::any::Any;
use std::net::Ipv4Addr;

/// How the server answers queries outside any configured zone data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthorityMode {
    /// Refer the querier downward (what roots/TLDs do): NoError with an NS
    /// record in the authority section.
    Referral,
    /// Plain NXDOMAIN.
    Nxdomain,
}

/// One logged query (kept so experiments can verify "no unsolicited traffic
/// from these destinations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthorityLogEntry {
    pub at: SimTime,
    pub src: Ipv4Addr,
    pub qname: DnsName,
}

/// A static authority host.
pub struct StaticAuthorityHost {
    addr: Ipv4Addr,
    /// Name advertised in referral NS records.
    ns_name: DnsName,
    mode: AuthorityMode,
    /// Exact-match A records it owns ((name, addr)).
    records: Vec<(DnsName, Ipv4Addr)>,
    pub log: Vec<AuthorityLogEntry>,
}

impl StaticAuthorityHost {
    pub fn new(addr: Ipv4Addr, ns_name: &str, mode: AuthorityMode) -> Self {
        Self {
            addr,
            ns_name: DnsName::parse(ns_name).expect("valid NS name"),
            mode,
            records: Vec::new(),
            log: Vec::new(),
        }
    }

    /// Add an exact-match A record.
    pub fn with_record(mut self, name: &str, addr: Ipv4Addr) -> Self {
        self.records
            .push((DnsName::parse(name).expect("valid record name"), addr));
        self
    }

    pub fn queries_seen(&self) -> usize {
        self.log.len()
    }
}

impl Host for StaticAuthorityHost {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        let Ok(Transport::Udp(dg)) = Transport::parse(&pkt) else {
            return;
        };
        if dg.dst_port != 53 {
            return;
        }
        let Ok(query) = DnsMessage::decode(&dg.payload) else {
            return;
        };
        if query.flags.response {
            return;
        }
        let Some(qname) = query.qname().cloned() else {
            return;
        };
        self.log.push(AuthorityLogEntry {
            at: ctx.now(),
            src: pkt.header.src,
            qname: qname.clone(),
        });

        let response = if let Some(&(_, addr)) = self.records.iter().find(|(n, _)| *n == qname) {
            DnsMessage::response(
                &query,
                true,
                Rcode::NoError,
                vec![DnsRecord::a(qname.clone(), 3600, addr)],
            )
        } else {
            match self.mode {
                AuthorityMode::Referral => {
                    let mut resp = DnsMessage::response(&query, false, Rcode::NoError, Vec::new());
                    resp.authorities.push(DnsRecord {
                        name: qname.parent().unwrap_or_else(DnsName::root),
                        rtype: RecordType::Ns,
                        class: DnsClass::In,
                        ttl: 172_800,
                        data: RecordData::Ns(self.ns_name.clone()),
                    });
                    resp
                }
                AuthorityMode::Nxdomain => {
                    DnsMessage::response(&query, true, Rcode::NxDomain, Vec::new())
                }
            }
        };
        ctx.send(Ipv4Packet::new(
            self.addr,
            pkt.header.src,
            IpProtocol::Udp,
            DEFAULT_TTL,
            0,
            UdpDatagram::new(53, dg.src_port, response.encode()).encode(),
        ));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_geo::{Asn, Region};
    use shadow_netsim::engine::Engine;
    use shadow_netsim::topology::TopologyBuilder;

    struct Sink {
        packets: Vec<Ipv4Packet>,
    }

    impl Host for Sink {
        fn on_packet(&mut self, pkt: Ipv4Packet, _ctx: &mut Ctx<'_>) {
            self.packets.push(pkt);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn world() -> (
        Engine,
        shadow_netsim::NodeId,
        shadow_netsim::NodeId,
        Ipv4Addr,
        Ipv4Addr,
    ) {
        let mut tb = TopologyBuilder::new(2);
        tb.add_as(Asn(1), Region::Europe);
        tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
            .unwrap();
        let client_addr = Ipv4Addr::new(1, 1, 0, 1);
        let auth_addr = Ipv4Addr::new(1, 1, 0, 53);
        let client = tb.add_host(Asn(1), client_addr).unwrap();
        let auth = tb.add_host(Asn(1), auth_addr).unwrap();
        (
            Engine::new(tb.build().unwrap()),
            client,
            auth,
            client_addr,
            auth_addr,
        )
    }

    fn query(src: Ipv4Addr, dst: Ipv4Addr, name: &str) -> Ipv4Packet {
        let q = DnsMessage::query(7, DnsName::parse(name).unwrap());
        Ipv4Packet::new(
            src,
            dst,
            IpProtocol::Udp,
            DEFAULT_TTL,
            0,
            UdpDatagram::new(5000, 53, q.encode()).encode(),
        )
    }

    #[test]
    fn answers_owned_records() {
        let (mut engine, client, auth, client_addr, auth_addr) = world();
        engine.add_host(
            auth,
            Box::new(
                StaticAuthorityHost::new(auth_addr, "ns.example", AuthorityMode::Nxdomain)
                    .with_record("www.example", Ipv4Addr::new(93, 184, 216, 34)),
            ),
        );
        engine.add_host(
            client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        engine.inject(
            SimTime::ZERO,
            client,
            query(client_addr, auth_addr, "www.example"),
        );
        engine.run_to_completion();
        let sink = engine.host_as::<Sink>(client).unwrap();
        let dg = UdpDatagram::decode(&sink.packets[0].payload).unwrap();
        let resp = DnsMessage::decode(&dg.payload).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert!(resp.flags.authoritative);
        assert_eq!(
            resp.answers[0].data,
            RecordData::A(Ipv4Addr::new(93, 184, 216, 34))
        );
    }

    #[test]
    fn referral_mode_returns_authority_section() {
        let (mut engine, client, auth, client_addr, auth_addr) = world();
        engine.add_host(
            auth,
            Box::new(StaticAuthorityHost::new(
                auth_addr,
                "a.gtld-servers.net",
                AuthorityMode::Referral,
            )),
        );
        engine.add_host(
            client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        engine.inject(
            SimTime::ZERO,
            client,
            query(client_addr, auth_addr, "decoy.www.experiment.example"),
        );
        engine.run_to_completion();
        let sink = engine.host_as::<Sink>(client).unwrap();
        let dg = UdpDatagram::decode(&sink.packets[0].payload).unwrap();
        let resp = DnsMessage::decode(&dg.payload).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NoError);
        assert!(resp.answers.is_empty());
        assert_eq!(resp.authorities.len(), 1);
        let auth_host = engine.host_as::<StaticAuthorityHost>(auth).unwrap();
        assert_eq!(auth_host.queries_seen(), 1);
    }

    #[test]
    fn nxdomain_mode() {
        let (mut engine, client, auth, client_addr, auth_addr) = world();
        engine.add_host(
            auth,
            Box::new(StaticAuthorityHost::new(
                auth_addr,
                "ns.example",
                AuthorityMode::Nxdomain,
            )),
        );
        engine.add_host(
            client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        engine.inject(
            SimTime::ZERO,
            client,
            query(client_addr, auth_addr, "missing.example"),
        );
        engine.run_to_completion();
        let sink = engine.host_as::<Sink>(client).unwrap();
        let dg = UdpDatagram::decode(&sink.packets[0].payload).unwrap();
        let resp = DnsMessage::decode(&dg.payload).unwrap();
        assert_eq!(resp.flags.rcode, Rcode::NxDomain);
    }

    #[test]
    fn logs_every_query_and_never_probes() {
        // The control property: authoritative servers see the decoy once
        // and nothing ever comes back unsolicited.
        let (mut engine, client, auth, client_addr, auth_addr) = world();
        engine.add_host(
            auth,
            Box::new(StaticAuthorityHost::new(
                auth_addr,
                "ns.example",
                AuthorityMode::Referral,
            )),
        );
        engine.add_host(
            client,
            Box::new(Sink {
                packets: Vec::new(),
            }),
        );
        for i in 0..5 {
            engine.inject(
                SimTime(i * 1_000),
                client,
                query(
                    client_addr,
                    auth_addr,
                    &format!("d{i}.www.experiment.example"),
                ),
            );
        }
        let events = engine.run_to_completion();
        let auth_host = engine.host_as::<StaticAuthorityHost>(auth).unwrap();
        assert_eq!(auth_host.queries_seen(), 5);
        // Bounded event count: 5 queries + 5 responses worth of hops only.
        assert!(events < 100, "no probe storm from a control authority");
    }
}
