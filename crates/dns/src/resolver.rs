//! The recursive resolver host.
//!
//! Implements the behaviour DNS decoys actually meet at a public resolver:
//! caching, upstream recursion to the zone's authoritative server, query
//! coalescing, benign duplicate queries (the within-one-minute DNS-DNS
//! unsolicited requests the paper attributes to implementation choices),
//! and — on exhibitor instances — the shadowing pipeline that schedules
//! probes hours or days later.

use crate::profile::ResolverProfile;
use rand::Rng;
use shadow_netsim::engine::{Ctx, Host};
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_netsim::transport::Transport;
use shadow_observer::retention::RetentionStore;
use shadow_packet::dns::{DnsMessage, DnsName, DnsRecord, Rcode};
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::udp::UdpDatagram;
use std::any::Any;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Counters for tests and ground-truth bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    pub client_queries: u64,
    pub encrypted_queries: u64,
    pub cache_refreshes: u64,
    pub cache_hits: u64,
    pub upstream_queries: u64,
    pub benign_retries: u64,
    pub shadow_probes_scheduled: u64,
    pub nxdomain_answers: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    answers: Vec<DnsRecord>,
    expires: SimTime,
}

/// How a client reached the resolver — plain UDP/53 or the encrypted
/// channel. Determines how the answer is framed, and nothing else: the
/// resolver decrypts and "sees everything" either way (the paper's §6
/// point about destination-side collection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientTransport {
    Plain,
    Encrypted { nonce: u32 },
}

#[derive(Debug)]
struct PendingResolution {
    qname: DnsName,
    /// Clients waiting: (address, UDP port, original query id, transport).
    clients: Vec<(Ipv4Addr, u16, u16, ClientTransport)>,
}

/// A recursive resolver bound to one topology node. For anycast services
/// (e.g. 114DNS) several instances share the service address, each with its
/// own profile — the paper's case study II (CN instances shadow, US do not)
/// is expressed exactly this way.
pub struct RecursiveResolverHost {
    /// Service address clients query (possibly anycast).
    service_addr: Ipv4Addr,
    /// Unicast egress address upstream queries leave from, so responses
    /// return to *this* instance (aliased to the same node).
    egress_addr: Ipv4Addr,
    profile: ResolverProfile,
    /// zone apex → authoritative server address.
    zones: Vec<(DnsName, Ipv4Addr)>,
    cache: HashMap<DnsName, CacheEntry>,
    pending: HashMap<u16, PendingResolution>,
    /// Coalescing index: in-flight qname → upstream id.
    in_flight: HashMap<DnsName, u16>,
    /// Timer token → qname for benign duplicate queries.
    retry_tokens: HashMap<u64, DnsName>,
    /// Timer token → qname for active cache refreshes.
    refresh_tokens: HashMap<u64, DnsName>,
    next_token: u64,
    shadow_store: Option<RetentionStore>,
    next_upstream_id: u16,
    pub stats: ResolverStats,
}

impl RecursiveResolverHost {
    pub fn new(
        service_addr: Ipv4Addr,
        egress_addr: Ipv4Addr,
        profile: ResolverProfile,
        zones: Vec<(DnsName, Ipv4Addr)>,
    ) -> Self {
        let shadow_store = profile
            .shadowing
            .as_ref()
            .map(|cfg| RetentionStore::new(cfg.retention_capacity, cfg.retention_ttl));
        Self {
            service_addr,
            egress_addr,
            profile,
            zones,
            cache: HashMap::new(),
            pending: HashMap::new(),
            in_flight: HashMap::new(),
            retry_tokens: HashMap::new(),
            refresh_tokens: HashMap::new(),
            next_token: 1,
            shadow_store,
            next_upstream_id: 1,
            stats: ResolverStats::default(),
        }
    }

    pub fn profile(&self) -> &ResolverProfile {
        &self.profile
    }

    fn zone_for(&self, qname: &DnsName) -> Option<Ipv4Addr> {
        self.zones
            .iter()
            .filter(|(zone, _)| qname.is_subdomain_of(zone))
            .max_by_key(|(zone, _)| zone.label_count())
            .map(|&(_, addr)| addr)
    }

    fn udp_to(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Ipv4Packet {
        Ipv4Packet::new(
            src,
            dst,
            IpProtocol::Udp,
            DEFAULT_TTL,
            0,
            UdpDatagram::new(src_port, dst_port, payload).encode(),
        )
    }

    fn respond(
        &self,
        client: (Ipv4Addr, u16, u16, ClientTransport),
        qname: &DnsName,
        rcode: Rcode,
        answers: Vec<DnsRecord>,
        ctx: &mut Ctx<'_>,
    ) {
        let (addr, port, id, transport) = client;
        let template = DnsMessage::query(id, qname.clone());
        let response = DnsMessage::response(&template, false, rcode, answers);
        let (src_port, payload) = match transport {
            ClientTransport::Plain => (53, response.encode()),
            ClientTransport::Encrypted { nonce } => (
                shadow_packet::doq::DOQ_PORT,
                shadow_packet::doq::seal(&response, nonce.wrapping_add(1)),
            ),
        };
        ctx.send(self.udp_to(self.service_addr, addr, src_port, port, payload));
    }

    fn send_upstream(&mut self, qname: &DnsName, auth: Ipv4Addr, ctx: &mut Ctx<'_>) -> u16 {
        let id = self.next_upstream_id;
        self.next_upstream_id = self.next_upstream_id.wrapping_add(1).max(1);
        let query = DnsMessage::query(id, qname.clone());
        self.stats.upstream_queries += 1;
        if let Some(m) = ctx.telemetry().metrics() {
            m.resolver_upstream_queries.inc();
        }
        ctx.send(self.udp_to(self.egress_addr, auth, 53, 53, query.encode()));
        id
    }

    /// The shadowing hook: run on every *new* client qname.
    fn maybe_shadow(&mut self, qname: &DnsName, ctx: &mut Ctx<'_>) {
        let Some(cfg) = self.profile.shadowing.clone() else {
            return;
        };
        let store = self
            .shadow_store
            .as_mut()
            .expect("store exists when shadowing configured");
        let (orders, plan) = shadow_observer::scheduler::plan_probes(
            &cfg.policy,
            store,
            &cfg.origins,
            self.profile.seed ^ RESOLVER_SEED_SALT,
            qname,
            shadow_observer::ObservedProtocol::Dns,
            ctx.now(),
            &self.profile.name,
        );
        if plan.capacity_evictions > 0 {
            if let Some(m) = ctx.telemetry().metrics() {
                m.retention_capacity_evictions.add(plan.capacity_evictions);
            }
        }
        self.stats.shadow_probes_scheduled += u64::from(plan.probes);
        if plan.probes > 0 {
            let telemetry = ctx.telemetry();
            if let Some(m) = telemetry.metrics() {
                m.shadow_probes_scheduled.add(u64::from(plan.probes));
            }
            telemetry.event(ctx.now().millis(), Some(ctx.node().0), || {
                shadow_telemetry::EventKind::ShadowProbeScheduled {
                    domain: qname.as_str().to_string(),
                }
            });
        }
        for (origin, delay, order) in orders {
            ctx.post(origin, delay, Box::new(order));
        }
    }

    fn on_client_query(
        &mut self,
        src: Ipv4Addr,
        src_port: u16,
        query: DnsMessage,
        transport: ClientTransport,
        ctx: &mut Ctx<'_>,
    ) {
        let Some(qname) = query.qname().cloned() else {
            return;
        };
        self.stats.client_queries += 1;
        if let Some(m) = ctx.telemetry().metrics() {
            m.resolver_queries.inc();
        }
        if transport != ClientTransport::Plain {
            self.stats.encrypted_queries += 1;
        }
        let client = (src, src_port, query.id, transport);

        self.maybe_shadow(&qname, ctx);

        // Cache.
        if self.profile.cache_enabled {
            if let Some(entry) = self.cache.get(&qname) {
                if entry.expires > ctx.now() {
                    self.stats.cache_hits += 1;
                    if let Some(m) = ctx.telemetry().metrics() {
                        m.resolver_cache_hits.inc();
                    }
                    let answers = entry.answers.clone();
                    self.respond(client, &qname, Rcode::NoError, answers, ctx);
                    return;
                }
                self.cache.remove(&qname);
            }
        }

        // Which authoritative serves this name?
        let Some(auth) = self.zone_for(&qname) else {
            self.stats.nxdomain_answers += 1;
            self.respond(client, &qname, Rcode::NxDomain, Vec::new(), ctx);
            return;
        };

        // Coalesce with an in-flight resolution for the same name.
        if let Some(&id) = self.in_flight.get(&qname) {
            if let Some(pending) = self.pending.get_mut(&id) {
                pending.clients.push(client);
                return;
            }
        }

        let id = self.send_upstream(&qname, auth, ctx);
        self.pending.insert(
            id,
            PendingResolution {
                qname: qname.clone(),
                clients: vec![client],
            },
        );
        self.in_flight.insert(qname.clone(), id);

        // Benign duplicate-query habit (the "DNS zombies" shape). The
        // decision is derived from (seed, qname, now) so it does not depend
        // on which other names this instance resolved before.
        if let Some(retry) = self.profile.retry.clone() {
            let mut rng = shadow_observer::scheduler::observation_rng(
                self.profile.seed ^ RETRY_SEED_SALT,
                &qname,
                ctx.now(),
            );
            if rng.gen_range(0..100u32) < u32::from(retry.percent) {
                for _ in 0..retry.count {
                    let delay = retry.delay.sample(&mut rng);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.retry_tokens.insert(token, qname.clone());
                    ctx.timer(delay, token);
                }
            }
        }
    }

    fn on_upstream_response(&mut self, msg: DnsMessage, ctx: &mut Ctx<'_>) {
        let Some(pending) = self.pending.remove(&msg.id) else {
            return; // duplicate answer or a benign retry's response
        };
        self.in_flight.remove(&pending.qname);
        let rcode = msg.flags.rcode;
        if self.profile.cache_enabled && rcode == Rcode::NoError && !msg.answers.is_empty() {
            let ttl_secs = msg
                .answers
                .iter()
                .map(|rr| rr.ttl)
                .min()
                .unwrap_or(0)
                .min(self.profile.max_cache_ttl_secs);
            let ttl = SimDuration::from_secs(u64::from(ttl_secs));
            let refresh_due = !self.cache.contains_key(&pending.qname);
            self.cache.insert(
                pending.qname.clone(),
                CacheEntry {
                    answers: msg.answers.clone(),
                    expires: ctx.now() + ttl,
                },
            );
            // Active cache refreshing: re-resolve when the record expires
            // (one refresh per entry; real refreshers key on popularity).
            if self.profile.cache_refresh && refresh_due {
                let token = self.next_token;
                self.next_token += 1;
                self.refresh_tokens.insert(token, pending.qname.clone());
                ctx.timer(ttl, token);
            }
        }
        for client in pending.clients {
            self.respond(client, &pending.qname, rcode, msg.answers.clone(), ctx);
        }
    }
}

/// Seed diversifier so resolver RNG streams never collide with other
/// subsystems seeded from the same world seed.
const RESOLVER_SEED_SALT: u64 = 0x4e50_1ae5;
/// A second diversifier for the benign-retry stream, so retry decisions are
/// independent of the shadowing pipeline's draws for the same name.
const RETRY_SEED_SALT: u64 = 0x4e50_4e74;

impl Host for RecursiveResolverHost {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        let Ok(Transport::Udp(dg)) = Transport::parse(&pkt) else {
            return;
        };
        if dg.dst_port == shadow_packet::doq::DOQ_PORT {
            // Encrypted DNS: the terminating resolver decrypts and sees
            // everything (on-path observers cannot).
            let nonce = if dg.payload.len() >= 8 {
                u32::from_be_bytes([dg.payload[4], dg.payload[5], dg.payload[6], dg.payload[7]])
            } else {
                0
            };
            if let Ok(msg) = shadow_packet::doq::open(&dg.payload) {
                if !msg.flags.response {
                    self.on_client_query(
                        pkt.header.src,
                        dg.src_port,
                        msg,
                        ClientTransport::Encrypted { nonce },
                        ctx,
                    );
                }
            }
            return;
        }
        let Ok(msg) = DnsMessage::decode(&dg.payload) else {
            return;
        };
        if !msg.flags.response && dg.dst_port == 53 {
            self.on_client_query(
                pkt.header.src,
                dg.src_port,
                msg,
                ClientTransport::Plain,
                ctx,
            );
        } else if msg.flags.response && pkt.header.dst == self.egress_addr {
            self.on_upstream_response(msg, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        if let Some(qname) = self.refresh_tokens.remove(&token) {
            // Active cache refresh: the entry just expired; re-resolve it.
            self.cache.remove(&qname);
            if let Some(auth) = self.zone_for(&qname) {
                self.stats.cache_refreshes += 1;
                let id = self.send_upstream(&qname, auth, ctx);
                self.pending.insert(
                    id,
                    PendingResolution {
                        qname,
                        clients: Vec::new(),
                    },
                );
            }
            return;
        }
        // Benign duplicate upstream query ("DNS zombie").
        let Some(qname) = self.retry_tokens.remove(&token) else {
            return;
        };
        let Some(auth) = self.zone_for(&qname) else {
            return;
        };
        self.stats.benign_retries += 1;
        let id = self.send_upstream(&qname, auth, ctx);
        // Track it so a late answer doesn't confuse a live resolution, but
        // with no waiting clients.
        self.pending.insert(
            id,
            PendingResolution {
                qname: qname.clone(),
                clients: Vec::new(),
            },
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
