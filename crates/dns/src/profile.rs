//! Per-resolver behaviour profiles.
//!
//! A profile combines the benign machinery every resolver has (cache,
//! occasional duplicate upstream queries — APNIC's "DNS zombies") with the
//! optional shadowing hook that makes a resolver an exhibitor.

use serde::{Deserialize, Serialize};
use shadow_netsim::time::SimDuration;
use shadow_netsim::topology::NodeId;
use shadow_observer::policy::{DelayBucket, ReplayPolicy, WeightedChoice};

/// Benign duplicate-query habit ("implementation choices (e.g., intentional
/// retries)"). Distinct from shadowing: always DNS, always soon, sent from
/// the resolver itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryHabit {
    /// Percent of resolutions that trigger a duplicate upstream query.
    pub percent: u8,
    /// When the duplicate goes out.
    pub delay: DelayBucket,
    /// How many duplicates (usually 1).
    pub count: u32,
}

impl RetryHabit {
    /// The common benign profile: ~25% of resolutions re-query once within
    /// a minute (shaped to reproduce "95% of unsolicited requests arrive
    /// within 1 minute" for non-Resolver_h destinations).
    pub fn common() -> Self {
        Self {
            percent: 25,
            delay: DelayBucket::Seconds(2, 55),
            count: 1,
        }
    }
}

/// The shadowing hook of an exhibitor resolver.
#[derive(Debug, Clone)]
pub struct ShadowingConfig {
    /// When/what/how often to probe.
    pub policy: ReplayPolicy,
    /// Probe origins this exhibitor feeds (weighted — one data-analysis
    /// partner may dominate, cf. Figure 6's multi-AS fan-out for 114DNS).
    pub origins: Vec<WeightedChoice<NodeId>>,
    /// How long the exhibitor's pipeline retains data.
    pub retention_capacity: usize,
    pub retention_ttl: SimDuration,
}

/// Complete behaviour profile of one recursive resolver instance.
#[derive(Debug, Clone)]
pub struct ResolverProfile {
    /// Display name (catalog name, possibly with an instance suffix).
    pub name: String,
    /// Whether positive answers are cached (all real resolvers cache; the
    /// switch exists for experiments).
    pub cache_enabled: bool,
    /// Cap on cached-record TTLs, seconds (common operational practice).
    pub max_cache_ttl_secs: u32,
    /// Active cache refreshing: re-query upstream when a cached record's
    /// TTL expires. The paper considers this as an alternative explanation
    /// for unsolicited requests and falsifies it by the *absence* of
    /// re-query spikes at the wildcard-TTL (1 h) mark — enabling this flag
    /// reproduces the spike that would have appeared (see
    /// `tests/cache_refresh_spike.rs` in `shadow-dns`).
    pub cache_refresh: bool,
    pub retry: Option<RetryHabit>,
    pub shadowing: Option<ShadowingConfig>,
    /// RNG seed for this instance's behaviour.
    pub seed: u64,
}

impl ResolverProfile {
    /// A plain, well-behaved resolver.
    pub fn well_behaved(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            cache_enabled: true,
            max_cache_ttl_secs: 86_400,
            cache_refresh: false,
            retry: None,
            shadowing: None,
            seed,
        }
    }

    /// A resolver that actively refreshes expiring cache entries (the
    /// OpenDNS-style behaviour the paper rules out for its findings).
    pub fn with_cache_refresh(name: &str, seed: u64) -> Self {
        Self {
            cache_refresh: true,
            ..Self::well_behaved(name, seed)
        }
    }

    /// A resolver with the common benign retry habit.
    pub fn with_retries(name: &str, seed: u64) -> Self {
        Self {
            retry: Some(RetryHabit::common()),
            ..Self::well_behaved(name, seed)
        }
    }

    /// An exhibitor: retries plus a shadowing pipeline.
    pub fn shadowing(name: &str, seed: u64, config: ShadowingConfig) -> Self {
        config
            .policy
            .validate()
            .expect("shadowing policy must validate");
        assert!(
            !config.origins.is_empty(),
            "shadowing resolver needs probe origins"
        );
        Self {
            retry: Some(RetryHabit::common()),
            shadowing: Some(config),
            ..Self::well_behaved(name, seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_observer::policy::ProbeKind;

    #[test]
    fn builders_compose() {
        let plain = ResolverProfile::well_behaved("control", 1);
        assert!(plain.retry.is_none() && plain.shadowing.is_none());
        let retrying = ResolverProfile::with_retries("google", 2);
        assert_eq!(retrying.retry.as_ref().unwrap().percent, 25);
        assert!(retrying.shadowing.is_none());
    }

    #[test]
    fn shadowing_builder_validates() {
        let config = ShadowingConfig {
            policy: ReplayPolicy::heavy_prober(),
            origins: vec![WeightedChoice::new(NodeId(1), 1)],
            retention_capacity: 10_000,
            retention_ttl: SimDuration::from_days(30),
        };
        let profile = ResolverProfile::shadowing("yandex", 3, config);
        assert!(profile.shadowing.is_some());
        assert!(profile.retry.is_some());
    }

    #[test]
    #[should_panic(expected = "probe origins")]
    fn shadowing_without_origins_panics() {
        let config = ShadowingConfig {
            policy: ReplayPolicy::heavy_prober(),
            origins: vec![],
            retention_capacity: 10,
            retention_ttl: SimDuration::from_days(1),
        };
        let _ = ResolverProfile::shadowing("bad", 4, config);
    }

    #[test]
    #[should_panic(expected = "validate")]
    fn shadowing_with_invalid_policy_panics() {
        let mut policy = ReplayPolicy::heavy_prober();
        policy.protocols = vec![WeightedChoice::new(ProbeKind::Dns, 0)];
        let config = ShadowingConfig {
            policy,
            origins: vec![WeightedChoice::new(NodeId(1), 1)],
            retention_capacity: 10,
            retention_ttl: SimDuration::from_days(1),
        };
        let _ = ResolverProfile::shadowing("bad", 5, config);
    }
}
