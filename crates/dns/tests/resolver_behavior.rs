//! End-to-end resolver behaviour: client → recursive resolver →
//! authoritative, across a routed topology. Exercises caching, coalescing,
//! benign retries, the shadowing hook, and anycast instance divergence
//! (the 114DNS case study).

use shadow_dns::authoritative::{AuthorityMode, StaticAuthorityHost};
use shadow_dns::profile::{ResolverProfile, RetryHabit, ShadowingConfig};
use shadow_dns::resolver::RecursiveResolverHost;
use shadow_geo::{Asn, Region};
use shadow_netsim::engine::{Ctx, Engine, Host};
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_netsim::topology::{NodeId, TopologyBuilder};
use shadow_netsim::transport::Transport;
use shadow_observer::policy::{DelayBucket, ProbeKind, ReplayPolicy, WeightedChoice};
use shadow_observer::probe::ProbeOrder;
use shadow_packet::dns::{DnsMessage, DnsName, Rcode, RecordData};
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::udp::UdpDatagram;
use std::any::Any;
use std::net::Ipv4Addr;

struct Sink {
    packets: Vec<(SimTime, Ipv4Packet)>,
    orders: Vec<(SimTime, ProbeOrder)>,
}

impl Sink {
    fn new() -> Self {
        Self {
            packets: Vec::new(),
            orders: Vec::new(),
        }
    }

    fn responses(&self) -> Vec<DnsMessage> {
        self.packets
            .iter()
            .filter_map(|(_, pkt)| match Transport::parse(pkt) {
                Ok(Transport::Udp(dg)) => DnsMessage::decode(&dg.payload).ok(),
                _ => None,
            })
            .collect()
    }
}

impl Host for Sink {
    fn on_packet(&mut self, pkt: Ipv4Packet, ctx: &mut Ctx<'_>) {
        self.packets.push((ctx.now(), pkt));
    }

    fn on_message(&mut self, msg: Box<dyn Any + Send + Sync>, ctx: &mut Ctx<'_>) {
        if let Ok(order) = msg.downcast::<ProbeOrder>() {
            self.orders.push((ctx.now(), *order));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct World {
    engine: Engine,
    client: NodeId,
    resolver: NodeId,
    auth: NodeId,
    origin: NodeId,
    client_addr: Ipv4Addr,
    service_addr: Ipv4Addr,
}

const ZONE: &str = "www.experiment.example";

fn build_world(profile_for: impl FnOnce(NodeId) -> ResolverProfile) -> World {
    let mut tb = TopologyBuilder::new(21);
    tb.add_as(Asn(1), Region::Europe);
    tb.add_as(Asn(2), Region::NorthAmerica);
    tb.add_as(Asn(3), Region::NorthAmerica);
    tb.link(Asn(1), Asn(2)).unwrap();
    tb.link(Asn(2), Asn(3)).unwrap();
    for (asn, base) in [(1u32, 1u8), (2, 2), (3, 3)] {
        for r in 0..2u8 {
            tb.add_router(Asn(asn), Ipv4Addr::new(base, 0, 0, r + 1), true)
                .unwrap();
        }
    }
    let client_addr = Ipv4Addr::new(1, 1, 0, 1);
    let service_addr = Ipv4Addr::new(2, 1, 0, 53);
    let egress_addr = Ipv4Addr::new(2, 1, 0, 54);
    let auth_addr = Ipv4Addr::new(3, 1, 0, 53);
    let origin_addr = Ipv4Addr::new(3, 1, 0, 99);
    let client = tb.add_host(Asn(1), client_addr).unwrap();
    let resolver = tb.add_host(Asn(2), service_addr).unwrap();
    tb.add_alias(resolver, egress_addr).unwrap();
    let auth = tb.add_host(Asn(3), auth_addr).unwrap();
    let origin = tb.add_host(Asn(3), origin_addr).unwrap();
    let mut engine = Engine::new(tb.build().unwrap());

    let zone = DnsName::parse(ZONE).unwrap();
    let profile = profile_for(origin);
    engine.add_host(
        resolver,
        Box::new(RecursiveResolverHost::new(
            service_addr,
            egress_addr,
            profile,
            vec![(zone, auth_addr)],
        )),
    );
    engine.add_host(
        auth,
        Box::new(
            StaticAuthorityHost::new(auth_addr, "ns.experiment.example", AuthorityMode::Nxdomain)
                .with_record(&format!("decoy1.{ZONE}"), Ipv4Addr::new(198, 51, 100, 1))
                .with_record(&format!("decoy2.{ZONE}"), Ipv4Addr::new(198, 51, 100, 2)),
        ),
    );
    engine.add_host(client, Box::new(Sink::new()));
    engine.add_host(origin, Box::new(Sink::new()));
    World {
        engine,
        client,
        resolver,
        auth,
        origin,
        client_addr,
        service_addr,
    }
}

fn dns_query(src: Ipv4Addr, dst: Ipv4Addr, id: u16, name: &str) -> Ipv4Packet {
    let q = DnsMessage::query(id, DnsName::parse(name).unwrap());
    Ipv4Packet::new(
        src,
        dst,
        IpProtocol::Udp,
        DEFAULT_TTL,
        0,
        UdpDatagram::new(5000, 53, q.encode()).encode(),
    )
}

#[test]
fn full_resolution_round_trip() {
    let mut w = build_world(|_| ResolverProfile::well_behaved("test", 1));
    w.engine.inject(
        SimTime::ZERO,
        w.client,
        dns_query(w.client_addr, w.service_addr, 77, &format!("decoy1.{ZONE}")),
    );
    w.engine.run_to_completion();
    let sink = w.engine.host_as::<Sink>(w.client).unwrap();
    let responses = sink.responses();
    assert_eq!(responses.len(), 1);
    let resp = &responses[0];
    assert_eq!(resp.id, 77, "response echoes the client's query id");
    assert_eq!(resp.flags.rcode, Rcode::NoError);
    assert_eq!(
        resp.answers[0].data,
        RecordData::A(Ipv4Addr::new(198, 51, 100, 1))
    );
    // The resolver recursed exactly once.
    let auth = w.engine.host_as::<StaticAuthorityHost>(w.auth).unwrap();
    assert_eq!(auth.queries_seen(), 1);
}

#[test]
fn cache_answers_second_query_without_recursion() {
    let mut w = build_world(|_| ResolverProfile::well_behaved("test", 2));
    let name = format!("decoy1.{ZONE}");
    w.engine.inject(
        SimTime::ZERO,
        w.client,
        dns_query(w.client_addr, w.service_addr, 1, &name),
    );
    w.engine.inject(
        SimTime(10_000),
        w.client,
        dns_query(w.client_addr, w.service_addr, 2, &name),
    );
    w.engine.run_to_completion();
    let auth = w.engine.host_as::<StaticAuthorityHost>(w.auth).unwrap();
    assert_eq!(auth.queries_seen(), 1, "second answer came from cache");
    let resolver = w
        .engine
        .host_as::<RecursiveResolverHost>(w.resolver)
        .unwrap();
    assert_eq!(resolver.stats.cache_hits, 1);
    let sink = w.engine.host_as::<Sink>(w.client).unwrap();
    assert_eq!(sink.responses().len(), 2);
}

#[test]
fn cache_expires_after_record_ttl() {
    let mut w = build_world(|_| ResolverProfile::well_behaved("test", 3));
    let name = format!("decoy1.{ZONE}");
    w.engine.inject(
        SimTime::ZERO,
        w.client,
        dns_query(w.client_addr, w.service_addr, 1, &name),
    );
    // The authority serves TTL 3600; query again past expiry.
    w.engine.inject(
        SimTime::ZERO + SimDuration::from_secs(3_700),
        w.client,
        dns_query(w.client_addr, w.service_addr, 2, &name),
    );
    w.engine.run_to_completion();
    let auth = w.engine.host_as::<StaticAuthorityHost>(w.auth).unwrap();
    assert_eq!(auth.queries_seen(), 2, "expired entry forces re-recursion");
}

#[test]
fn concurrent_queries_coalesce() {
    let mut w = build_world(|_| ResolverProfile::well_behaved("test", 4));
    let name = format!("decoy2.{ZONE}");
    // Two queries a millisecond apart: the second arrives while the first
    // resolution is in flight.
    w.engine.inject(
        SimTime::ZERO,
        w.client,
        dns_query(w.client_addr, w.service_addr, 1, &name),
    );
    w.engine.inject(
        SimTime(1),
        w.client,
        dns_query(w.client_addr, w.service_addr, 2, &name),
    );
    w.engine.run_to_completion();
    let auth = w.engine.host_as::<StaticAuthorityHost>(w.auth).unwrap();
    assert_eq!(auth.queries_seen(), 1, "coalesced into one upstream query");
    let sink = w.engine.host_as::<Sink>(w.client).unwrap();
    assert_eq!(sink.responses().len(), 2, "both clients answered");
}

#[test]
fn unknown_zone_gets_nxdomain() {
    let mut w = build_world(|_| ResolverProfile::well_behaved("test", 5));
    w.engine.inject(
        SimTime::ZERO,
        w.client,
        dns_query(w.client_addr, w.service_addr, 9, "www.elsewhere.org"),
    );
    w.engine.run_to_completion();
    let sink = w.engine.host_as::<Sink>(w.client).unwrap();
    let responses = sink.responses();
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].flags.rcode, Rcode::NxDomain);
    let auth = w.engine.host_as::<StaticAuthorityHost>(w.auth).unwrap();
    assert_eq!(auth.queries_seen(), 0);
}

#[test]
fn benign_retries_reach_the_authority_again() {
    // 100% retry probability for determinism.
    let mut w = build_world(|_| ResolverProfile {
        retry: Some(RetryHabit {
            percent: 100,
            delay: DelayBucket::Seconds(5, 30),
            count: 1,
        }),
        ..ResolverProfile::well_behaved("retrier", 6)
    });
    w.engine.inject(
        SimTime::ZERO,
        w.client,
        dns_query(w.client_addr, w.service_addr, 1, &format!("decoy1.{ZONE}")),
    );
    w.engine.run_to_completion();
    let auth = w.engine.host_as::<StaticAuthorityHost>(w.auth).unwrap();
    assert_eq!(auth.queries_seen(), 2, "original + one duplicate");
    // The duplicate arrives within a minute of the original — the paper's
    // DNS-DNS fast bucket.
    let delta = auth.log[1].at.since(auth.log[0].at);
    assert!(delta <= SimDuration::from_mins(1), "retry after {delta}");
    assert_eq!(auth.log[0].qname, auth.log[1].qname);
    // The client still got exactly one answer.
    let sink = w.engine.host_as::<Sink>(w.client).unwrap();
    assert_eq!(sink.responses().len(), 1);
}

#[test]
fn shadowing_resolver_schedules_probes() {
    let mut w = build_world(|origin| {
        ResolverProfile::shadowing(
            "yandex-sim",
            7,
            ShadowingConfig {
                policy: ReplayPolicy {
                    trigger_percent: 100,
                    delays: vec![WeightedChoice::new(DelayBucket::Hours(1, 3), 1)],
                    protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
                    reuse: vec![WeightedChoice::new(3, 1)],
                },
                origins: vec![WeightedChoice::new(origin, 1)],
                retention_capacity: 1000,
                retention_ttl: SimDuration::from_days(30),
            },
        )
    });
    w.engine.inject(
        SimTime::ZERO,
        w.client,
        dns_query(w.client_addr, w.service_addr, 1, &format!("decoy1.{ZONE}")),
    );
    w.engine.run_to_completion();
    let origin_sink = w.engine.host_as::<Sink>(w.origin).unwrap();
    assert_eq!(origin_sink.orders.len(), 3, "reuse=3 probes ordered");
    for (at, order) in &origin_sink.orders {
        assert!(*at >= SimTime::ZERO + SimDuration::from_hours(1));
        assert!(*at <= SimTime::ZERO + SimDuration::from_hours(3) + SimDuration::from_secs(5));
        assert_eq!(order.exhibitor, "yandex-sim");
        assert_eq!(order.domain.as_str(), format!("decoy1.{ZONE}"));
    }
    let resolver = w
        .engine
        .host_as::<RecursiveResolverHost>(w.resolver)
        .unwrap();
    assert_eq!(resolver.stats.shadow_probes_scheduled, 3);
    // Communication with the client was not tampered with.
    let sink = w.engine.host_as::<Sink>(w.client).unwrap();
    assert_eq!(sink.responses().len(), 1);
    assert_eq!(sink.responses()[0].flags.rcode, Rcode::NoError);
}

#[test]
fn shadowing_triggers_once_per_unique_name() {
    let mut w = build_world(|origin| {
        ResolverProfile::shadowing(
            "dedup",
            8,
            ShadowingConfig {
                policy: ReplayPolicy {
                    trigger_percent: 100,
                    delays: vec![WeightedChoice::new(DelayBucket::Seconds(10, 20), 1)],
                    protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
                    reuse: vec![WeightedChoice::new(1, 1)],
                },
                origins: vec![WeightedChoice::new(origin, 1)],
                retention_capacity: 1000,
                retention_ttl: SimDuration::from_days(30),
            },
        )
    });
    let name = format!("decoy1.{ZONE}");
    for i in 0..3 {
        w.engine.inject(
            SimTime(i * 100),
            w.client,
            dns_query(w.client_addr, w.service_addr, i as u16 + 1, &name),
        );
    }
    w.engine.run_to_completion();
    let origin_sink = w.engine.host_as::<Sink>(w.origin).unwrap();
    assert_eq!(origin_sink.orders.len(), 1, "same name shadowed once");
}

#[test]
fn anycast_instances_diverge_like_114dns() {
    // Two instances of one service address: the "CN" instance shadows, the
    // "US" instance does not — clients route to the nearest one.
    let mut tb = TopologyBuilder::new(31);
    tb.add_as(Asn(10), Region::EastAsia); // CN client side
    tb.add_as(Asn(20), Region::EastAsia); // CN instance
    tb.add_as(Asn(30), Region::NorthAmerica); // US client side
    tb.add_as(Asn(40), Region::NorthAmerica); // US instance
    tb.add_as(Asn(50), Region::NorthAmerica); // authority + origin
    tb.link(Asn(10), Asn(20)).unwrap();
    tb.link(Asn(30), Asn(40)).unwrap();
    tb.link(Asn(20), Asn(50)).unwrap();
    tb.link(Asn(40), Asn(50)).unwrap();
    tb.link(Asn(20), Asn(40)).unwrap();
    for (asn, base) in [(10u32, 10u8), (20, 20), (30, 30), (40, 40), (50, 50)] {
        tb.add_router(Asn(asn), Ipv4Addr::new(base, 0, 0, 1), true)
            .unwrap();
    }
    let service = Ipv4Addr::new(114, 114, 114, 114);
    let cn_client_addr = Ipv4Addr::new(10, 1, 0, 1);
    let us_client_addr = Ipv4Addr::new(30, 1, 0, 1);
    let auth_addr = Ipv4Addr::new(50, 1, 0, 53);
    let origin_addr = Ipv4Addr::new(50, 1, 0, 99);
    let cn_client = tb.add_host(Asn(10), cn_client_addr).unwrap();
    let us_client = tb.add_host(Asn(30), us_client_addr).unwrap();
    let cn_instance = tb.add_host(Asn(20), service).unwrap();
    tb.add_alias(cn_instance, Ipv4Addr::new(20, 1, 0, 54))
        .unwrap();
    let us_instance = tb.add_host(Asn(40), service).unwrap();
    tb.add_alias(us_instance, Ipv4Addr::new(40, 1, 0, 54))
        .unwrap();
    let auth = tb.add_host(Asn(50), auth_addr).unwrap();
    let origin = tb.add_host(Asn(50), origin_addr).unwrap();
    let mut engine = Engine::new(tb.build().unwrap());

    let zone = DnsName::parse(ZONE).unwrap();
    let shadow_profile = ResolverProfile::shadowing(
        "114dns-cn",
        9,
        ShadowingConfig {
            policy: ReplayPolicy {
                trigger_percent: 100,
                delays: vec![WeightedChoice::new(DelayBucket::Minutes(1, 5), 1)],
                protocols: vec![WeightedChoice::new(ProbeKind::Dns, 1)],
                reuse: vec![WeightedChoice::new(1, 1)],
            },
            origins: vec![WeightedChoice::new(origin, 1)],
            retention_capacity: 1000,
            retention_ttl: SimDuration::from_days(10),
        },
    );
    engine.add_host(
        cn_instance,
        Box::new(RecursiveResolverHost::new(
            service,
            Ipv4Addr::new(20, 1, 0, 54),
            shadow_profile,
            vec![(zone.clone(), auth_addr)],
        )),
    );
    engine.add_host(
        us_instance,
        Box::new(RecursiveResolverHost::new(
            service,
            Ipv4Addr::new(40, 1, 0, 54),
            ResolverProfile::well_behaved("114dns-us", 10),
            vec![(zone, auth_addr)],
        )),
    );
    engine.add_host(
        auth,
        Box::new(
            StaticAuthorityHost::new(auth_addr, "ns.experiment.example", AuthorityMode::Nxdomain)
                .with_record(&format!("fromcn.{ZONE}"), Ipv4Addr::new(198, 51, 100, 1))
                .with_record(&format!("fromus.{ZONE}"), Ipv4Addr::new(198, 51, 100, 1)),
        ),
    );
    engine.add_host(origin, Box::new(Sink::new()));
    engine.add_host(cn_client, Box::new(Sink::new()));
    engine.add_host(us_client, Box::new(Sink::new()));

    engine.inject(
        SimTime::ZERO,
        cn_client,
        dns_query(cn_client_addr, service, 1, &format!("fromcn.{ZONE}")),
    );
    engine.inject(
        SimTime::ZERO,
        us_client,
        dns_query(us_client_addr, service, 2, &format!("fromus.{ZONE}")),
    );
    engine.run_to_completion();

    // Both clients got answers.
    assert_eq!(
        engine.host_as::<Sink>(cn_client).unwrap().responses().len(),
        1
    );
    assert_eq!(
        engine.host_as::<Sink>(us_client).unwrap().responses().len(),
        1
    );
    // Only the CN-routed decoy was shadowed.
    let orders = &engine.host_as::<Sink>(origin).unwrap().orders;
    assert_eq!(orders.len(), 1);
    assert!(orders[0].1.domain.as_str().starts_with("fromcn"));
    assert_eq!(orders[0].1.exhibitor, "114dns-cn");
}
