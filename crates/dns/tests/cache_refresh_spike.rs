//! The paper's cache-refresh falsification check, made executable.
//!
//! Section 5.1: "While active cache refreshing mechanisms and APIs may also
//! produce unsolicited requests, we do not believe this is the major cause
//! — we configure TTL=3,600 for wildcard DNS records ... but do not find
//! noticeable spikes around 1h or other hourly marks."
//!
//! Here we enable the refresh behaviour on a resolver and show the spike
//! *would* appear: upstream re-queries land exactly one record-TTL after
//! the original resolution — the signature absent from the real data.

use shadow_dns::authoritative::{AuthorityMode, StaticAuthorityHost};
use shadow_dns::profile::ResolverProfile;
use shadow_dns::resolver::RecursiveResolverHost;
use shadow_geo::{Asn, Region};
use shadow_netsim::engine::{Ctx, Engine, Host};
use shadow_netsim::time::{SimDuration, SimTime};
use shadow_netsim::topology::TopologyBuilder;
use shadow_packet::dns::{DnsMessage, DnsName};
use shadow_packet::ipv4::{IpProtocol, Ipv4Packet, DEFAULT_TTL};
use shadow_packet::udp::UdpDatagram;
use std::any::Any;
use std::net::Ipv4Addr;

struct Quiet;

impl Host for Quiet {
    fn on_packet(&mut self, _pkt: Ipv4Packet, _ctx: &mut Ctx<'_>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

const ZONE: &str = "www.experiment.example";

fn run(refresh: bool) -> Vec<SimTime> {
    let mut tb = TopologyBuilder::new(33);
    tb.add_as(Asn(1), Region::Europe);
    tb.add_router(Asn(1), Ipv4Addr::new(1, 0, 0, 1), true)
        .unwrap();
    let client_addr = Ipv4Addr::new(1, 1, 0, 1);
    let service_addr = Ipv4Addr::new(1, 1, 0, 53);
    let egress_addr = Ipv4Addr::new(1, 1, 0, 54);
    let auth_addr = Ipv4Addr::new(1, 1, 0, 100);
    let client = tb.add_host(Asn(1), client_addr).unwrap();
    let resolver = tb.add_host(Asn(1), service_addr).unwrap();
    tb.add_alias(resolver, egress_addr).unwrap();
    let auth = tb.add_host(Asn(1), auth_addr).unwrap();
    let mut engine = Engine::new(tb.build().unwrap());

    let profile = if refresh {
        ResolverProfile::with_cache_refresh("refresher", 5)
    } else {
        ResolverProfile::well_behaved("plain", 5)
    };
    engine.add_host(
        resolver,
        Box::new(RecursiveResolverHost::new(
            service_addr,
            egress_addr,
            profile,
            vec![(DnsName::parse(ZONE).unwrap(), auth_addr)],
        )),
    );
    // The authority answers every name (TTL 3600 via with_record's default).
    engine.add_host(
        auth,
        Box::new(
            StaticAuthorityHost::new(auth_addr, "ns.experiment.example", AuthorityMode::Nxdomain)
                .with_record(&format!("decoy.{ZONE}"), Ipv4Addr::new(198, 51, 100, 1)),
        ),
    );
    engine.add_host(client, Box::new(Quiet));

    let query = DnsMessage::query(1, DnsName::parse(&format!("decoy.{ZONE}")).unwrap());
    engine.inject(
        SimTime::ZERO,
        client,
        Ipv4Packet::new(
            client_addr,
            service_addr,
            IpProtocol::Udp,
            DEFAULT_TTL,
            0,
            UdpDatagram::new(5000, 53, query.encode()).encode(),
        ),
    );
    engine.run_until(SimTime::ZERO + SimDuration::from_hours(6));
    let auth_host = engine.host_as::<StaticAuthorityHost>(auth).unwrap();
    auth_host.log.iter().map(|e| e.at).collect()
}

#[test]
fn refresh_creates_the_hourly_spike_the_paper_rules_out() {
    let plain = run(false);
    assert_eq!(plain.len(), 1, "no refresh: the authority sees one query");

    let refreshing = run(true);
    assert!(
        refreshing.len() >= 2,
        "refresh: the authority sees the resolution plus refreshes"
    );
    // The second query lands one record-TTL (3,600 s) after the first —
    // exactly the spike the paper checked Figure 4 for.
    let gap = refreshing[1].since(refreshing[0]);
    let hour = SimDuration::from_hours(1);
    assert!(
        gap >= hour && gap <= hour + SimDuration::from_secs(5),
        "refresh gap {gap} should sit at the 1h mark"
    );
}
