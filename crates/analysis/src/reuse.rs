//! Section 5.1's reuse finding: "over 1 hour after emission from VP, 51%
//! of DNS decoys still produce more than 3 unsolicited requests, and 2.4%
//! produce more than 10".

use serde::{Deserialize, Serialize};
use shadow_core::correlate::CorrelatedRequest;
use shadow_core::decoy::DecoyProtocol;
use shadow_core::sink::CorrelationAggregates;
use shadow_netsim::time::SimDuration;
use std::collections::BTreeMap;

/// Reuse statistics over decoys of one protocol.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReuseReport {
    /// Decoys that triggered at least one unsolicited request at all.
    pub triggered_decoys: usize,
    /// Per-decoy count of unsolicited requests arriving after the cutoff.
    pub late_counts: BTreeMap<String, usize>,
}

impl ReuseReport {
    /// Compute over `correlated`, counting unsolicited requests arriving
    /// more than `cutoff` after decoy emission.
    pub fn compute(
        correlated: &[CorrelatedRequest],
        protocol: DecoyProtocol,
        cutoff: SimDuration,
    ) -> Self {
        let mut late_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut triggered: BTreeMap<&str, ()> = BTreeMap::new();
        for req in correlated {
            if req.decoy.protocol != protocol || !req.label.is_unsolicited() {
                continue;
            }
            triggered.insert(req.decoy.domain.as_str(), ());
            if req.interval > cutoff {
                *late_counts
                    .entry(req.decoy.domain.as_str().to_string())
                    .or_insert(0) += 1;
            }
        }
        Self {
            triggered_decoys: triggered.len(),
            late_counts,
        }
    }

    /// The streamed equivalent of [`ReuseReport::compute`], read from the
    /// capture-time per-decoy folds. The cutoff is whatever
    /// `SinkConfig::late_cutoff` the campaign streamed with (1 h in the
    /// shipped configurations — the paper's framing).
    pub fn from_aggregates(aggregates: &CorrelationAggregates, protocol: DecoyProtocol) -> Self {
        let mut late_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut triggered_decoys = 0;
        for (domain, fold) in &aggregates.decoys {
            if fold.protocol != protocol {
                continue;
            }
            triggered_decoys += 1;
            if fold.late_unsolicited > 0 {
                late_counts.insert(domain.as_str().to_string(), fold.late_unsolicited as usize);
            }
        }
        Self {
            triggered_decoys,
            late_counts,
        }
    }

    /// Fraction of decoys *still producing after the cutoff* with more
    /// than `n` late unsolicited requests — the paper's "over 1 hour after
    /// emission, 51% of DNS decoys still produce more than 3 unsolicited
    /// requests" framing.
    pub fn fraction_exceeding(&self, n: usize) -> f64 {
        if self.late_counts.is_empty() {
            return 0.0;
        }
        let exceeding = self.late_counts.values().filter(|&&c| c > n).count();
        exceeding as f64 / self.late_counts.len() as f64
    }

    /// Same numerator over all decoys that triggered anything at all.
    pub fn fraction_of_triggered_exceeding(&self, n: usize) -> f64 {
        if self.triggered_decoys == 0 {
            return 0.0;
        }
        let exceeding = self.late_counts.values().filter(|&&c| c > n).count();
        exceeding as f64 / self.triggered_decoys as f64
    }

    /// Decoys still producing unsolicited requests after the cutoff.
    pub fn late_active_decoys(&self) -> usize {
        self.late_counts.len()
    }

    /// Maximum late reuse observed for any single decoy.
    pub fn max_reuse(&self) -> usize {
        self.late_counts.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::Correlator;
    use shadow_core::decoy::DecoyRegistry;
    use shadow_honeypot::capture::{Arrival, ArrivalProtocol};
    use shadow_netsim::time::SimTime;
    use shadow_packet::dns::DnsName;
    use shadow_vantage::platform::VpId;
    use std::net::Ipv4Addr;

    #[test]
    fn counts_late_reuse_per_decoy() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let dst = Ipv4Addr::new(77, 88, 8, 8);
        let busy = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            dst,
            DecoyProtocol::Dns,
            64,
            SimTime(0),
            None,
        );
        let lazy = registry.register(
            VpId(1),
            Ipv4Addr::new(10, 0, 0, 1),
            dst,
            DecoyProtocol::Dns,
            64,
            SimTime(100),
            None,
        );
        let mk = |domain: &DnsName, at: u64| Arrival {
            at: SimTime(at),
            src: Ipv4Addr::new(9, 9, 9, 9),
            protocol: ArrivalProtocol::Dns,
            domain: domain.clone(),
            http_path: None,
            honeypot: "AUTH".into(),
        };
        let hour = 3_600_000u64;
        let mut arrivals = vec![mk(&busy.domain, 1_000), mk(&lazy.domain, 1_100)]; // solicited
                                                                                   // busy: 4 late unsolicited; lazy: 1 early unsolicited.
        for k in 0..4 {
            arrivals.push(mk(&busy.domain, 2 * hour + k * 1_000_000));
        }
        arrivals.push(mk(&lazy.domain, 60_000));
        arrivals.sort_by_key(|a| a.at);
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);
        let report =
            ReuseReport::compute(&correlated, DecoyProtocol::Dns, SimDuration::from_hours(1));
        assert_eq!(report.triggered_decoys, 2);
        assert_eq!(
            report.late_active_decoys(),
            1,
            "only the busy decoy stays active"
        );
        assert_eq!(report.max_reuse(), 4);
        // Of the late-active decoys, all exceed 3...
        assert!((report.fraction_exceeding(3) - 1.0).abs() < 1e-9);
        // ...which is half of all triggered decoys.
        assert!((report.fraction_of_triggered_exceeding(3) - 0.5).abs() < 1e-9);
        assert_eq!(report.fraction_exceeding(10), 0.0);
    }
}
