//! Figure 3: the ratio of client-server paths subject to traffic shadowing,
//! grouped by VP country and destination.

use serde::{Deserialize, Serialize};
use shadow_core::correlate::{CorrelatedRequest, Correlator, PathKey};
use shadow_core::decoy::{DecoyProtocol, DecoyRegistry};
use shadow_core::sink::CorrelationAggregates;
use shadow_geo::CountryCode;
use shadow_vantage::platform::{Platform, VpId};
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One cell of Figure 3: (VP country, destination) → path ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LandscapeCell {
    pub country: String,
    pub destination: String,
    pub protocol: DecoyProtocol,
    pub problematic: usize,
    pub total: usize,
}

impl LandscapeCell {
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.problematic as f64 / self.total as f64
        }
    }
}

/// The full Figure-3 report.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LandscapeReport {
    pub cells: Vec<LandscapeCell>,
}

impl LandscapeReport {
    /// Compute the landscape. `dest_names` maps destination addresses to
    /// display names (resolver names / "tranco:CC" groups).
    pub fn compute(
        registry: &DecoyRegistry,
        correlated: &[CorrelatedRequest],
        platform: &Platform,
        dest_names: &BTreeMap<Ipv4Addr, String>,
    ) -> Self {
        let correlator = Correlator::new(registry);
        let problematic: BTreeSet<PathKey> = correlator
            .problematic_paths(correlated)
            .into_keys()
            .collect();
        Self::from_problematic(registry, &problematic, platform, dest_names)
    }

    /// The streamed [`LandscapeReport::compute`]: the problematic-path set
    /// comes straight from the capture-time fold's path map.
    pub fn compute_streamed(
        registry: &DecoyRegistry,
        aggregates: &CorrelationAggregates,
        platform: &Platform,
        dest_names: &BTreeMap<Ipv4Addr, String>,
    ) -> Self {
        let problematic: BTreeSet<PathKey> = aggregates.paths.keys().copied().collect();
        Self::from_problematic(registry, &problematic, platform, dest_names)
    }

    fn from_problematic(
        registry: &DecoyRegistry,
        problematic: &BTreeSet<PathKey>,
        platform: &Platform,
        dest_names: &BTreeMap<Ipv4Addr, String>,
    ) -> Self {
        let country_of: BTreeMap<VpId, CountryCode> =
            platform.vps.iter().map(|vp| (vp.id, vp.country)).collect();

        // Denominator: every (vp, dst, protocol) a decoy was sent on.
        let mut totals: BTreeMap<(String, String, DecoyProtocol), (usize, usize)> = BTreeMap::new();
        let mut seen_paths: BTreeSet<PathKey> = BTreeSet::new();
        for decoy in registry.iter() {
            let key = PathKey {
                vp: decoy.vp,
                dst: decoy.dst(),
                protocol: decoy.protocol,
            };
            if !seen_paths.insert(key) {
                continue;
            }
            let Some(country) = country_of.get(&decoy.vp) else {
                continue;
            };
            let dest = dest_names
                .get(&decoy.dst())
                .cloned()
                .unwrap_or_else(|| decoy.dst().to_string());
            let entry = totals
                .entry((country.to_string(), dest, decoy.protocol))
                .or_insert((0, 0));
            entry.1 += 1;
            if problematic.contains(&key) {
                entry.0 += 1;
            }
        }
        let cells = totals
            .into_iter()
            .map(
                |((country, destination, protocol), (problematic, total))| LandscapeCell {
                    country,
                    destination,
                    protocol,
                    problematic,
                    total,
                },
            )
            .collect();
        Self { cells }
    }

    /// Ratio aggregated over all countries for one destination.
    pub fn destination_ratio(&self, destination: &str, protocol: DecoyProtocol) -> f64 {
        let (p, t) = self
            .cells
            .iter()
            .filter(|c| c.destination == destination && c.protocol == protocol)
            .fold((0, 0), |(p, t), c| (p + c.problematic, t + c.total));
        if t == 0 {
            0.0
        } else {
            p as f64 / t as f64
        }
    }

    /// Ratio for one (country, destination) pair.
    pub fn cell_ratio(&self, country: &str, destination: &str, protocol: DecoyProtocol) -> f64 {
        let (p, t) = self
            .cells
            .iter()
            .filter(|c| {
                c.country == country && c.destination == destination && c.protocol == protocol
            })
            .fold((0, 0), |(p, t), c| (p + c.problematic, t + c.total));
        if t == 0 {
            0.0
        } else {
            p as f64 / t as f64
        }
    }

    /// Ratio per destination group for one protocol, sorted by ratio
    /// (Figure 3's HTTP/TLS columns, where tranco destinations are grouped
    /// as `site:CC` by hosting country).
    pub fn destination_ratios(&self, protocol: DecoyProtocol) -> Vec<(String, f64, usize)> {
        let mut acc: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
        for cell in &self.cells {
            if cell.protocol != protocol {
                continue;
            }
            let entry = acc.entry(&cell.destination).or_insert((0, 0));
            entry.0 += cell.problematic;
            entry.1 += cell.total;
        }
        let mut out: Vec<(String, f64, usize)> = acc
            .into_iter()
            .filter(|(_, (_, t))| *t > 0)
            .map(|(dest, (p, t))| (dest.to_string(), p as f64 / t as f64, t))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Overall ratio per protocol (the "DNS decoys are more susceptible"
    /// headline).
    pub fn protocol_ratio(&self, protocol: DecoyProtocol) -> f64 {
        let (p, t) = self
            .cells
            .iter()
            .filter(|c| c.protocol == protocol)
            .fold((0, 0), |(p, t), c| (p + c.problematic, t + c.total));
        if t == 0 {
            0.0
        } else {
            p as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadow_core::correlate::Correlator;
    use shadow_geo::country::cc;
    use shadow_honeypot::capture::{Arrival, ArrivalProtocol};
    use shadow_netsim::time::SimTime;
    use shadow_netsim::topology::NodeId;
    use shadow_packet::dns::DnsName;
    use shadow_vantage::platform::VantagePoint;
    use shadow_vantage::providers::Market;

    fn platform() -> Platform {
        let vp = |id: u32, country: &str| VantagePoint {
            id: VpId(id),
            provider: "PureVPN",
            market: Market::Global,
            node: NodeId(id),
            addr: Ipv4Addr::new(10, 0, 0, id as u8),
            advertised_country: cc(country),
            country: cc(country),
            ttl_rewrite: None,
            residential: false,
        };
        Platform::new(vec![vp(1, "DE"), vp(2, "CN")])
    }

    #[test]
    fn ratios_computed_per_cell() {
        let zone = DnsName::parse("www.experiment.example").unwrap();
        let mut registry = DecoyRegistry::new(zone);
        let yandex = Ipv4Addr::new(77, 88, 8, 8);
        let google = Ipv4Addr::new(8, 8, 8, 8);
        // Both VPs probe both resolvers.
        let mut records = Vec::new();
        for (i, vp) in [VpId(1), VpId(2)].iter().enumerate() {
            for (j, dst) in [yandex, google].iter().enumerate() {
                records.push(registry.register(
                    *vp,
                    Ipv4Addr::new(10, 0, 0, vp.0 as u8),
                    *dst,
                    DecoyProtocol::Dns,
                    64,
                    SimTime(((i * 2 + j) as u64 + 1) * 1_000),
                    None,
                ));
            }
        }
        // Only the Yandex paths trigger unsolicited requests (a repeat
        // after the solicited resolution).
        let mut arrivals = Vec::new();
        for rec in &records {
            arrivals.push(Arrival {
                at: rec.planned_at + shadow_netsim::time::SimDuration::from_secs(1),
                src: Ipv4Addr::new(9, 9, 9, 9),
                protocol: ArrivalProtocol::Dns,
                domain: rec.domain.clone(),
                http_path: None,
                honeypot: "AUTH".into(),
            });
            if rec.dst() == yandex {
                arrivals.push(Arrival {
                    at: rec.planned_at + shadow_netsim::time::SimDuration::from_hours(5),
                    src: Ipv4Addr::new(9, 9, 9, 9),
                    protocol: ArrivalProtocol::Dns,
                    domain: rec.domain.clone(),
                    http_path: None,
                    honeypot: "AUTH".into(),
                });
            }
        }
        arrivals.sort_by_key(|a| a.at);
        let correlator = Correlator::new(&registry);
        let correlated = correlator.correlate(&arrivals);
        let mut names = BTreeMap::new();
        names.insert(yandex, "Yandex".to_string());
        names.insert(google, "Google".to_string());
        let report = LandscapeReport::compute(&registry, &correlated, &platform(), &names);

        assert_eq!(report.destination_ratio("Yandex", DecoyProtocol::Dns), 1.0);
        assert_eq!(report.destination_ratio("Google", DecoyProtocol::Dns), 0.0);
        assert_eq!(report.cell_ratio("CN", "Yandex", DecoyProtocol::Dns), 1.0);
        assert_eq!(report.cell_ratio("DE", "Google", DecoyProtocol::Dns), 0.0);
        assert!((report.protocol_ratio(DecoyProtocol::Dns) - 0.5).abs() < 1e-9);
    }
}
